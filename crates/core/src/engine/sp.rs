//! The stream-processor engine — batch-first, key-sharded, and (since the
//! multi-node scale-out) one *node* of an [`SpCluster`].
//!
//! Each data source has a replica of the planned query at the SP (paper
//! Fig. 5), structured around the plan's *keyed boundary* (the first
//! stateful operator):
//!
//! * the stateless **prefix** runs as one chain per replica — drained
//!   batches enter at the operator they were drained in front of, on the
//!   source's *ingress node*;
//! * at the boundary, a key-hash partitioner ([`Batch::shard_by_key`])
//!   splits every batch over the fixed ring of `n_shards` virtual shards.
//!   Each engine instance owns a contiguous ring slice
//!   ([`shards_of_node`]) and hosts one
//!   **shard pipeline** per owned shard per replica; sub-batches, shipped
//!   [`StatePartial`] splits, and (in principle) window results whose owning
//!   shard is remote leave through the engine's **outbox** as
//!   [`NetPayload::ShardBatch`] / [`NetPayload::ShardState`] payloads for
//!   the cluster to transfer — never through in-process channels.
//!
//! Rows with equal group keys always land on the same shard regardless of
//! the node count (the key → shard mapping is node-count-independent), and
//! shipped state entries route to the shard owning their key
//! ([`shard_of_values`]) — so window results stay exact: a group's whole
//! lifetime (updates, merged partials, close) happens on one shard, and the
//! union over shards ≡ the unsharded run at any node count.
//!
//! `n_shards = 1` on a single node reproduces the unsharded replica chains
//! exactly. Each node's cores are its own [`CpuBudget`]; per-shard drain,
//! usage, and outbound wire bytes feed [`SpEngine::shard_stats`] /
//! [`SpEngine::shard_wire_out`].
//!
//! Throughput accounting distinguishes the *input domain* (drained source
//! rows still being processed — their terminal events complete the input
//! work) from the *result domain* (rows emitted by aggregations — query
//! output, never double-counted as input completions).
//!
//! [`SpCluster`]: crate::engine::cluster::SpCluster

use std::collections::VecDeque;
use std::ops::Range;

use simnet::{CpuBudget, Node, NodeId};
use streamkit::batch::{Batch, DictVersions};
use streamkit::ops::{absorbed_timestamps, AggRole, Operator, StatePartial};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::record::Record;
use streamkit::shard::{shard_of_values, shards_of_node};
use streamkit::time::Ts;

use crate::calibration;
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;

/// Which domain a queued batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    /// Drained source rows still being processed (input domain).
    Input,
    /// Rows emitted by a window close (query result).
    WindowResult,
    /// Per-epoch dashboard deltas (result domain, never fingerprinted).
    DeltaResult,
}

/// A queued item: the batch, its network-arrival time, and its domain.
struct Item {
    batch: Batch,
    arrived: f64,
    kind: ItemKind,
}

/// One keyed shard pipeline: the stateful boundary operator and the rest of
/// the chain, owning a disjoint slice of the replica's key space.
struct ShardPipeline {
    stages: Vec<Box<dyn Operator>>,
    /// Arrival queues, one per stage, plus a final slot for batches that
    /// completed the whole chain.
    queues: Vec<VecDeque<Item>>,
    /// Input rows routed into this shard (drain share).
    drained_records: u64,
    /// Modelled compute charged to this shard, µs.
    usage_us: f64,
}

/// Per-source replica: stateless prefix + keyed shard pipelines for the
/// shards this node owns.
struct Replica {
    prefix: Vec<Box<dyn Operator>>,
    /// Arrival queues, one per prefix stage.
    prefix_queues: Vec<VecDeque<Item>>,
    /// Group-key columns at the boundary edge (empty when the plan has no
    /// keyed operator; everything then routes to shard 0).
    shard_keys: Vec<usize>,
    /// Pipelines for the owned ring slice, indexed by `shard - owned.start`.
    shards: Vec<ShardPipeline>,
}

impl Replica {
    fn suffix_len(&self) -> usize {
        self.shards.first().map_or(0, |s| s.stages.len())
    }

    /// Whether any queue still holds work: a prefix stage queue, a shard
    /// stage queue, or a shard's terminal slot (whose drain is itself a
    /// processing step). Drives the active-set sweep in
    /// [`SpEngine::process_queued`].
    fn has_pending(&self) -> bool {
        self.prefix_queues.iter().any(|q| !q.is_empty())
            || self
                .shards
                .iter()
                .any(|s| s.queues.iter().any(|q| !q.is_empty()))
    }
}

/// Ring context threaded through the routing helpers: where this node sits
/// on the fixed shard ring and where outbound payloads accumulate.
struct RingCtx<'a> {
    owned: Range<usize>,
    n_shards: usize,
    epoch: u64,
    outbox: &'a mut Vec<(NetPayload, f64)>,
    /// Wire bytes shipped toward each (remote) shard, `n_shards` wide.
    shard_wire_out: &'a mut [u64],
    /// Persistent-dict versions already shipped toward each shard stream,
    /// `n_shards` wide: outbound accounting charges the dictionary *delta*
    /// (plus codes) instead of re-charging the full page per batch, exactly
    /// what a delta-aware link ships. Reset on recovery so a re-seeded
    /// receiver is re-charged the full history.
    dict_sync: &'a mut [DictVersions],
}

/// Routes a batch entering at suffix stage `rel` to its shard(s): the
/// boundary partitions by key hash over the whole ring; later stages (and
/// keyless plans) are stateless, so global shard 0 hosts them. Sub-batches
/// owned by a remote node leave through the outbox as
/// [`NetPayload::ShardBatch`], charging wire accounting per target shard.
fn route_to_shards(
    replica: &mut Replica,
    source: usize,
    batch: Batch,
    rel: usize,
    arrived: f64,
    kind: ItemKind,
    ring: &mut RingCtx<'_>,
) {
    if batch.is_empty() {
        return;
    }
    let enqueue = |replica: &mut Replica, local: usize, rel: usize, batch: Batch| {
        let shard = &mut replica.shards[local];
        if kind == ItemKind::Input {
            shard.drained_records += batch.len() as u64;
        }
        shard.queues[rel].push_back(Item {
            batch,
            arrived,
            kind,
        });
    };
    let ship = |ring: &mut RingCtx<'_>, shard: usize, rel: usize, batch: Batch| {
        // Only input-domain batches cross nodes today: the prefix is
        // stateless (its watermark/epoch hooks emit nothing), and window
        // results cascade within their owning shard. `ShardBatch` carries no
        // item kind, so the receiver re-labels everything `Input` — a result
        // batch crossing here would silently corrupt the input/result
        // domain split, which is why this is a hard assert.
        assert_eq!(kind, ItemKind::Input, "result batch crossing nodes");
        ring.shard_wire_out[shard] += batch.wire_size_versioned(&mut ring.dict_sync[shard]) as u64;
        ring.outbox.push((
            NetPayload::ShardBatch {
                shard: shard as u32,
                epoch: ring.epoch,
                source: source as u32,
                rel: rel as u32,
                batch,
            },
            arrived,
        ));
    };
    if rel == 0 && ring.n_shards > 1 && !replica.shard_keys.is_empty() {
        let keys = replica.shard_keys.clone();
        for (s, part) in batch
            .shard_by_key(&keys, ring.n_shards)
            .into_iter()
            .enumerate()
        {
            if part.is_empty() {
                continue;
            }
            if ring.owned.contains(&s) {
                enqueue(replica, s - ring.owned.start, 0, part);
            } else {
                ship(ring, s, 0, part);
            }
        }
    } else if ring.owned.start == 0 {
        // Contiguous slices always place global shard 0 on node 0.
        enqueue(replica, 0, rel, batch);
    } else {
        ship(ring, 0, rel, batch);
    }
}

/// Merges a shipped state delta into the owning shard(s) at suffix stage
/// `rel`: entries are split by the hash of their group key — the same
/// mapping the row partitioner uses — and remote splits leave through the
/// outbox as [`NetPayload::ShardState`].
fn merge_sharded(
    replica: &mut Replica,
    source: usize,
    rel: usize,
    delta: StatePartial,
    ring: &mut RingCtx<'_>,
) {
    if rel >= replica.suffix_len() {
        return;
    }
    if ring.n_shards == 1 {
        replica.shards[0].stages[rel].merge_state(delta);
        return;
    }
    let StatePartial::Group(entries) = delta;
    let mut per_shard: Vec<Vec<_>> = (0..ring.n_shards).map(|_| Vec::new()).collect();
    for entry in entries {
        per_shard[shard_of_values(&entry.key, ring.n_shards)].push(entry);
    }
    for (s, part) in per_shard.into_iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if ring.owned.contains(&s) {
            replica.shards[s - ring.owned.start].stages[rel].merge_state(StatePartial::Group(part));
        } else {
            let split = StatePartial::Group(part);
            ring.shard_wire_out[s] += split.wire_bytes() as u64;
            ring.outbox.push((
                NetPayload::ShardState {
                    shard: s as u32,
                    epoch: ring.epoch,
                    source: source as u32,
                    rel: rel as u32,
                    delta: split,
                },
                // State merges have no processing timestamp of their own;
                // they apply on arrival.
                0.0,
            ));
        }
    }
}

/// Cost of merging one group's partial state, µs.
const MERGE_COST_PER_ENTRY_US: f64 = 0.5;

/// An input-record completion at the SP.
#[derive(Debug, Clone, Copy)]
pub struct SpCompletion {
    /// Which source the record came from.
    pub source: usize,
    /// The record's event timestamp.
    pub ts: Ts,
    /// Virtual completion time, seconds.
    pub completed_s: f64,
}

/// Per-shard drain/usage/wire counters, aggregated across replicas.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpShardStat {
    /// Input rows routed into the shard.
    pub drained_records: u64,
    /// Modelled compute charged to the shard's stages, µs.
    pub usage_us: f64,
    /// Wire bytes shipped across nodes toward this shard (charged at the
    /// sending node, from the `batch::layout` accounting).
    pub wire_bytes_out: u64,
}

/// One SP node: replicas of the planned query restricted to the node's ring
/// slice, plus the outbox carrying remote-shard payloads.
pub struct SpEngine {
    node: Node,
    node_id: usize,
    n_nodes: usize,
    /// Width of the fixed virtual-shard ring (cluster-global).
    n_shards: usize,
    /// The contiguous ring slice this node owns.
    owned: Range<usize>,
    replicas: Vec<Replica>,
    epoch_secs: f64,
    epoch_index: u64,
    results_emitted: u64,
    lateness_secs: f64,
    /// Payloads bound for shards on other nodes, with the virtual time they
    /// were produced.
    outbox: Vec<(NetPayload, f64)>,
    /// Wire bytes shipped toward each shard of the ring (remote targets
    /// only), `n_shards` wide.
    shard_wire_out: Vec<u64>,
    /// Persistent-dict versions already charged toward each shard stream
    /// (delta-aware outbound accounting), `n_shards` wide.
    dict_sync: Vec<DictVersions>,
    /// Retained result rows (window closes and stateless-tail completions),
    /// when result collection is enabled for exactness fingerprinting.
    collected: Option<Vec<Record>>,
}

/// Processes one stage queue under the execution quantum, charging `node`
/// and crediting completions. Output items are appended to `routed` for the
/// caller to place downstream. Returns `false` when the CPU budget ran out
/// (the caller stops the epoch's processing sweep).
#[allow(clippy::too_many_arguments)]
fn process_stage(
    node: &mut Node,
    stage_op: &mut dyn Operator,
    queue: &mut VecDeque<Item>,
    source: usize,
    epoch_start_s: f64,
    epoch_secs: f64,
    completions: &mut Vec<SpCompletion>,
    routed: &mut Vec<Item>,
    progressed: &mut bool,
    usage_us: Option<&mut f64>,
) -> bool {
    let mut quota = calibration::EXEC_QUANTUM;
    let mut stage_usage = 0.0;
    let mut out_buf: Vec<Batch> = Vec::new();
    let fits = loop {
        if quota == 0 {
            break true;
        }
        let Some(item) = queue.pop_front() else {
            break true;
        };
        if item.batch.is_empty() {
            continue;
        }
        let cost = stage_op.cost_us();
        let take = item.batch.len().min(quota).min(node.affordable(cost));
        if take == 0 {
            queue.push_front(item);
            break false;
        }
        let head = if take == item.batch.len() {
            item.batch
        } else {
            let rest = item.batch.slice(take..item.batch.len());
            let head = item.batch.slice(0..take);
            queue.push_front(Item {
                batch: rest,
                arrived: item.arrived,
                kind: item.kind,
            });
            head
        };
        let charged = take as f64 * cost;
        node.charge_upto(charged);
        stage_usage += charged;
        quota -= take;
        *progressed = true;
        let completed_s = (epoch_start_s + node.epoch_utilisation() * epoch_secs).max(item.arrived);
        let in_ts = head.timestamps.clone();
        out_buf.clear();
        stage_op.process_batch(head, &mut out_buf);
        if item.kind == ItemKind::Input {
            // Terminal rows: filtered out or absorbed into state.
            for ts in absorbed_timestamps(&in_ts, &out_buf) {
                completions.push(SpCompletion {
                    source,
                    ts,
                    completed_s,
                });
            }
        }
        for out in out_buf.drain(..) {
            routed.push(Item {
                batch: out,
                arrived: completed_s,
                kind: item.kind,
            });
        }
    };
    if let Some(usage) = usage_us {
        *usage += stage_usage;
    }
    fits
}

impl SpEngine {
    /// Builds a single-node SP hosting `n_sources` replicas of the planned
    /// query, each split into `n_shards` keyed shard pipelines at the plan's
    /// stateful boundary (`n_shards = 1` is the unsharded chain). The node
    /// owns the whole ring.
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        n_sources: usize,
        sp_cores: f64,
        epoch_secs: f64,
        n_shards: usize,
    ) -> SpEngine {
        SpEngine::for_node(
            planned, costs, n_sources, sp_cores, epoch_secs, n_shards, 0, 1,
        )
    }

    /// Builds one node of an SP cluster: the engine hosts pipelines only for
    /// the ring slice `shards_of_node(node_id, n_shards, n_nodes)` and ships
    /// remote-shard traffic through its outbox. Keyless plans degenerate to
    /// a single shard on a single node (there is nothing to partition by).
    #[allow(clippy::too_many_arguments)]
    pub fn for_node(
        planned: &PlannedQuery,
        costs: &CostProfile,
        n_sources: usize,
        sp_cores: f64,
        epoch_secs: f64,
        n_shards: usize,
        node_id: usize,
        n_nodes: usize,
    ) -> SpEngine {
        let boundary = planned.plan.shard_boundary();
        // Without a keyed operator there is nothing to partition by; the
        // whole (stateless) chain runs as the prefix of a single shard.
        let (n_shards, n_nodes, node_id) = if boundary.is_some() {
            (n_shards.max(1), n_nodes.max(1), node_id)
        } else {
            (1, 1, 0)
        };
        assert!(
            n_nodes <= n_shards,
            "{n_nodes} nodes cannot split a {n_shards}-shard ring"
        );
        let owned = shards_of_node(node_id, n_shards, n_nodes);
        let (g, shard_keys) = match &boundary {
            Some((g, keys)) => (*g, keys.clone()),
            None => (planned.plan.len(), Vec::new()),
        };
        let mut replicas = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            let mut prefix =
                build_pipeline(&planned.plan, costs, AggRole::Final).expect("validated plan");
            let _ = prefix.split_off(g);
            let prefix_queues = (0..prefix.len()).map(|_| VecDeque::new()).collect();
            let shards = owned
                .clone()
                .map(|_| {
                    let mut ops = build_pipeline(&planned.plan, costs, AggRole::Final)
                        .expect("validated plan");
                    let stages = ops.split_off(g);
                    let queues = (0..=stages.len()).map(|_| VecDeque::new()).collect();
                    ShardPipeline {
                        stages,
                        queues,
                        drained_records: 0,
                        usage_us: 0.0,
                    }
                })
                .collect();
            replicas.push(Replica {
                prefix,
                prefix_queues,
                shard_keys: shard_keys.clone(),
                shards,
            });
        }
        SpEngine {
            node: Node::new(
                NodeId(node_id as u32),
                CpuBudget::fraction(sp_cores),
                0.0,
                7,
            ),
            node_id,
            n_nodes,
            n_shards,
            owned,
            replicas,
            epoch_secs,
            epoch_index: 0,
            results_emitted: 0,
            lateness_secs: calibration::LATENCY_BOUND_SECS,
            outbox: Vec::new(),
            shard_wire_out: vec![0; n_shards],
            dict_sync: vec![DictVersions::new(); n_shards],
            collected: None,
        }
    }

    fn ring_ctx<'a>(
        owned: &Range<usize>,
        n_shards: usize,
        epoch: u64,
        outbox: &'a mut Vec<(NetPayload, f64)>,
        shard_wire_out: &'a mut [u64],
        dict_sync: &'a mut [DictVersions],
    ) -> RingCtx<'a> {
        RingCtx {
            owned: owned.clone(),
            n_shards,
            epoch,
            outbox,
            shard_wire_out,
            dict_sync,
        }
    }

    /// Forgets which dictionary versions were already charged toward every
    /// shard stream: the next outbound batch per stream is re-charged its
    /// full dictionary history. Recovery calls this when a receiver restarts
    /// or shards are reassigned, mirroring the full-page re-handshake a
    /// delta-aware link performs after losing its peer's mirror state.
    pub fn reset_dict_sync(&mut self) {
        for link in &mut self.dict_sync {
            link.clear();
        }
    }

    /// Total result rows emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Width of the fixed virtual-shard ring (cluster-global).
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// This node's id within its cluster.
    pub fn node_id(&self) -> usize {
        self.node_id
    }

    /// Nodes in the cluster this engine belongs to.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// The contiguous ring slice this node owns.
    pub fn owned_shards(&self) -> Range<usize> {
        self.owned.clone()
    }

    /// Drain/usage counters for the *owned* shards (in ring order),
    /// aggregated across replicas. Wire bytes stay zero here — shipping is
    /// charged at the sender per target shard; see
    /// [`SpEngine::shard_wire_out`].
    pub fn shard_stats(&self) -> Vec<SpShardStat> {
        let mut stats = vec![SpShardStat::default(); self.owned.len()];
        for replica in &self.replicas {
            for (stat, shard) in stats.iter_mut().zip(&replica.shards) {
                stat.drained_records += shard.drained_records;
                stat.usage_us += shard.usage_us;
            }
        }
        stats
    }

    /// Wire bytes this node shipped toward each shard of the ring (remote
    /// targets only), `n_shards` wide.
    pub fn shard_wire_out(&self) -> &[u64] {
        &self.shard_wire_out
    }

    /// Enables retention of result rows for exactness fingerprinting.
    pub fn set_collect_results(&mut self, on: bool) {
        self.collected = if on { Some(Vec::new()) } else { None };
    }

    /// Retained result rows, when collection is enabled.
    pub fn collected_results(&self) -> Option<&[Record]> {
        self.collected.as_deref()
    }

    fn collect_batch(collected: &mut Option<Vec<Record>>, batch: &Batch) {
        if let Some(rows) = collected {
            rows.extend(batch.to_records());
        }
    }

    /// The SP node (budget inspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Rows still queued (delivered but unprocessed).
    pub fn backlog_records(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| {
                let prefix: usize = r
                    .prefix_queues
                    .iter()
                    .flat_map(|q| q.iter())
                    .map(|i| i.batch.len())
                    .sum();
                let shards: usize = r
                    .shards
                    .iter()
                    .flat_map(|s| s.queues.iter())
                    .flat_map(|q| q.iter())
                    .map(|i| i.batch.len())
                    .sum();
                prefix + shards
            })
            .sum()
    }

    /// Payloads bound for other nodes, produced since the last take. Each is
    /// paired with the virtual time it was produced.
    pub fn take_outbound(&mut self) -> Vec<(NetPayload, f64)> {
        std::mem::take(&mut self.outbox)
    }

    /// Delivers a payload that finished its transfer at `arrival_secs`:
    /// uplink traffic from `source`, or inter-node shard traffic (whose
    /// source is carried in the payload).
    pub fn deliver(&mut self, source: usize, payload: NetPayload, arrival_secs: f64) {
        let SpEngine {
            node,
            node_id,
            replicas,
            owned,
            n_shards,
            epoch_index,
            outbox,
            shard_wire_out,
            dict_sync,
            ..
        } = self;
        match payload {
            NetPayload::Records { stage, batch } => {
                if batch.is_empty() {
                    return;
                }
                let replica = &mut replicas[source];
                let g = replica.prefix.len();
                let stage = stage.min(g + replica.suffix_len());
                if stage < g {
                    replica.prefix_queues[stage].push_back(Item {
                        batch,
                        arrived: arrival_secs,
                        kind: ItemKind::Input,
                    });
                } else {
                    let mut ring = Self::ring_ctx(
                        owned,
                        *n_shards,
                        *epoch_index,
                        outbox,
                        shard_wire_out,
                        dict_sync,
                    );
                    route_to_shards(
                        replica,
                        source,
                        batch,
                        stage - g,
                        arrival_secs,
                        ItemKind::Input,
                        &mut ring,
                    );
                }
            }
            NetPayload::StateDelta { stage, delta } => {
                let cost = MERGE_COST_PER_ENTRY_US * delta.entry_count() as f64;
                node.charge_upto(cost);
                let replica = &mut replicas[source];
                let g = replica.prefix.len();
                if stage < g {
                    // A stateless prefix op cannot own mergeable state; the
                    // default merge hook ignores it.
                    replica.prefix[stage].merge_state(delta);
                } else {
                    let mut ring = Self::ring_ctx(
                        owned,
                        *n_shards,
                        *epoch_index,
                        outbox,
                        shard_wire_out,
                        dict_sync,
                    );
                    merge_sharded(replica, source, stage - g, delta, &mut ring);
                }
            }
            NetPayload::ShardBatch {
                shard,
                source,
                rel,
                batch,
                ..
            } => {
                if batch.is_empty() {
                    return;
                }
                let shard = shard as usize;
                assert!(
                    owned.contains(&shard),
                    "shard {shard} delivered to node {node_id} owning {owned:?}"
                );
                let replica = &mut replicas[source as usize];
                let local = &mut replica.shards[shard - owned.start];
                // `rel == stages.len()` is the terminal queue (fully
                // source-processed rows); anything past it never came from
                // a routing helper or the wire codec (which bounds `rel` by
                // its schema table), so don't clamp it into the results.
                let rel = rel as usize;
                assert!(
                    rel <= local.stages.len(),
                    "ShardBatch rel {rel} past suffix length {}",
                    local.stages.len()
                );
                local.drained_records += batch.len() as u64;
                local.queues[rel].push_back(Item {
                    batch,
                    arrived: arrival_secs,
                    kind: ItemKind::Input,
                });
            }
            NetPayload::ShardState {
                shard,
                source,
                rel,
                delta,
                ..
            } => {
                let cost = MERGE_COST_PER_ENTRY_US * delta.entry_count() as f64;
                node.charge_upto(cost);
                let shard = shard as usize;
                assert!(
                    owned.contains(&shard),
                    "shard {shard} delivered to node {node_id} owning {owned:?}"
                );
                let replica = &mut replicas[source as usize];
                let local = &mut replica.shards[shard - owned.start];
                let rel = rel as usize;
                if rel < local.stages.len() {
                    local.stages[rel].merge_state(delta);
                }
            }
        }
    }

    /// Opens a new epoch on this node's CPU budget. The cluster calls this
    /// once per epoch before any processing pass.
    pub fn begin_epoch(&mut self) {
        self.node.begin_epoch(self.epoch_secs);
        self.epoch_index += 1;
    }

    /// Processes queued arrivals through the replica prefixes and owned
    /// shard pipelines within the node's remaining epoch budget. Callable
    /// multiple times per epoch — the cluster re-enters after transferring
    /// inter-node payloads so remote shard traffic is processed in the same
    /// epoch it was produced (budget permitting), matching single-node
    /// timing. Returns input-record completions.
    pub fn process_queued(&mut self, epoch_start_us: Ts) -> Vec<SpCompletion> {
        let mut completions = Vec::new();
        let epoch_start_s = epoch_start_us as f64 / 1e6;
        let SpEngine {
            node,
            replicas,
            owned,
            n_shards,
            epoch_index,
            outbox,
            shard_wire_out,
            dict_sync,
            collected,
            results_emitted,
            epoch_secs,
            ..
        } = self;

        // Active-set sweep: at 10k-source fan-in most replicas are idle in
        // any given pass (nothing queued, or their budget share is spent),
        // and a visit to an idle replica is a pure no-op — so each pass
        // iterates a worklist of replicas that still hold queued items
        // instead of rescanning every replica × stage. Processing one
        // replica never enqueues into another (cross-replica traffic leaves
        // via the outbox), so the set only shrinks within a call; `deliver`
        // refills it between calls. Worklist order stays ascending, keeping
        // completion/outbox order identical to the full scan.
        let mut active: Vec<usize> = (0..replicas.len())
            .filter(|&i| replicas[i].has_pending())
            .collect();
        let mut routed: Vec<Item> = Vec::new();
        'outer: loop {
            let mut progressed = false;
            let mut still_pending: Vec<usize> = Vec::with_capacity(active.len());
            for &source in &active {
                let replica = &mut replicas[source];
                // Stateless prefix.
                let g = replica.prefix.len();
                for stage in 0..g {
                    routed.clear();
                    let fits = process_stage(
                        node,
                        replica.prefix[stage].as_mut(),
                        &mut replica.prefix_queues[stage],
                        source,
                        epoch_start_s,
                        *epoch_secs,
                        &mut completions,
                        &mut routed,
                        &mut progressed,
                        None,
                    );
                    for item in routed.drain(..) {
                        if stage + 1 < g {
                            replica.prefix_queues[stage + 1].push_back(item);
                        } else {
                            let mut ring = Self::ring_ctx(
                                owned,
                                *n_shards,
                                *epoch_index,
                                outbox,
                                shard_wire_out,
                                dict_sync,
                            );
                            route_to_shards(
                                replica,
                                source,
                                item.batch,
                                0,
                                item.arrived,
                                item.kind,
                                &mut ring,
                            );
                        }
                    }
                    if !fits {
                        break 'outer;
                    }
                }
                // Keyed shard pipelines (owned ring slice).
                let n_stages = replica.suffix_len();
                for shard in &mut replica.shards {
                    for stage in 0..n_stages {
                        routed.clear();
                        let fits = process_stage(
                            node,
                            shard.stages[stage].as_mut(),
                            &mut shard.queues[stage],
                            source,
                            epoch_start_s,
                            *epoch_secs,
                            &mut completions,
                            &mut routed,
                            &mut progressed,
                            Some(&mut shard.usage_us),
                        );
                        for item in routed.drain(..) {
                            shard.queues[stage + 1].push_back(item);
                        }
                        if !fits {
                            break 'outer;
                        }
                    }
                    // Batches that traversed the whole chain.
                    while let Some(item) = shard.queues[n_stages].pop_front() {
                        match item.kind {
                            ItemKind::WindowResult => {
                                Self::collect_batch(collected, &item.batch);
                                *results_emitted += item.batch.len() as u64;
                            }
                            ItemKind::DeltaResult => {
                                *results_emitted += item.batch.len() as u64;
                            }
                            ItemKind::Input => {
                                // Stateless-tail input rows: completing the
                                // chain is both their completion and a query
                                // result.
                                for &ts in &item.batch.timestamps {
                                    completions.push(SpCompletion {
                                        source,
                                        ts,
                                        completed_s: item.arrived.max(epoch_start_s),
                                    });
                                }
                                Self::collect_batch(collected, &item.batch);
                                *results_emitted += item.batch.len() as u64;
                            }
                        }
                        progressed = true;
                    }
                }
                if replica.has_pending() {
                    still_pending.push(source);
                }
            }
            active = still_pending;
            if !progressed || active.is_empty() {
                break;
            }
        }
        completions
    }

    /// Advances event time with a lateness allowance so slow drained records
    /// still find their windows open (watermark replication on the drain
    /// path, §V). Window results emitted at the boundary stay on the shard
    /// that owns their keys — they cascade down that shard's own suffix,
    /// never crossing shards (or nodes).
    pub fn advance_time(&mut self, epoch_start_us: Ts) {
        let epoch_end_us = epoch_start_us + (self.epoch_secs * 1e6) as Ts;
        let wm = epoch_end_us - (self.lateness_secs * 1e6) as Ts;
        let epoch_start_s = epoch_start_us as f64 / 1e6;
        let arrived = epoch_start_s + self.epoch_secs;
        let SpEngine {
            replicas,
            owned,
            n_shards,
            epoch_index,
            outbox,
            shard_wire_out,
            dict_sync,
            collected,
            results_emitted,
            ..
        } = self;
        let mut wm_out: Vec<Batch> = Vec::new();
        for (source, replica) in replicas.iter_mut().enumerate() {
            let g = replica.prefix.len();
            for stage in 0..g {
                for (hook, kind) in [(0, ItemKind::WindowResult), (1, ItemKind::DeltaResult)] {
                    wm_out.clear();
                    if hook == 0 {
                        replica.prefix[stage].on_watermark(wm, &mut wm_out);
                    } else {
                        replica.prefix[stage].on_epoch(&mut wm_out);
                    }
                    for out in wm_out.drain(..) {
                        if stage + 1 < g {
                            replica.prefix_queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived,
                                kind,
                            });
                        } else {
                            let mut ring = Self::ring_ctx(
                                owned,
                                *n_shards,
                                *epoch_index,
                                outbox,
                                shard_wire_out,
                                dict_sync,
                            );
                            route_to_shards(replica, source, out, 0, arrived, kind, &mut ring);
                        }
                    }
                }
            }
            let n_stages = replica.suffix_len();
            for shard in &mut replica.shards {
                for stage in 0..n_stages {
                    for (hook, kind) in [(0, ItemKind::WindowResult), (1, ItemKind::DeltaResult)] {
                        wm_out.clear();
                        if hook == 0 {
                            shard.stages[stage].on_watermark(wm, &mut wm_out);
                        } else {
                            shard.stages[stage].on_epoch(&mut wm_out);
                        }
                        for out in wm_out.drain(..) {
                            if stage + 1 < n_stages {
                                shard.queues[stage + 1].push_back(Item {
                                    batch: out,
                                    arrived,
                                    kind,
                                });
                            } else {
                                // Final-stage emissions are query results.
                                if kind == ItemKind::WindowResult {
                                    Self::collect_batch(collected, &out);
                                }
                                *results_emitted += out.len() as u64;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs one SP epoch on a *single-node* deployment: processes queued
    /// arrivals within the core budget, then advances event time. Clusters
    /// drive the three phases separately so inter-node payloads can transfer
    /// between processing passes. Returns input-record completions.
    pub fn run_epoch(&mut self, epoch_start_us: Ts) -> Vec<SpCompletion> {
        self.begin_epoch();
        let completions = self.process_queued(epoch_start_us);
        self.advance_time(epoch_start_us);
        completions
    }

    /// End-of-run flush, pass 1: processes every queued batch (no budget
    /// limit) through prefixes and owned shard pipelines. Remote-shard
    /// traffic produced while flushing lands in the outbox — the cluster
    /// alternates flush passes with transfers until the outboxes run dry.
    pub fn flush_queues(&mut self) {
        let SpEngine {
            replicas,
            owned,
            n_shards,
            epoch_index,
            outbox,
            shard_wire_out,
            dict_sync,
            collected,
            results_emitted,
            ..
        } = self;
        for (source, replica) in replicas.iter_mut().enumerate() {
            // Flush the prefix forward into the shard partitioner.
            let g = replica.prefix.len();
            for stage in 0..g {
                let mut out_buf: Vec<Batch> = Vec::new();
                while let Some(item) = replica.prefix_queues[stage].pop_front() {
                    out_buf.clear();
                    replica.prefix[stage].process_batch(item.batch, &mut out_buf);
                    for out in out_buf.drain(..) {
                        if stage + 1 < g {
                            replica.prefix_queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived: item.arrived,
                                kind: item.kind,
                            });
                        } else {
                            let mut ring = Self::ring_ctx(
                                owned,
                                *n_shards,
                                *epoch_index,
                                outbox,
                                shard_wire_out,
                                dict_sync,
                            );
                            route_to_shards(
                                replica,
                                source,
                                out,
                                0,
                                item.arrived,
                                item.kind,
                                &mut ring,
                            );
                        }
                    }
                }
            }
            // Flush each owned shard pipeline.
            for shard in &mut replica.shards {
                let n = shard.stages.len();
                for stage in 0..n {
                    let mut out_buf: Vec<Batch> = Vec::new();
                    while let Some(item) = shard.queues[stage].pop_front() {
                        out_buf.clear();
                        shard.stages[stage].process_batch(item.batch, &mut out_buf);
                        for out in out_buf.drain(..) {
                            shard.queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived: item.arrived,
                                kind: item.kind,
                            });
                        }
                    }
                }
                while let Some(item) = shard.queues[n].pop_front() {
                    if item.kind != ItemKind::DeltaResult {
                        Self::collect_batch(collected, &item.batch);
                    }
                    *results_emitted += item.batch.len() as u64;
                }
            }
        }
    }

    /// End-of-run flush, pass 2: closes every remaining window on every
    /// owned shard and runs the emissions through the rest of the chain
    /// inline (the flush shared by all backends).
    pub fn close_windows(&mut self) {
        for replica in &mut self.replicas {
            for shard in &mut replica.shards {
                for batch in
                    streamkit::physical::drain_windows(&mut shard.stages, streamkit::time::TS_MAX)
                {
                    Self::collect_batch(&mut self.collected, &batch);
                    self.results_emitted += batch.len() as u64;
                }
            }
        }
    }

    /// End-of-run flush on a single-node deployment: queue flush + window
    /// close, so retained results cover the whole stream. Used for exactness
    /// fingerprinting; per-epoch throughput accounting is unaffected (the
    /// measurement window has already ended).
    pub fn finalize(&mut self) {
        self.flush_queues();
        debug_assert!(
            self.outbox.is_empty(),
            "single-node flush produced outbound"
        );
        self.close_windows();
    }
}
