//! The stream-processor engine — batch-first and key-sharded.
//!
//! Each data source has a replica of the planned query at the SP (paper
//! Fig. 5), structured around the plan's *keyed boundary* (the first
//! stateful operator):
//!
//! * the stateless **prefix** runs as one chain per replica — drained
//!   batches enter at the operator they were drained in front of;
//! * at the boundary, a key-hash partitioner ([`Batch::shard_by_key`])
//!   splits every batch into `n_shards` disjoint sub-batches, each feeding
//!   an independent **shard pipeline** (the stateful operator plus the rest
//!   of the chain). Rows with equal group keys always land on the same
//!   shard, and shipped [`StatePartial`] entries are routed to the shard
//!   owning their key ([`shard_of_values`]) — so window results stay exact:
//!   a group's whole lifetime (updates, merged partials, close) happens on
//!   one shard, and the union over shards equals the unsharded run.
//!
//! `n_shards = 1` reproduces the unsharded replica chains exactly. The SP's
//! cores are shared across all replicas and shards; per-shard usage and
//! drain counters feed [`SpEngine::shard_stats`].
//!
//! Throughput accounting distinguishes the *input domain* (drained source
//! rows still being processed — their terminal events complete the input
//! work) from the *result domain* (rows emitted by aggregations — query
//! output, never double-counted as input completions).

use std::collections::VecDeque;

use simnet::{CpuBudget, Node, NodeId};
use streamkit::batch::Batch;
use streamkit::ops::{absorbed_timestamps, AggRole, Operator, StatePartial};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::record::Record;
use streamkit::shard::shard_of_values;
use streamkit::time::Ts;

use crate::calibration;
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;

/// Which domain a queued batch belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemKind {
    /// Drained source rows still being processed (input domain).
    Input,
    /// Rows emitted by a window close (query result).
    WindowResult,
    /// Per-epoch dashboard deltas (result domain, never fingerprinted).
    DeltaResult,
}

/// A queued item: the batch, its network-arrival time, and its domain.
struct Item {
    batch: Batch,
    arrived: f64,
    kind: ItemKind,
}

/// One keyed shard pipeline: the stateful boundary operator and the rest of
/// the chain, owning a disjoint slice of the replica's key space.
struct ShardPipeline {
    stages: Vec<Box<dyn Operator>>,
    /// Arrival queues, one per stage, plus a final slot for batches that
    /// completed the whole chain.
    queues: Vec<VecDeque<Item>>,
    /// Input rows routed into this shard (drain share).
    drained_records: u64,
    /// Modelled compute charged to this shard, µs.
    usage_us: f64,
}

/// Per-source replica: stateless prefix + keyed shard pipelines.
struct Replica {
    prefix: Vec<Box<dyn Operator>>,
    /// Arrival queues, one per prefix stage.
    prefix_queues: Vec<VecDeque<Item>>,
    /// Group-key columns at the boundary edge (empty when the plan has no
    /// keyed operator; everything then routes to shard 0).
    shard_keys: Vec<usize>,
    shards: Vec<ShardPipeline>,
}

impl Replica {
    fn suffix_len(&self) -> usize {
        self.shards.first().map_or(0, |s| s.stages.len())
    }

    /// Routes a batch entering at suffix stage `rel` to its shard(s): the
    /// boundary partitions by key hash; later stages (and keyless plans)
    /// are stateless, so shard 0 hosts them.
    fn route_to_shards(&mut self, batch: Batch, rel: usize, arrived: f64, kind: ItemKind) {
        if batch.is_empty() {
            return;
        }
        if rel == 0 && self.shards.len() > 1 && !self.shard_keys.is_empty() {
            let parts = batch.shard_by_key(&self.shard_keys, self.shards.len());
            for (shard, part) in self.shards.iter_mut().zip(parts) {
                if part.is_empty() {
                    continue;
                }
                if kind == ItemKind::Input {
                    shard.drained_records += part.len() as u64;
                }
                shard.queues[0].push_back(Item {
                    batch: part,
                    arrived,
                    kind,
                });
            }
        } else {
            let shard = &mut self.shards[0];
            if kind == ItemKind::Input {
                shard.drained_records += batch.len() as u64;
            }
            shard.queues[rel].push_back(Item {
                batch,
                arrived,
                kind,
            });
        }
    }

    /// Merges a shipped state delta into the owning shard(s) at suffix
    /// stage `rel`: entries are split by the hash of their group key, the
    /// same mapping the row partitioner uses.
    fn merge_sharded(&mut self, rel: usize, delta: StatePartial) {
        if rel >= self.suffix_len() {
            return;
        }
        if self.shards.len() == 1 {
            self.shards[0].stages[rel].merge_state(delta);
            return;
        }
        let StatePartial::Group(entries) = delta;
        let n = self.shards.len();
        let mut per_shard: Vec<Vec<_>> = (0..n).map(|_| Vec::new()).collect();
        for entry in entries {
            per_shard[shard_of_values(&entry.key, n)].push(entry);
        }
        for (shard, part) in self.shards.iter_mut().zip(per_shard) {
            if !part.is_empty() {
                shard.stages[rel].merge_state(StatePartial::Group(part));
            }
        }
    }
}

/// Cost of merging one group's partial state, µs.
const MERGE_COST_PER_ENTRY_US: f64 = 0.5;

/// An input-record completion at the SP.
#[derive(Debug, Clone, Copy)]
pub struct SpCompletion {
    /// Which source the record came from.
    pub source: usize,
    /// The record's event timestamp.
    pub ts: Ts,
    /// Virtual completion time, seconds.
    pub completed_s: f64,
}

/// Per-shard drain/usage counters, aggregated across replicas.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpShardStat {
    /// Input rows routed into the shard.
    pub drained_records: u64,
    /// Modelled compute charged to the shard's stages, µs.
    pub usage_us: f64,
}

/// The SP engine.
pub struct SpEngine {
    node: Node,
    replicas: Vec<Replica>,
    n_shards: usize,
    epoch_secs: f64,
    results_emitted: u64,
    lateness_secs: f64,
    /// Retained result rows (window closes and stateless-tail completions),
    /// when result collection is enabled for exactness fingerprinting.
    collected: Option<Vec<Record>>,
}

/// Processes one stage queue under the execution quantum, charging `node`
/// and crediting completions. Output items are appended to `routed` for the
/// caller to place downstream. Returns `false` when the CPU budget ran out
/// (the caller stops the epoch's processing sweep).
#[allow(clippy::too_many_arguments)]
fn process_stage(
    node: &mut Node,
    stage_op: &mut dyn Operator,
    queue: &mut VecDeque<Item>,
    source: usize,
    epoch_start_s: f64,
    epoch_secs: f64,
    completions: &mut Vec<SpCompletion>,
    routed: &mut Vec<Item>,
    progressed: &mut bool,
    usage_us: Option<&mut f64>,
) -> bool {
    let mut quota = calibration::EXEC_QUANTUM;
    let mut stage_usage = 0.0;
    let mut out_buf: Vec<Batch> = Vec::new();
    let fits = loop {
        if quota == 0 {
            break true;
        }
        let Some(item) = queue.pop_front() else {
            break true;
        };
        if item.batch.is_empty() {
            continue;
        }
        let cost = stage_op.cost_us();
        let take = item.batch.len().min(quota).min(node.affordable(cost));
        if take == 0 {
            queue.push_front(item);
            break false;
        }
        let head = if take == item.batch.len() {
            item.batch
        } else {
            let rest = item.batch.slice(take..item.batch.len());
            let head = item.batch.slice(0..take);
            queue.push_front(Item {
                batch: rest,
                arrived: item.arrived,
                kind: item.kind,
            });
            head
        };
        let charged = take as f64 * cost;
        node.charge_upto(charged);
        stage_usage += charged;
        quota -= take;
        *progressed = true;
        let completed_s = (epoch_start_s + node.epoch_utilisation() * epoch_secs).max(item.arrived);
        let in_ts = head.timestamps.clone();
        out_buf.clear();
        stage_op.process_batch(head, &mut out_buf);
        if item.kind == ItemKind::Input {
            // Terminal rows: filtered out or absorbed into state.
            for ts in absorbed_timestamps(&in_ts, &out_buf) {
                completions.push(SpCompletion {
                    source,
                    ts,
                    completed_s,
                });
            }
        }
        for out in out_buf.drain(..) {
            routed.push(Item {
                batch: out,
                arrived: completed_s,
                kind: item.kind,
            });
        }
    };
    if let Some(usage) = usage_us {
        *usage += stage_usage;
    }
    fits
}

impl SpEngine {
    /// Builds an SP hosting `n_sources` replicas of the planned query, each
    /// split into `n_shards` keyed shard pipelines at the plan's stateful
    /// boundary (`n_shards = 1` is the unsharded chain).
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        n_sources: usize,
        sp_cores: f64,
        epoch_secs: f64,
        n_shards: usize,
    ) -> SpEngine {
        let boundary = planned.plan.shard_boundary();
        // Without a keyed operator there is nothing to partition by; the
        // whole (stateless) chain runs as the prefix of a single shard.
        let n_shards = if boundary.is_some() {
            n_shards.max(1)
        } else {
            1
        };
        let (g, shard_keys) = match &boundary {
            Some((g, keys)) => (*g, keys.clone()),
            None => (planned.plan.len(), Vec::new()),
        };
        let mut replicas = Vec::with_capacity(n_sources);
        for _ in 0..n_sources {
            let mut prefix =
                build_pipeline(&planned.plan, costs, AggRole::Final).expect("validated plan");
            let _ = prefix.split_off(g);
            let prefix_queues = (0..prefix.len()).map(|_| VecDeque::new()).collect();
            let shards = (0..n_shards)
                .map(|_| {
                    let mut ops = build_pipeline(&planned.plan, costs, AggRole::Final)
                        .expect("validated plan");
                    let stages = ops.split_off(g);
                    let queues = (0..=stages.len()).map(|_| VecDeque::new()).collect();
                    ShardPipeline {
                        stages,
                        queues,
                        drained_records: 0,
                        usage_us: 0.0,
                    }
                })
                .collect();
            replicas.push(Replica {
                prefix,
                prefix_queues,
                shard_keys: shard_keys.clone(),
                shards,
            });
        }
        SpEngine {
            node: Node::new(NodeId(0), CpuBudget::fraction(sp_cores), 0.0, 7),
            replicas,
            n_shards,
            epoch_secs,
            results_emitted: 0,
            lateness_secs: calibration::LATENCY_BOUND_SECS,
            collected: None,
        }
    }

    /// Total result rows emitted so far.
    pub fn results_emitted(&self) -> u64 {
        self.results_emitted
    }

    /// Shard pipelines per replica.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Per-shard drain/usage counters, aggregated across replicas.
    pub fn shard_stats(&self) -> Vec<SpShardStat> {
        let mut stats = vec![SpShardStat::default(); self.n_shards];
        for replica in &self.replicas {
            for (stat, shard) in stats.iter_mut().zip(&replica.shards) {
                stat.drained_records += shard.drained_records;
                stat.usage_us += shard.usage_us;
            }
        }
        stats
    }

    /// Enables retention of result rows for exactness fingerprinting.
    pub fn set_collect_results(&mut self, on: bool) {
        self.collected = if on { Some(Vec::new()) } else { None };
    }

    /// Retained result rows, when collection is enabled.
    pub fn collected_results(&self) -> Option<&[Record]> {
        self.collected.as_deref()
    }

    fn collect_batch(collected: &mut Option<Vec<Record>>, batch: &Batch) {
        if let Some(rows) = collected {
            rows.extend(batch.to_records());
        }
    }

    /// The SP node (budget inspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Rows still queued (delivered but unprocessed).
    pub fn backlog_records(&self) -> usize {
        self.replicas
            .iter()
            .map(|r| {
                let prefix: usize = r
                    .prefix_queues
                    .iter()
                    .flat_map(|q| q.iter())
                    .map(|i| i.batch.len())
                    .sum();
                let shards: usize = r
                    .shards
                    .iter()
                    .flat_map(|s| s.queues.iter())
                    .flat_map(|q| q.iter())
                    .map(|i| i.batch.len())
                    .sum();
                prefix + shards
            })
            .sum()
    }

    /// Delivers a payload from `source` that finished its network transfer at
    /// `arrival_secs`.
    pub fn deliver(&mut self, source: usize, payload: NetPayload, arrival_secs: f64) {
        let replica = &mut self.replicas[source];
        let g = replica.prefix.len();
        match payload {
            NetPayload::Records { stage, batch } => {
                if batch.is_empty() {
                    return;
                }
                let stage = stage.min(g + replica.suffix_len());
                if stage < g {
                    replica.prefix_queues[stage].push_back(Item {
                        batch,
                        arrived: arrival_secs,
                        kind: ItemKind::Input,
                    });
                } else {
                    replica.route_to_shards(batch, stage - g, arrival_secs, ItemKind::Input);
                }
            }
            NetPayload::StateDelta { stage, delta } => {
                let cost = MERGE_COST_PER_ENTRY_US * delta.entry_count() as f64;
                self.node.charge_upto(cost);
                if stage < g {
                    // A stateless prefix op cannot own mergeable state; the
                    // default merge hook ignores it.
                    replica.prefix[stage].merge_state(delta);
                } else {
                    replica.merge_sharded(stage - g, delta);
                }
            }
        }
    }

    /// Runs one SP epoch: processes queued arrivals through the replica
    /// prefixes and shard pipelines within the SP's core budget, then
    /// advances event time. Returns input-record completions.
    pub fn run_epoch(&mut self, epoch_start_us: Ts) -> Vec<SpCompletion> {
        self.node.begin_epoch(self.epoch_secs);
        let mut completions = Vec::new();
        let epoch_start_s = epoch_start_us as f64 / 1e6;
        let epoch_end_us = epoch_start_us + (self.epoch_secs * 1e6) as Ts;

        let mut routed: Vec<Item> = Vec::new();
        'outer: loop {
            let mut progressed = false;
            for (source, replica) in self.replicas.iter_mut().enumerate() {
                // Stateless prefix.
                let g = replica.prefix.len();
                for stage in 0..g {
                    routed.clear();
                    let fits = process_stage(
                        &mut self.node,
                        replica.prefix[stage].as_mut(),
                        &mut replica.prefix_queues[stage],
                        source,
                        epoch_start_s,
                        self.epoch_secs,
                        &mut completions,
                        &mut routed,
                        &mut progressed,
                        None,
                    );
                    for item in routed.drain(..) {
                        if stage + 1 < g {
                            replica.prefix_queues[stage + 1].push_back(item);
                        } else {
                            replica.route_to_shards(item.batch, 0, item.arrived, item.kind);
                        }
                    }
                    if !fits {
                        break 'outer;
                    }
                }
                // Keyed shard pipelines.
                let n_stages = replica.suffix_len();
                for shard in replica.shards.iter_mut() {
                    for stage in 0..n_stages {
                        routed.clear();
                        let fits = process_stage(
                            &mut self.node,
                            shard.stages[stage].as_mut(),
                            &mut shard.queues[stage],
                            source,
                            epoch_start_s,
                            self.epoch_secs,
                            &mut completions,
                            &mut routed,
                            &mut progressed,
                            Some(&mut shard.usage_us),
                        );
                        for item in routed.drain(..) {
                            shard.queues[stage + 1].push_back(item);
                        }
                        if !fits {
                            break 'outer;
                        }
                    }
                    // Batches that traversed the whole chain.
                    while let Some(item) = shard.queues[n_stages].pop_front() {
                        match item.kind {
                            ItemKind::WindowResult => {
                                Self::collect_batch(&mut self.collected, &item.batch);
                                self.results_emitted += item.batch.len() as u64;
                            }
                            ItemKind::DeltaResult => {
                                self.results_emitted += item.batch.len() as u64
                            }
                            ItemKind::Input => {
                                // Stateless-tail input rows: completing the
                                // chain is both their completion and a query
                                // result.
                                for &ts in &item.batch.timestamps {
                                    completions.push(SpCompletion {
                                        source,
                                        ts,
                                        completed_s: item.arrived.max(epoch_start_s),
                                    });
                                }
                                Self::collect_batch(&mut self.collected, &item.batch);
                                self.results_emitted += item.batch.len() as u64;
                            }
                        }
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        // Advance event time with a lateness allowance so slow drained
        // records still find their windows open (watermark replication on
        // the drain path, §V). Window results emitted at the boundary stay
        // on the shard that owns their keys — they cascade down that
        // shard's own suffix, never crossing shards.
        let wm = epoch_end_us - (self.lateness_secs * 1e6) as Ts;
        let arrived = epoch_start_s + self.epoch_secs;
        let mut wm_out: Vec<Batch> = Vec::new();
        for replica in &mut self.replicas {
            let g = replica.prefix.len();
            for stage in 0..g {
                for (hook, kind) in [(0, ItemKind::WindowResult), (1, ItemKind::DeltaResult)] {
                    wm_out.clear();
                    if hook == 0 {
                        replica.prefix[stage].on_watermark(wm, &mut wm_out);
                    } else {
                        replica.prefix[stage].on_epoch(&mut wm_out);
                    }
                    for out in wm_out.drain(..) {
                        if stage + 1 < g {
                            replica.prefix_queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived,
                                kind,
                            });
                        } else {
                            replica.route_to_shards(out, 0, arrived, kind);
                        }
                    }
                }
            }
            let n_stages = replica.suffix_len();
            for shard in replica.shards.iter_mut() {
                for stage in 0..n_stages {
                    for (hook, kind) in [(0, ItemKind::WindowResult), (1, ItemKind::DeltaResult)] {
                        wm_out.clear();
                        if hook == 0 {
                            shard.stages[stage].on_watermark(wm, &mut wm_out);
                        } else {
                            shard.stages[stage].on_epoch(&mut wm_out);
                        }
                        for out in wm_out.drain(..) {
                            if stage + 1 < n_stages {
                                shard.queues[stage + 1].push_back(Item {
                                    batch: out,
                                    arrived,
                                    kind,
                                });
                            } else {
                                // Final-stage emissions are query results.
                                if kind == ItemKind::WindowResult {
                                    Self::collect_batch(&mut self.collected, &out);
                                }
                                self.results_emitted += out.len() as u64;
                            }
                        }
                    }
                }
            }
        }

        completions
    }

    /// End-of-run flush: processes every queued batch (no budget limit) and
    /// closes all remaining windows, so retained results cover the whole
    /// stream. Used for exactness fingerprinting; per-epoch throughput
    /// accounting is unaffected (the measurement window has already ended).
    pub fn finalize(&mut self) {
        for replica in &mut self.replicas {
            // Flush the prefix forward into the shard partitioner.
            let g = replica.prefix.len();
            for stage in 0..g {
                let mut out_buf: Vec<Batch> = Vec::new();
                while let Some(item) = replica.prefix_queues[stage].pop_front() {
                    out_buf.clear();
                    replica.prefix[stage].process_batch(item.batch, &mut out_buf);
                    for out in out_buf.drain(..) {
                        if stage + 1 < g {
                            replica.prefix_queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived: item.arrived,
                                kind: item.kind,
                            });
                        } else {
                            replica.route_to_shards(out, 0, item.arrived, item.kind);
                        }
                    }
                }
            }
            // Flush each shard pipeline and close its windows.
            for shard in replica.shards.iter_mut() {
                let n = shard.stages.len();
                for stage in 0..n {
                    let mut out_buf: Vec<Batch> = Vec::new();
                    while let Some(item) = shard.queues[stage].pop_front() {
                        out_buf.clear();
                        shard.stages[stage].process_batch(item.batch, &mut out_buf);
                        for out in out_buf.drain(..) {
                            shard.queues[stage + 1].push_back(Item {
                                batch: out,
                                arrived: item.arrived,
                                kind: item.kind,
                            });
                        }
                    }
                }
                while let Some(item) = shard.queues[n].pop_front() {
                    if item.kind != ItemKind::DeltaResult {
                        Self::collect_batch(&mut self.collected, &item.batch);
                    }
                    self.results_emitted += item.batch.len() as u64;
                }
                // Close every remaining window and run the emissions through
                // the rest of the chain inline (the flush shared by all
                // backends).
                for batch in
                    streamkit::physical::drain_windows(&mut shard.stages, streamkit::time::TS_MAX)
                {
                    Self::collect_batch(&mut self.collected, &batch);
                    self.results_emitted += batch.len() as u64;
                }
            }
        }
    }
}
