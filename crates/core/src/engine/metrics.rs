//! Run metrics: throughput, latency, network accounting.

use serde::{Deserialize, Serialize};
use simnet::LatencyStats;

use crate::proxy::QueryState;
use crate::runtime::TraceState;

/// Per-epoch observations for one source's query instance.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Records ingested this epoch.
    pub input_records: u64,
    /// Wire bytes ingested.
    pub input_bytes: u64,
    /// Input-equivalent bytes whose processing completed within the latency
    /// bound this epoch (source-side terminals only; SP-side completions are
    /// added by the block).
    pub on_time_bytes: f64,
    /// Input-equivalent bytes completed late.
    pub late_bytes: f64,
    /// Input-equivalent bytes lost to queue-cap drops.
    pub lost_bytes: f64,
    /// Records drained to the SP (routing + overflow).
    pub drained_records: u64,
    /// Bytes enqueued to the network (records + state deltas).
    pub net_bytes: u64,
    /// State-delta bytes within `net_bytes`.
    pub state_bytes: u64,
    /// Query state observed at the epoch boundary.
    pub query_state: Option<QueryState>,
    /// Fig. 8 trace category for the epoch.
    pub trace: Option<TraceState>,
    /// Subsampled end-to-end latency samples (seconds) for source-side
    /// completions.
    pub latency_samples: Vec<f64>,
}

/// Accumulated metrics over a run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Epochs observed (measurement window only).
    pub epochs: u64,
    /// Total ingested bytes.
    pub input_bytes: f64,
    /// Input-equivalent bytes completed on time.
    pub on_time_bytes: f64,
    /// Input-equivalent bytes completed late.
    pub late_bytes: f64,
    /// Input-equivalent bytes lost.
    pub lost_bytes: f64,
    /// Bytes offered to the network.
    pub net_bytes: f64,
    /// State-delta bytes within `net_bytes` (the Fig. 3 result stream).
    pub state_bytes: f64,
    /// Records drained to the SP.
    pub drained_records: u64,
    /// End-to-end processing latency samples, seconds.
    pub latency: LatencyStats,
}

impl Default for RunMetrics {
    fn default() -> Self {
        RunMetrics {
            epochs: 0,
            input_bytes: 0.0,
            on_time_bytes: 0.0,
            late_bytes: 0.0,
            lost_bytes: 0.0,
            net_bytes: 0.0,
            state_bytes: 0.0,
            drained_records: 0,
            latency: LatencyStats::default(),
        }
    }
}

impl RunMetrics {
    /// Folds one epoch's source-side metrics in.
    pub fn absorb(&mut self, e: &EpochMetrics) {
        self.epochs += 1;
        self.input_bytes += e.input_bytes as f64;
        self.on_time_bytes += e.on_time_bytes;
        self.late_bytes += e.late_bytes;
        self.lost_bytes += e.lost_bytes;
        self.net_bytes += e.net_bytes as f64;
        self.state_bytes += e.state_bytes as f64;
        self.drained_records += e.drained_records;
        for &s in &e.latency_samples {
            self.latency.record(s);
        }
    }

    /// State-delta share of the network rate, Mbps over `secs`.
    pub fn state_mbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        self.state_bytes * 8.0 / secs / crate::calibration::MBPS
    }

    /// On-time throughput in the paper's Mbps over `secs` of virtual time.
    pub fn throughput_mbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        self.on_time_bytes * 8.0 / secs / crate::calibration::MBPS
    }

    /// Offered network rate in Mbps over `secs`.
    pub fn network_mbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        self.net_bytes * 8.0 / secs / crate::calibration::MBPS
    }

    /// Input rate in Mbps over `secs`.
    pub fn input_mbps(&self, secs: f64) -> f64 {
        if secs <= 0.0 {
            return 0.0;
        }
        self.input_bytes * 8.0 / secs / crate::calibration::MBPS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_arithmetic() {
        let mut m = RunMetrics::default();
        m.absorb(&EpochMetrics {
            input_records: 100,
            input_bytes: 1 << 20, // 1 MiB
            on_time_bytes: (1 << 20) as f64,
            ..Default::default()
        });
        // 1 MiB in 1 s = 8 "Mbps" in the binary convention.
        assert!((m.throughput_mbps(1.0) - 8.0).abs() < 1e-9);
        assert_eq!(m.epochs, 1);
    }

    #[test]
    fn zero_window_is_zero() {
        let m = RunMetrics::default();
        assert_eq!(m.throughput_mbps(0.0), 0.0);
    }
}
