//! Execution engines.
//!
//! [`source::SourceEngine`] runs the source-side query instance on an
//! emulated node: control proxies route records, operators charge their costs
//! against the node's CPU budget, and drained data/state flows to the network
//! as [`NetPayload`]s. [`sp::SpEngine`] runs the replica pipelines and state
//! merging on one stream-processor node; [`cluster::SpCluster`] scales the
//! SP tier out to `n_nodes` such engines over a fixed hash ring of virtual
//! shards, shipping remote-shard traffic as the [`NetPayload`] shard
//! variants. [`block::BuildingBlock`] wires N sources, a fair-shared link,
//! and the SP cluster into the paper's core building block (Fig. 4b) and
//! advances them epoch by epoch.

pub mod block;
pub mod cluster;
pub mod metrics;
pub mod netwire;
pub mod source;
pub mod sp;
pub mod transport;
pub mod tree;

use streamkit::batch::Batch;
use streamkit::ops::StatePartial;

pub use block::{BuildingBlock, BuildingBlockConfig, NetworkModel};
pub use cluster::SpCluster;
pub use metrics::{EpochMetrics, RunMetrics};
pub use source::{SourceConfig, SourceEngine};
pub use sp::SpEngine;

/// Data shipped between nodes: source → SP uplink traffic, and — on a
/// multi-node SP — shard traffic between SP nodes. Record traffic travels in
/// the same columnar [`Batch`] layout the wire encoder uses; the shard
/// variants additionally have a binary wire codec ([`netwire`]) so a remote
/// shard is reachable through bytes alone (location transparency).
#[derive(Debug, Clone, PartialEq)]
pub enum NetPayload {
    /// A batch drained at the proxy of operator `stage` (0-based index into
    /// the plan); `stage == plan length` means fully-processed rows
    /// (results of a stateless tail) headed for the SP's merge/collect.
    Records {
        /// Destination operator index on the SP replica.
        stage: usize,
        /// The drained rows, columnar.
        batch: Batch,
    },
    /// Mergeable partial state from the source-side stateful operator at
    /// `stage`.
    StateDelta {
        /// Source operator index.
        stage: usize,
        /// The state increment.
        delta: StatePartial,
    },
    /// A keyed sub-batch crossing SP nodes: every row hashes to virtual
    /// shard `shard` of the fixed ring, entering that shard's pipeline at
    /// suffix stage `rel` (0 = the stateful boundary operator).
    ShardBatch {
        /// Owning virtual shard on the hash ring.
        shard: u32,
        /// Epoch the sender dispatched in (transport ordering/diagnostics).
        epoch: u64,
        /// Originating data source (selects the replica).
        source: u32,
        /// Entry stage relative to the keyed boundary.
        rel: u32,
        /// The keyed rows, columnar.
        batch: Batch,
    },
    /// Partial state owned by virtual shard `shard`, crossing SP nodes to
    /// merge into that shard's stateful operator at suffix stage `rel`.
    ShardState {
        /// Owning virtual shard on the hash ring.
        shard: u32,
        /// Epoch the sender dispatched in.
        epoch: u64,
        /// Originating data source (selects the replica).
        source: u32,
        /// Merge stage relative to the keyed boundary.
        rel: u32,
        /// The state increment (already split by key ownership).
        delta: StatePartial,
    },
}

impl NetPayload {
    /// Number of rows carried (state payloads count group entries).
    pub fn record_count(&self) -> usize {
        match self {
            NetPayload::Records { batch, .. } | NetPayload::ShardBatch { batch, .. } => batch.len(),
            NetPayload::StateDelta { delta, .. } | NetPayload::ShardState { delta, .. } => {
                delta.entry_count()
            }
        }
    }

    /// Encoded size charged against links and wire accounting, from the
    /// `batch::layout` single source of truth.
    pub fn wire_bytes(&self) -> usize {
        match self {
            NetPayload::Records { batch, .. } | NetPayload::ShardBatch { batch, .. } => {
                batch.wire_size()
            }
            NetPayload::StateDelta { delta, .. } | NetPayload::ShardState { delta, .. } => {
                delta.wire_bytes()
            }
        }
    }
}
