//! Execution engines.
//!
//! [`source::SourceEngine`] runs the source-side query instance on an
//! emulated node: control proxies route records, operators charge their costs
//! against the node's CPU budget, and drained data/state flows to the network
//! as [`NetPayload`]s. [`sp::SpEngine`] runs the replica pipelines and state
//! merging on the stream processor. [`block::BuildingBlock`] wires N sources,
//! a fair-shared link, and one SP into the paper's core building block
//! (Fig. 4b) and advances them epoch by epoch.

pub mod block;
pub mod metrics;
pub mod source;
pub mod sp;
pub mod tree;

use streamkit::batch::Batch;
use streamkit::ops::StatePartial;

pub use block::{BuildingBlock, BuildingBlockConfig, NetworkModel};
pub use metrics::{EpochMetrics, RunMetrics};
pub use source::{SourceConfig, SourceEngine};
pub use sp::SpEngine;

/// Data shipped from a data source to its stream processor. Record traffic
/// travels in the same columnar [`Batch`] layout the wire encoder uses —
/// there is no row/batch conversion at the network boundary any more.
#[derive(Debug, Clone)]
pub enum NetPayload {
    /// A batch drained at the proxy of operator `stage` (0-based index into
    /// the plan); `stage == plan length` means fully-processed rows
    /// (results of a stateless tail) headed for the SP's merge/collect.
    Records {
        /// Destination operator index on the SP replica.
        stage: usize,
        /// The drained rows, columnar.
        batch: Batch,
    },
    /// Mergeable partial state from the source-side stateful operator at
    /// `stage`.
    StateDelta {
        /// Source operator index.
        stage: usize,
        /// The state increment.
        delta: StatePartial,
    },
}

impl NetPayload {
    /// Number of rows carried (state deltas count group entries).
    pub fn record_count(&self) -> usize {
        match self {
            NetPayload::Records { batch, .. } => batch.len(),
            NetPayload::StateDelta { delta, .. } => delta.entry_count(),
        }
    }
}
