//! Hierarchical monitoring trees (paper Fig. 4b).
//!
//! Large deployments stack *core building blocks* (sources + their parent
//! stream processor) under intermediate SPs and a root. Blocks do not
//! communicate with each other — which is exactly why Jarvis scales by
//! making each block independently efficient (§IV-A) — so the tree layer's
//! job is only to (a) run every block, (b) forward each block's result
//! stream up its root link, and (c) account root-link traffic and merge
//! final results.

use simnet::link::Link;
use streamkit::physical::CostProfile;

use crate::calibration;
use crate::engine::block::{BuildingBlock, BuildingBlockConfig, EpochSource};
use crate::engine::source::SourceConfig;
use crate::planner::PlannedQuery;
use crate::strategy::StrategyKind;

/// Per-result-row wire size at the root (aggregate rows are small; this uses
/// the S2SProbe result layout: window + 2 keys + 3 aggregates + envelope).
const RESULT_ROW_BYTES: usize = 102;

/// A tree of building blocks under one root.
pub struct TreeMonitor {
    blocks: Vec<BuildingBlock>,
    root_links: Vec<Link<u64>>,
    root_results: u64,
    root_ingress_bytes: f64,
    epoch_secs: f64,
    epoch: u64,
    /// Results already forwarded per block.
    forwarded: Vec<u64>,
}

impl TreeMonitor {
    /// Builds a tree of `blocks` building blocks, each with
    /// `sources_per_block` sources running `planned` under `strategy`.
    /// `make_generator(block, source)` supplies the workload.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        strategy: StrategyKind,
        cpu_budget: f64,
        blocks: u32,
        sources_per_block: u32,
        make_generator: impl Fn(u32, u32) -> Box<dyn EpochSource>,
        root_link_bps: f64,
    ) -> TreeMonitor {
        let mut built = Vec::with_capacity(blocks as usize);
        for b in 0..blocks {
            let cfgs: Vec<SourceConfig> = (0..sources_per_block)
                .map(|i| {
                    let mut c =
                        SourceConfig::new(b * sources_per_block + i + 1, cpu_budget, strategy);
                    c.seed = u64::from(b) << 32 | u64::from(i);
                    c
                })
                .collect();
            let generators: Vec<Box<dyn EpochSource>> = (0..sources_per_block)
                .map(|i| make_generator(b, i))
                .collect();
            built.push(BuildingBlock::new(
                planned,
                costs,
                cfgs,
                generators,
                BuildingBlockConfig::default(),
                crate::experiment::DEFAULT_WARMUP_EPOCHS,
            ));
        }
        TreeMonitor {
            root_links: (0..blocks).map(|_| Link::new(root_link_bps)).collect(),
            forwarded: vec![0; blocks as usize],
            blocks: built,
            root_results: 0,
            root_ingress_bytes: 0.0,
            epoch_secs: calibration::EPOCH_SECS,
            epoch: 0,
        }
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// A block.
    pub fn block(&self, i: usize) -> &BuildingBlock {
        &self.blocks[i]
    }

    /// Result rows that reached the root.
    pub fn root_results(&self) -> u64 {
        self.root_results
    }

    /// Root ingress rate in paper-Mbps over the run.
    pub fn root_ingress_mbps(&self) -> f64 {
        let secs = (self.epoch as f64) * self.epoch_secs;
        if secs <= 0.0 {
            return 0.0;
        }
        self.root_ingress_bytes * 8.0 / secs / calibration::MBPS
    }

    /// Aggregate on-time throughput across every block.
    pub fn aggregate_throughput_mbps(&self) -> f64 {
        self.blocks
            .iter()
            .map(BuildingBlock::aggregate_throughput_mbps)
            .sum()
    }

    /// Advances the whole tree one epoch: blocks run independently, then
    /// each forwards its new result rows up its root link.
    pub fn run_epoch(&mut self) {
        let now = self.epoch as f64 * self.epoch_secs;
        for (i, block) in self.blocks.iter_mut().enumerate() {
            block.run_epoch();
            let produced = block.sp().results_emitted();
            let new = produced - self.forwarded[i];
            if new > 0 {
                self.forwarded[i] = produced;
                self.root_links[i].enqueue(new, new as usize * RESULT_ROW_BYTES, now);
            }
        }
        for link in &mut self.root_links {
            for delivered in link.transmit(now, self.epoch_secs) {
                self.root_results += delivered.payload;
                self.root_ingress_bytes += delivered.bytes;
            }
        }
        self.epoch += 1;
    }

    /// Runs `n` epochs.
    pub fn run_epochs(&mut self, n: u64) {
        for _ in 0..n {
            self.run_epoch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::s2s_cost_profile;
    use crate::planner::{plan_query, RuleConfig};
    use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

    #[test]
    fn two_blocks_scale_independently() {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        let costs = s2s_cost_profile();
        let mut tree = TreeMonitor::new(
            &planned,
            &costs,
            StrategyKind::Jarvis,
            1.0,
            2,
            2,
            |b, i| {
                Box::new(PingmeshGenerator::new(PingmeshConfig {
                    src_ip: b * 100 + i + 1,
                    scale: 1.0,
                    ..Default::default()
                }))
            },
            100.0 * calibration::MBPS,
        );
        tree.run_epochs(30);
        assert_eq!(tree.block_count(), 2);
        assert!(tree.root_results() > 0, "results must reach the root");
        assert!(tree.root_ingress_mbps() > 0.0);
        // Root traffic is the per-epoch delta result stream. At the 1× rate
        // each pair sees ~2 probes per window, so delta rows are nearly as
        // frequent as inputs; the bound here is a sanity cap, not a
        // reduction claim (reduction shows at higher scales).
        assert!(
            tree.root_ingress_mbps() < 21.0,
            "{}",
            tree.root_ingress_mbps()
        );
        // Both blocks keep their sources on-time at this ample budget.
        let tput = tree.aggregate_throughput_mbps();
        assert!(tput > 0.9 * 4.0 * 2.62, "aggregate {tput}");
    }
}
