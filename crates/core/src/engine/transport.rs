//! Framed TCP transport for the distributed SP tier.
//!
//! The multi-node live session ships shard traffic between nodes as
//! [`netwire`](crate::engine::netwire) envelopes; this module puts a *real
//! socket* under those bytes. Every message on a peer link travels as one
//! frame:
//!
//! ```text
//! magic u32 LE | version u16 LE | kind u8 | body-len u32 LE | crc32 u32 LE | body
//! ```
//!
//! The header guards the stream against three distinct failure classes, each
//! with its own typed error: a connection that was never speaking the
//! protocol ([`TransportError::BadMagic`] — dropped without ceremony), a
//! peer built from a different release
//! ([`TransportError::VersionMismatch`] — fatal, surfaced to the deployer),
//! and corruption in transit ([`TransportError::CrcMismatch`] over an IEEE
//! CRC32 of the body). Vendor-only constraint: no tokio — `std::net`
//! sockets under a [`Link`] writer that comes in two flavours sharing one
//! fault-injection schedule and one backpressure shape (a bounded queue
//! senders block on, like the in-process node channels):
//!
//! * **Thread-backed** ([`Link::spawn`]): one OS writer thread per link
//!   over a blocking socket — the executor (`jarvis-node`) side, where a
//!   process owns exactly one link.
//! * **Task-backed** ([`Link::spawn_task`]): the writer is a cooperative
//!   task on a [`crate::rt`] runtime over a socket with a short send
//!   timeout ([`WRITE_PROBE`]; see there for why send-timeout rather than
//!   `O_NONBLOCK`). A full send buffer parks the task on a timer-wheel
//!   backoff instead of wedging a thread, so one runtime worker drives a
//!   whole fleet of links — the coordinator side, where links scale with
//!   the cluster.
//!
//! Readers ([`FrameReader`]) stay blocking OS threads in both modes:
//! links scale with *nodes* (bounded by
//! [`MAX_SP_SHARDS`](crate::deploy::MAX_SP_SHARDS)), not with the
//! 10k-source fan-in, and a blocking read parked in the kernel costs
//! nothing until bytes arrive. The reader also counts received socket
//! bytes for the `RunReport` wire accounting.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;

use crate::fault::{splitmix64, FaultKind, FaultTrigger, LinkFault};
use crate::rt;

/// Frame magic: "JRVW" little-endian — Jarvis wire.
pub const WIRE_MAGIC: u32 = u32::from_le_bytes(*b"JRVW");

/// Protocol version spoken by this build. Bumped on any frame- or
/// control-message-format change; mismatched peers are rejected at the
/// handshake instead of misdecoding mid-stream. Version 2 added the
/// fault-tolerance frames (`Ping`/`Pong`/`Ckpt`/`Adopt`) and the optional
/// checkpoint acknowledgement on `Progress`.
pub const PROTOCOL_VERSION: u16 = 2;

/// Fixed frame header length in bytes.
pub const HEADER_LEN: usize = 15;

/// Largest admissible frame body. An epoch's shard sub-batch is chunked at
/// a few hundred rows, so anything near this bound is a corrupt or hostile
/// length field, not data.
pub const MAX_FRAME_LEN: usize = 64 << 20;

/// Frames queued per link before senders block (the same channel-shaped
/// backpressure as the in-process node links).
pub const LINK_QUEUE: usize = 256;

/// Receive-buffer growth step. [`FrameReader`] grows the body buffer in
/// chunks of this size as bytes actually arrive, so a forged header
/// advertising a body near [`MAX_FRAME_LEN`] (64 MiB) can never commit the
/// full allocation up-front — a peer must *send* the bytes to make the
/// reader hold them.
pub const RECV_CHUNK: usize = 64 << 10;

/// What a frame carries. The numeric tags are wire-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Node → coordinator: authentication + node-id request (JSON).
    Register = 1,
    /// Coordinator → node: registration accepted, node id assigned (JSON).
    Admit = 2,
    /// Coordinator → node: registration refused (JSON reason).
    Reject = 3,
    /// Coordinator → node: the serialized deployment slice (JSON
    /// `NodeSpec`).
    Spec = 4,
    /// Node → coordinator: owned-shard pipelines instantiated.
    Ready = 5,
    /// Coordinator → node: one `netwire` shard payload (opaque bytes).
    Shard = 6,
    /// Coordinator → node: epoch boundary (u64 LE epoch index).
    EpochEnd = 7,
    /// Node → coordinator: per-epoch progress counters (JSON).
    Progress = 8,
    /// Coordinator → node: no more traffic; close windows and report.
    Finish = 9,
    /// Node → coordinator: one final-schema result batch (batch wire
    /// format).
    Results = 10,
    /// Node → coordinator: per-owned-shard counters (JSON).
    NodeStats = 11,
    /// Node → coordinator: finished; last frame on the link.
    Done = 12,
    /// Coordinator → node: liveness probe (empty body).
    Ping = 13,
    /// Node → coordinator: liveness reply (empty body).
    Pong = 14,
    /// Node → coordinator: one epoch-aligned checkpoint state payload (a
    /// `netwire` shard-state envelope, opaque to the coordinator).
    Ckpt = 15,
    /// Coordinator → node: adopt shards after a peer loss (JSON
    /// `AdoptMsg`).
    Adopt = 16,
}

impl FrameKind {
    /// Parses the wire tag.
    pub fn from_u8(v: u8) -> Option<FrameKind> {
        Some(match v {
            1 => FrameKind::Register,
            2 => FrameKind::Admit,
            3 => FrameKind::Reject,
            4 => FrameKind::Spec,
            5 => FrameKind::Ready,
            6 => FrameKind::Shard,
            7 => FrameKind::EpochEnd,
            8 => FrameKind::Progress,
            9 => FrameKind::Finish,
            10 => FrameKind::Results,
            11 => FrameKind::NodeStats,
            12 => FrameKind::Done,
            13 => FrameKind::Ping,
            14 => FrameKind::Pong,
            15 => FrameKind::Ckpt,
            16 => FrameKind::Adopt,
            _ => return None,
        })
    }
}

/// Why a frame (or the stream under it) was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Socket-level failure.
    Io(String),
    /// The first four bytes are not the protocol magic: the peer is not
    /// speaking this protocol at all (port scanner, stray client).
    BadMagic {
        /// The bytes found where the magic belongs.
        got: u32,
    },
    /// The peer speaks the protocol at an incompatible version.
    VersionMismatch {
        /// The peer's version.
        got: u16,
        /// This build's version.
        want: u16,
    },
    /// Unknown frame-kind tag.
    BadKind {
        /// The rejected tag.
        got: u8,
    },
    /// The body failed its CRC32 — corruption in transit.
    CrcMismatch {
        /// CRC computed over the received body.
        computed: u32,
        /// CRC declared in the header.
        declared: u32,
    },
    /// The stream ended inside a frame.
    Truncated {
        /// Bytes the frame needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The declared body length exceeds [`MAX_FRAME_LEN`].
    Oversized {
        /// Declared length.
        len: usize,
        /// The cap.
        max: usize,
    },
    /// The peer closed the connection cleanly (at a frame boundary).
    Closed,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io(msg) => write!(f, "transport I/O error: {msg}"),
            TransportError::BadMagic { got } => {
                write!(
                    f,
                    "bad frame magic {got:#010x} (expected {WIRE_MAGIC:#010x})"
                )
            }
            TransportError::VersionMismatch { got, want } => {
                write!(
                    f,
                    "peer speaks protocol version {got}, this build wants {want}"
                )
            }
            TransportError::BadKind { got } => write!(f, "unknown frame kind {got}"),
            TransportError::CrcMismatch { computed, declared } => write!(
                f,
                "frame body CRC mismatch: computed {computed:#010x}, declared {declared:#010x}"
            ),
            TransportError::Truncated { needed, got } => {
                write!(
                    f,
                    "stream truncated inside a frame: needed {needed} bytes, got {got}"
                )
            }
            TransportError::Oversized { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            TransportError::Closed => write!(f, "peer closed the connection"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<io::Error> for TransportError {
    fn from(e: io::Error) -> TransportError {
        TransportError::Io(e.to_string())
    }
}

/// The IEEE CRC32 lookup table (reflected 0xEDB88320 polynomial).
fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// IEEE CRC32 (the zlib/Ethernet polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc_table();
    let mut c = u32::MAX;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ u32::MAX
}

/// Encodes one frame: header + body.
pub fn encode_frame(kind: FrameKind, body: &[u8]) -> Bytes {
    assert!(
        body.len() <= MAX_FRAME_LEN,
        "frame body exceeds MAX_FRAME_LEN"
    );
    let mut buf = BytesMut::with_capacity(HEADER_LEN + body.len());
    buf.put_u32_le(WIRE_MAGIC);
    buf.put_u16_le(PROTOCOL_VERSION);
    buf.put_u8(kind as u8);
    buf.put_u32_le(body.len() as u32);
    buf.put_u32_le(crc32(body));
    buf.put_slice(body);
    buf.freeze()
}

/// Parses a frame header, returning `(kind, body_len, declared_crc)`.
fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(FrameKind, usize, u32), TransportError> {
    let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    if magic != WIRE_MAGIC {
        return Err(TransportError::BadMagic { got: magic });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != PROTOCOL_VERSION {
        return Err(TransportError::VersionMismatch {
            got: version,
            want: PROTOCOL_VERSION,
        });
    }
    let kind = FrameKind::from_u8(header[6]).ok_or(TransportError::BadKind { got: header[6] })?;
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    if len > MAX_FRAME_LEN {
        return Err(TransportError::Oversized {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let crc = u32::from_le_bytes([header[11], header[12], header[13], header[14]]);
    Ok((kind, len, crc))
}

/// Decodes one frame from the front of `buf`, returning the kind, the body,
/// and the bytes consumed.
pub fn decode_frame(buf: &[u8]) -> Result<(FrameKind, Bytes, usize), TransportError> {
    if buf.len() < HEADER_LEN {
        return Err(TransportError::Truncated {
            needed: HEADER_LEN,
            got: buf.len(),
        });
    }
    let mut header = [0u8; HEADER_LEN];
    header.copy_from_slice(&buf[..HEADER_LEN]);
    let (kind, len, declared) = parse_header(&header)?;
    if buf.len() < HEADER_LEN + len {
        return Err(TransportError::Truncated {
            needed: HEADER_LEN + len,
            got: buf.len(),
        });
    }
    let body = &buf[HEADER_LEN..HEADER_LEN + len];
    let computed = crc32(body);
    if computed != declared {
        return Err(TransportError::CrcMismatch { computed, declared });
    }
    Ok((kind, Bytes::from(body.to_vec()), HEADER_LEN + len))
}

/// Reads `buf.len()` bytes, tolerating short reads; returns the bytes
/// actually read (less than requested only at end of stream).
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// A blocking frame reader over any byte stream, counting received bytes.
pub struct FrameReader<R> {
    inner: R,
    received: Arc<AtomicU64>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader::with_counter(inner, Arc::new(AtomicU64::new(0)))
    }

    /// Wraps a stream, crediting received bytes to a shared counter.
    pub fn with_counter(inner: R, received: Arc<AtomicU64>) -> FrameReader<R> {
        FrameReader { inner, received }
    }

    /// Total bytes received over this reader.
    pub fn bytes_received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// A handle on the received-bytes counter (shared accounting).
    pub fn counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.received)
    }

    /// Reads the next frame. A clean close at a frame boundary is
    /// [`TransportError::Closed`]; mid-frame end of stream is
    /// [`TransportError::Truncated`].
    pub fn read_frame(&mut self) -> Result<(FrameKind, Bytes), TransportError> {
        let mut header = [0u8; HEADER_LEN];
        let got = read_full(&mut self.inner, &mut header)?;
        if got == 0 {
            return Err(TransportError::Closed);
        }
        if got < HEADER_LEN {
            return Err(TransportError::Truncated {
                needed: HEADER_LEN,
                got,
            });
        }
        let (kind, len, declared) = parse_header(&header)?;
        // `parse_header` already rejected lengths past MAX_FRAME_LEN, but a
        // forged header can still advertise up to the 64 MiB cap. Grow the
        // buffer in RECV_CHUNK steps as bytes arrive instead of allocating
        // the advertised length eagerly, so a hostile header costs at most
        // one chunk before the stream runs dry (Truncated).
        let mut body: Vec<u8> = Vec::with_capacity(len.min(RECV_CHUNK));
        while body.len() < len {
            let start = body.len();
            let take = (len - start).min(RECV_CHUNK);
            body.resize(start + take, 0);
            let got = read_full(&mut self.inner, &mut body[start..])?;
            if got < take {
                return Err(TransportError::Truncated {
                    needed: HEADER_LEN + len,
                    got: HEADER_LEN + start + got,
                });
            }
        }
        let computed = crc32(&body);
        if computed != declared {
            return Err(TransportError::CrcMismatch { computed, declared });
        }
        self.received
            .fetch_add((HEADER_LEN + len) as u64, Ordering::Relaxed);
        Ok((kind, Bytes::from(body)))
    }
}

/// What one frame's walk through the fault schedule tells the writer to do.
enum FaultStep {
    /// Write the frame (possibly corrupted in place).
    Write(Bytes),
    /// Stall for this many milliseconds, then write the frame.
    DelayThenWrite(u64, Bytes),
    /// Discard the frame silently.
    Discard,
    /// Shut the socket down and mark the link broken.
    Sever,
}

/// The deterministic per-link fault schedule, shared by the thread- and
/// task-backed writers so both inject byte-identical faults: each
/// [`LinkFault`] fires at most once, *before* the frame matching its
/// trigger is written.
struct FaultSchedule {
    pending: Vec<LinkFault>,
    seed: u64,
    frame_idx: u64,
    epoch_idx: u64,
}

impl FaultSchedule {
    fn new(faults: Vec<LinkFault>, seed: u64) -> FaultSchedule {
        FaultSchedule {
            pending: faults,
            seed,
            frame_idx: 0,
            epoch_idx: 0,
        }
    }

    /// Advances the schedule past one frame and returns the writer's move.
    fn step(&mut self, frame: Bytes) -> FaultStep {
        let is_epoch_end = frame.get(6) == Some(&(FrameKind::EpochEnd as u8));
        let fault = self
            .pending
            .iter()
            .position(|f| match f.trigger {
                FaultTrigger::Frame(n) => n == self.frame_idx,
                FaultTrigger::EpochEnd(k) => is_epoch_end && k == self.epoch_idx,
            })
            .map(|i| self.pending.remove(i));
        self.frame_idx += 1;
        if is_epoch_end {
            self.epoch_idx += 1;
        }
        match fault.map(|f| f.kind) {
            None => FaultStep::Write(frame),
            Some(FaultKind::Drop) => FaultStep::Discard,
            Some(FaultKind::Delay(ms)) => FaultStep::DelayThenWrite(ms, frame),
            Some(FaultKind::Corrupt) => {
                // Flip a body byte (or a CRC byte when the body is empty)
                // so the corruption is always CRC-detectable on the far
                // side instead of accidentally re-framing as a different
                // kind.
                let mut bytes = frame.to_vec();
                let roll = splitmix64(self.seed ^ self.frame_idx) as usize;
                let pos = if bytes.len() > HEADER_LEN {
                    HEADER_LEN + roll % (bytes.len() - HEADER_LEN)
                } else {
                    11 + roll % 4
                };
                bytes[pos] ^= 0x01;
                FaultStep::Write(Bytes::from(bytes))
            }
            Some(FaultKind::Sever) => FaultStep::Sever,
        }
    }
}

/// Counters and error slot shared between a [`Link`] handle and its writer.
#[derive(Clone)]
struct LinkShared {
    sent: Arc<AtomicU64>,
    broken: Arc<AtomicBool>,
    last_error: Arc<Mutex<Option<TransportError>>>,
}

impl LinkShared {
    fn new() -> LinkShared {
        LinkShared {
            sent: Arc::new(AtomicU64::new(0)),
            broken: Arc::new(AtomicBool::new(false)),
            last_error: Arc::new(Mutex::new(None)),
        }
    }

    /// Raises the broken flag with its typed reason.
    fn fail(&self, e: TransportError) {
        self.broken.store(true, Ordering::Relaxed);
        *self.last_error.lock() = Some(e);
    }

    fn sever(&self, stream: &TcpStream) {
        let _ = stream.shutdown(Shutdown::Both);
        self.fail(TransportError::Io(
            "link severed by fault injection".to_string(),
        ));
    }
}

/// Send-side probe timeout for the task writer's socket (`SO_SNDTIMEO`).
///
/// Full `O_NONBLOCK` would be wrong here: the paired [`FrameReader`] holds
/// a `try_clone` of the *same* socket, and the nonblocking flag lives on
/// the shared file description — flipping it would break the blocking
/// reader. The send timeout is a distinct, send-only knob: a write against
/// a full buffer returns `WouldBlock`/`TimedOut` within this bound instead
/// of wedging the worker, and the task then parks on the timer wheel.
pub const WRITE_PROBE: Duration = Duration::from_millis(1);

/// First timer-wheel backoff after a full-buffer write; doubles per retry
/// up to [`WRITE_BACKOFF_MAX`] while the send buffer stays full.
const WRITE_BACKOFF_MIN: Duration = Duration::from_micros(100);

/// Backoff ceiling for a persistently full send buffer.
const WRITE_BACKOFF_MAX: Duration = Duration::from_millis(5);

/// Writes `frame` to a probe-timeout socket (see [`WRITE_PROBE`]), parking
/// the task on the timer wheel (exponential backoff) whenever the send
/// buffer is full, so a slow peer stalls only this task — a runtime worker
/// blocks for at most one probe interval per attempt.
async fn write_all_backoff(
    stream: &mut TcpStream,
    frame: &[u8],
    timer: &rt::TimerWheel,
) -> io::Result<()> {
    let mut off = 0;
    let mut backoff = WRITE_BACKOFF_MIN;
    while off < frame.len() {
        match stream.write(&frame[off..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "socket accepted zero bytes",
                ))
            }
            Ok(n) => {
                off += n;
                backoff = WRITE_BACKOFF_MIN;
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                timer.sleep(backoff).await;
                backoff = (backoff * 2).min(WRITE_BACKOFF_MAX);
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// The task-backed writer loop (see [`Link::spawn_task`]). Mirrors the
/// thread writer frame for frame: same fault schedule, same
/// drain-and-discard behaviour once the socket is dead.
async fn task_writer(
    mut rx: rt::chan::Receiver<Bytes>,
    mut stream: TcpStream,
    timer: Arc<rt::TimerWheel>,
    mut sched: FaultSchedule,
    shared: LinkShared,
) {
    let mut dead = false;
    while let Some(frame) = rx.recv().await {
        if dead {
            continue;
        }
        let frame = match sched.step(frame) {
            FaultStep::Write(f) => f,
            FaultStep::DelayThenWrite(ms, f) => {
                timer.sleep(Duration::from_millis(ms)).await;
                f
            }
            FaultStep::Discard => continue,
            FaultStep::Sever => {
                shared.sever(&stream);
                dead = true;
                continue;
            }
        };
        if let Err(e) = write_all_backoff(&mut stream, &frame, &timer).await {
            shared.fail(TransportError::Io(e.to_string()));
            dead = true;
            continue;
        }
        shared.sent.fetch_add(frame.len() as u64, Ordering::Relaxed);
    }
    let _ = stream.flush();
}

/// The sending half of a [`Link`]: a bounded queue in either flavour.
enum LinkTx {
    Thread(Sender<Bytes>),
    Task(rt::chan::Sender<Bytes>),
}

/// The writer behind a [`Link`], joined on close.
enum LinkWriter {
    Thread(JoinHandle<()>),
    Task(rt::JoinHandle<()>),
}

/// The writing half of one peer link: a bounded queue drained by a
/// dedicated writer — an OS thread over a blocking socket
/// ([`Link::spawn`]) or a cooperative task over a nonblocking one
/// ([`Link::spawn_task`]).
///
/// Senders block when the queue is full — the same backpressure shape as
/// the in-process bounded node channels. If the socket dies mid-run the
/// writer drains and discards the remaining queue (so producers never
/// deadlock against a dead peer) and raises the broken flag; the failure
/// surfaces as a typed error when the coordinator collects results.
pub struct Link {
    tx: Option<LinkTx>,
    shared: LinkShared,
    writer: Option<LinkWriter>,
}

impl Link {
    /// Spawns the writer thread over a connected stream.
    pub fn spawn(stream: TcpStream) -> Link {
        Link::spawn_with_faults(stream, Vec::new(), 0)
    }

    /// Spawns the writer thread with a deterministic fault schedule: each
    /// [`LinkFault`] fires at most once, *before* the frame matching its
    /// trigger is written. `Drop` discards the frame, `Delay` stalls the
    /// writer, `Corrupt` flips one seed-chosen byte (the CRC catches it on
    /// the far side), and `Sever` shuts the socket down in both directions
    /// so the peer sees an abrupt EOF — the in-process shim behind the
    /// chaos tests and the [`crate::fault::FaultPlan`] harness.
    pub fn spawn_with_faults(stream: TcpStream, faults: Vec<LinkFault>, seed: u64) -> Link {
        let (tx, rx) = bounded::<Bytes>(LINK_QUEUE);
        let shared = LinkShared::new();
        let shared_w = shared.clone();
        let writer = std::thread::spawn(move || {
            let mut stream = stream;
            let mut sched = FaultSchedule::new(faults, seed);
            let mut dead = false;
            while let Ok(frame) = rx.recv() {
                if dead {
                    continue;
                }
                let frame = match sched.step(frame) {
                    FaultStep::Write(f) => f,
                    FaultStep::DelayThenWrite(ms, f) => {
                        std::thread::sleep(Duration::from_millis(ms));
                        f
                    }
                    FaultStep::Discard => continue,
                    FaultStep::Sever => {
                        shared_w.sever(&stream);
                        dead = true;
                        continue;
                    }
                };
                if let Err(e) = stream.write_all(&frame) {
                    shared_w.fail(TransportError::Io(e.to_string()));
                    dead = true;
                    continue;
                }
                shared_w
                    .sent
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
            }
            let _ = stream.flush();
        });
        Link {
            tx: Some(LinkTx::Thread(tx)),
            shared,
            writer: Some(LinkWriter::Thread(writer)),
        }
    }

    /// Spawns the writer as a cooperative task on `handle`, over a socket
    /// whose sends are bounded by [`WRITE_PROBE`]: a full send buffer
    /// parks the task on the timer wheel instead of wedging a thread, so
    /// one runtime worker can drive every link of a cluster. Fault
    /// semantics are identical to [`Link::spawn_with_faults`] (`Delay`
    /// sleeps on the wheel). Falls back to the thread-backed writer if
    /// the socket rejects the send timeout.
    pub fn spawn_task(
        handle: &rt::Handle,
        timer: &Arc<rt::TimerWheel>,
        stream: TcpStream,
        faults: Vec<LinkFault>,
        seed: u64,
    ) -> Link {
        if stream.set_write_timeout(Some(WRITE_PROBE)).is_err() {
            return Link::spawn_with_faults(stream, faults, seed);
        }
        let (tx, rx) = rt::chan::bounded::<Bytes>(LINK_QUEUE);
        let shared = LinkShared::new();
        let writer = handle.spawn(task_writer(
            rx,
            stream,
            Arc::clone(timer),
            FaultSchedule::new(faults, seed),
            shared.clone(),
        ));
        Link {
            tx: Some(LinkTx::Task(tx)),
            shared,
            writer: Some(LinkWriter::Task(writer)),
        }
    }

    /// Queues one frame, blocking when the link is saturated. Returns the
    /// frame's full wire length. Queuing onto a broken link succeeds (the
    /// writer discards) so mid-epoch producers never wedge; the break is
    /// observed via [`Link::is_broken`] at collection time.
    pub fn send(&self, kind: FrameKind, body: &[u8]) -> u64 {
        self.send_raw(encode_frame(kind, body))
    }

    /// Queues an already-encoded frame (see [`Link::send`]).
    pub fn send_raw(&self, frame: Bytes) -> u64 {
        let len = frame.len() as u64;
        match self.tx.as_ref().expect("link open") {
            LinkTx::Thread(tx) => {
                let _ = tx.send(frame);
            }
            // Blocking bridge for sync callers: parks this thread (or, on
            // a dispatcher task, this worker — backpressure, exactly like
            // the thread writer's bounded queue) until the writer task
            // frees capacity on its own runtime.
            LinkTx::Task(tx) => {
                let _ = rt::block_on(tx.send(frame));
            }
        }
        len
    }

    /// Bytes actually written to the socket so far.
    pub fn bytes_sent(&self) -> u64 {
        self.shared.sent.load(Ordering::Relaxed)
    }

    /// Whether the socket died under the writer.
    pub fn is_broken(&self) -> bool {
        self.shared.broken.load(Ordering::Relaxed)
    }

    /// The typed error behind a raised broken flag, when one was recorded —
    /// lets a broken writer queue surface as a reasoned `NodeDown` instead
    /// of a bare boolean.
    pub fn error(&self) -> Option<TransportError> {
        self.shared.last_error.lock().clone()
    }

    /// Closes the queue and joins the writer after it flushes.
    pub fn close(&mut self) {
        drop(self.tx.take());
        match self.writer.take() {
            Some(LinkWriter::Thread(handle)) => {
                let _ = handle.join();
            }
            Some(LinkWriter::Task(handle)) => {
                handle.join();
            }
            None => {}
        }
    }
}

impl Drop for Link {
    fn drop(&mut self) {
        self.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip_in_memory() {
        let body = b"hello shard traffic".to_vec();
        let frame = encode_frame(FrameKind::Shard, &body);
        assert_eq!(frame.len(), HEADER_LEN + body.len());
        let (kind, got, consumed) = decode_frame(&frame).unwrap();
        assert_eq!(kind, FrameKind::Shard);
        assert_eq!(&got[..], &body[..]);
        assert_eq!(consumed, frame.len());
    }

    #[test]
    fn typed_errors_cover_each_header_field() {
        let frame = encode_frame(FrameKind::Progress, b"x");
        let mut bad = frame.to_vec();
        bad[0] ^= 0xFF;
        assert!(matches!(
            decode_frame(&bad),
            Err(TransportError::BadMagic { .. })
        ));
        let mut bad = frame.to_vec();
        bad[4] = 0xEE;
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            TransportError::VersionMismatch {
                got: u16::from_le_bytes([0xEE, 0x00]),
                want: PROTOCOL_VERSION
            }
        );
        let mut bad = frame.to_vec();
        bad[6] = 200;
        assert_eq!(
            decode_frame(&bad).unwrap_err(),
            TransportError::BadKind { got: 200 }
        );
        let mut bad = frame.to_vec();
        bad[HEADER_LEN] ^= 0x01;
        assert!(matches!(
            decode_frame(&bad),
            Err(TransportError::CrcMismatch { .. })
        ));
        assert!(matches!(
            decode_frame(&frame[..HEADER_LEN - 3]),
            Err(TransportError::Truncated { .. })
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let frame = encode_frame(FrameKind::Shard, b"abc");
        let mut bad = frame.to_vec();
        bad[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bad),
            Err(TransportError::Oversized { .. })
        ));
    }

    #[test]
    fn reader_distinguishes_clean_close_from_truncation() {
        let frame = encode_frame(FrameKind::Done, b"tail");
        // Clean close: the stream ends exactly at a frame boundary.
        let mut reader = FrameReader::new(&frame[..]);
        let (kind, body) = reader.read_frame().unwrap();
        assert_eq!((kind, &body[..]), (FrameKind::Done, &b"tail"[..]));
        assert_eq!(reader.bytes_received(), frame.len() as u64);
        assert_eq!(reader.read_frame().unwrap_err(), TransportError::Closed);
        // Mid-frame end of stream.
        let mut reader = FrameReader::new(&frame[..frame.len() - 2]);
        assert!(matches!(
            reader.read_frame(),
            Err(TransportError::Truncated { .. })
        ));
    }

    #[test]
    fn reader_rejects_a_forged_huge_header_before_reading_the_body() {
        // A header advertising a body past MAX_FRAME_LEN fails typed and
        // early, without touching the (absent) body bytes.
        let mut forged = encode_frame(FrameKind::Shard, b"abc").to_vec();
        forged[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut reader = FrameReader::new(&forged[..]);
        assert_eq!(
            reader.read_frame().unwrap_err(),
            TransportError::Oversized {
                len: u32::MAX as usize,
                max: MAX_FRAME_LEN
            }
        );
        assert_eq!(reader.bytes_received(), 0);
    }

    #[test]
    fn reader_caps_allocation_against_an_advertised_length() {
        // A forged header advertising a (legal) near-cap body over a stream
        // that never delivers it must fail with Truncated after at most one
        // RECV_CHUNK of buffer, not allocate the advertised 32 MiB.
        let mut forged = encode_frame(FrameKind::Shard, b"tiny").to_vec();
        let advertised = (32usize << 20) as u32;
        forged[7..11].copy_from_slice(&advertised.to_le_bytes());
        let mut reader = FrameReader::new(&forged[..]);
        let err = reader.read_frame().unwrap_err();
        match err {
            TransportError::Truncated { needed, got } => {
                assert_eq!(needed, HEADER_LEN + advertised as usize);
                // Only the 4 real body bytes were ever buffered.
                assert_eq!(got, HEADER_LEN + 4);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    fn faulty_reader_thread(
        listener: TcpListener,
    ) -> std::thread::JoinHandle<(Vec<(FrameKind, usize)>, TransportError)> {
        std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(stream);
            let mut ok = Vec::new();
            loop {
                match reader.read_frame() {
                    Ok((kind, body)) => ok.push((kind, body.len())),
                    Err(e) => return (ok, e),
                }
            }
        })
    }

    #[test]
    fn fault_schedule_drops_and_severs_at_the_epoch_boundary() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader_thread = faulty_reader_thread(listener);
        // Frame 1 is dropped and the link severed just before the first
        // EpochEnd, so the peer sees frames 0, 2, 3 then a clean EOF.
        let faults = vec![
            LinkFault {
                trigger: FaultTrigger::Frame(1),
                kind: FaultKind::Drop,
            },
            LinkFault {
                trigger: FaultTrigger::EpochEnd(0),
                kind: FaultKind::Sever,
            },
        ];
        let mut link = Link::spawn_with_faults(TcpStream::connect(addr).unwrap(), faults, 7);
        for i in 0..4u8 {
            link.send(FrameKind::Shard, &[i; 8]);
        }
        link.send(FrameKind::EpochEnd, &0u64.to_le_bytes());
        link.close();
        let (ok, err) = reader_thread.join().unwrap();
        assert_eq!(ok, vec![(FrameKind::Shard, 8); 3]);
        assert_eq!(err, TransportError::Closed);
        assert!(link.is_broken(), "sever raises the broken flag");
        assert!(
            matches!(link.error(), Some(TransportError::Io(ref m)) if m.contains("severed")),
            "sever records a typed error"
        );
    }

    #[test]
    fn fault_schedule_corrupts_one_byte_and_the_crc_catches_it() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader_thread = faulty_reader_thread(listener);
        let faults = vec![LinkFault {
            trigger: FaultTrigger::Frame(1),
            kind: FaultKind::Corrupt,
        }];
        let mut link = Link::spawn_with_faults(TcpStream::connect(addr).unwrap(), faults, 42);
        link.send(FrameKind::Shard, &[0xAB; 16]);
        link.send(FrameKind::Shard, &[0xCD; 16]);
        link.close();
        let (ok, err) = reader_thread.join().unwrap();
        assert_eq!(ok, vec![(FrameKind::Shard, 16)]);
        assert!(
            matches!(err, TransportError::CrcMismatch { .. }),
            "a flipped body byte is always CRC-caught, got {err:?}"
        );
    }

    #[test]
    fn task_link_ships_frames_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(stream);
            let mut got = Vec::new();
            loop {
                match reader.read_frame() {
                    Ok((kind, body)) => got.push((kind, body)),
                    Err(TransportError::Closed) => break,
                    Err(e) => panic!("unexpected transport error: {e}"),
                }
            }
            (got, reader.bytes_received())
        });
        let runtime = rt::Runtime::new(1);
        let timer = Arc::new(rt::TimerWheel::new());
        let mut link = Link::spawn_task(
            &runtime.handle(),
            &timer,
            TcpStream::connect(addr).unwrap(),
            Vec::new(),
            0,
        );
        let mut queued = 0;
        // Bodies larger than the frames of the thread-mode test, so a few
        // sends exercise the partial-write/backoff path too.
        for i in 0..10u8 {
            queued += link.send(FrameKind::Shard, &[i; 4096]);
        }
        queued += link.send(FrameKind::Done, b"");
        link.close();
        assert!(!link.is_broken());
        assert_eq!(link.bytes_sent(), queued);
        let (got, received) = reader_thread.join().unwrap();
        assert_eq!(got.len(), 11);
        assert_eq!(received, queued, "RX accounting sees every wire byte");
        assert_eq!(got[7].0, FrameKind::Shard);
        assert_eq!(&got[7].1[..], &[7u8; 4096][..]);
        assert_eq!(got[10].0, FrameKind::Done);
    }

    #[test]
    fn task_link_faults_match_the_thread_writer() {
        // The same drop + sever schedule as the thread-mode test must
        // produce the same wire outcome from the task-backed writer.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader_thread = faulty_reader_thread(listener);
        let faults = vec![
            LinkFault {
                trigger: FaultTrigger::Frame(1),
                kind: FaultKind::Drop,
            },
            LinkFault {
                trigger: FaultTrigger::EpochEnd(0),
                kind: FaultKind::Sever,
            },
        ];
        let runtime = rt::Runtime::new(1);
        let timer = Arc::new(rt::TimerWheel::new());
        let mut link = Link::spawn_task(
            &runtime.handle(),
            &timer,
            TcpStream::connect(addr).unwrap(),
            faults,
            7,
        );
        for i in 0..4u8 {
            link.send(FrameKind::Shard, &[i; 8]);
        }
        link.send(FrameKind::EpochEnd, &0u64.to_le_bytes());
        link.close();
        let (ok, err) = reader_thread.join().unwrap();
        assert_eq!(ok, vec![(FrameKind::Shard, 8); 3]);
        assert_eq!(err, TransportError::Closed);
        assert!(link.is_broken(), "sever raises the broken flag");
        assert!(
            matches!(link.error(), Some(TransportError::Io(ref m)) if m.contains("severed")),
            "sever records a typed error"
        );
    }

    #[test]
    fn link_ships_frames_over_a_real_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader_thread = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = FrameReader::new(stream);
            let mut got = Vec::new();
            loop {
                match reader.read_frame() {
                    Ok((kind, body)) => got.push((kind, body)),
                    Err(TransportError::Closed) => break,
                    Err(e) => panic!("unexpected transport error: {e}"),
                }
            }
            (got, reader.bytes_received())
        });
        let mut link = Link::spawn(TcpStream::connect(addr).unwrap());
        let mut queued = 0;
        for i in 0..10u8 {
            queued += link.send(FrameKind::Shard, &[i; 32]);
        }
        queued += link.send(FrameKind::Done, b"");
        link.close();
        assert!(!link.is_broken());
        assert_eq!(link.bytes_sent(), queued);
        let (got, received) = reader_thread.join().unwrap();
        assert_eq!(got.len(), 11);
        assert_eq!(received, queued, "RX accounting sees every wire byte");
        assert_eq!(got[3].0, FrameKind::Shard);
        assert_eq!(&got[3].1[..], &[3u8; 32][..]);
        assert_eq!(got[10].0, FrameKind::Done);
    }
}
