//! Binary wire codec for the [`NetPayload`] shard variants.
//!
//! A multi-node SP ships remote-shard traffic between nodes as bytes, not
//! in-process values: a length-prefixed little-endian envelope around the
//! existing batch wire format ([`streamkit::encode`]) for row payloads and
//! the bit-exact group-state format ([`encode_group_state`] — floats travel
//! as raw bits, so non-finite accumulators like an untouched `Min` at
//! `+inf` survive the hop) for [`StatePartial`] splits. Decoding needs the
//! suffix edge schemas (schemas are fixed per query edge, as everywhere else
//! on the wire) — `schemas[rel]` is the input schema of suffix stage `rel`,
//! with one extra entry for fully-processed result rows (`rel ==
//! schemas.len() - 1`).
//!
//! Note the codec is a *transport*; bandwidth accounting stays on
//! [`NetPayload::wire_bytes`] (the `batch::layout` single source of truth),
//! exactly as the source → SP uplink charges `Batch::wire_size` rather than
//! its own envelope.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use streamkit::batch::{DictRegistry, DictVersions};
use streamkit::encode::{
    decode_batch, decode_batch_with, decode_group_state, encode_batch, encode_batch_with,
    encode_group_state,
};
use streamkit::error::Error;
use streamkit::ops::StatePartial;
use streamkit::schema::SchemaRef;

use crate::engine::NetPayload;

/// Envelope tag for [`NetPayload::ShardBatch`].
const TAG_SHARD_BATCH: u8 = 2;
/// Envelope tag for [`NetPayload::ShardState`].
const TAG_SHARD_STATE: u8 = 3;

/// Encodes a shard payload ([`NetPayload::ShardBatch`] /
/// [`NetPayload::ShardState`]) into its inter-node wire form.
///
/// # Panics
///
/// On the point-to-point uplink variants (`Records` / `StateDelta`), which
/// never cross SP nodes and have no shard envelope.
pub fn encode_shard_payload(payload: &NetPayload) -> Bytes {
    encode_shard_payload_impl(payload, None)
}

/// Delta-aware variant of [`encode_shard_payload`]: dictionary pages of
/// persistent-dict columns inside a `ShardBatch` body ship as deltas against
/// `link` — the per-peer map of dictionary versions already on the wire
/// (first contact or a post-recovery reset ships the full history). The
/// self-contained [`encode_shard_payload`] stays the checkpoint/replay form,
/// because the recovery coordinator re-ships bodies verbatim to receivers
/// whose dictionary state it cannot see.
pub fn encode_shard_payload_with(payload: &NetPayload, link: &mut DictVersions) -> Bytes {
    encode_shard_payload_impl(payload, Some(link))
}

fn encode_shard_payload_impl(payload: &NetPayload, link: Option<&mut DictVersions>) -> Bytes {
    let (tag, shard, epoch, source, rel, body) = match payload {
        NetPayload::ShardBatch {
            shard,
            epoch,
            source,
            rel,
            batch,
        } => (
            TAG_SHARD_BATCH,
            *shard,
            *epoch,
            *source,
            *rel,
            match link {
                Some(link) => encode_batch_with(batch, link),
                None => encode_batch(batch),
            },
        ),
        NetPayload::ShardState {
            shard,
            epoch,
            source,
            rel,
            delta,
        } => {
            let StatePartial::Group(entries) = delta;
            (
                TAG_SHARD_STATE,
                *shard,
                *epoch,
                *source,
                *rel,
                encode_group_state(entries),
            )
        }
        NetPayload::Records { .. } | NetPayload::StateDelta { .. } => {
            panic!("only shard variants cross SP nodes")
        }
    };
    let mut buf = BytesMut::with_capacity(25 + body.len());
    buf.put_u8(tag);
    buf.put_u32_le(shard);
    buf.put_u64_le(epoch);
    buf.put_u32_le(source);
    buf.put_u32_le(rel);
    buf.put_u32_le(body.len() as u32);
    buf.put_slice(&body);
    buf.freeze()
}

/// The schema-free header of a shard-payload envelope.
///
/// Full decoding ([`decode_shard_payload`]) needs the suffix edge schemas,
/// which only an executing node holds. The recovery coordinator, though,
/// only needs to *address* payloads — which shard, which pipeline slot —
/// while treating the body as opaque bytes to re-ship verbatim. This struct
/// is that addressing view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEnvelope {
    /// True for a `ShardState` payload, false for a `ShardBatch`.
    pub is_state: bool,
    /// Ring-absolute target shard.
    pub shard: u32,
    /// Epoch the payload belongs to.
    pub epoch: u64,
    /// Originating source id.
    pub source: u32,
    /// Suffix pipeline stage (relative operator index).
    pub rel: u32,
}

/// Parses just the 25-byte envelope header of a shard payload, without
/// schemas and without touching the body. Returns `None` on anything that
/// is not a well-formed shard envelope.
pub fn peek_envelope(buf: &[u8]) -> Option<ShardEnvelope> {
    if buf.len() < 25 {
        return None;
    }
    let tag = buf[0];
    if tag != TAG_SHARD_BATCH && tag != TAG_SHARD_STATE {
        return None;
    }
    let len = u32::from_le_bytes([buf[21], buf[22], buf[23], buf[24]]) as usize;
    if buf.len() != 25 + len {
        return None;
    }
    Some(ShardEnvelope {
        is_state: tag == TAG_SHARD_STATE,
        shard: u32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]),
        epoch: u64::from_le_bytes([
            buf[5], buf[6], buf[7], buf[8], buf[9], buf[10], buf[11], buf[12],
        ]),
        source: u32::from_le_bytes([buf[13], buf[14], buf[15], buf[16]]),
        rel: u32::from_le_bytes([buf[17], buf[18], buf[19], buf[20]]),
    })
}

/// Decodes an inter-node payload produced by [`encode_shard_payload`].
/// `schemas[rel]` supplies the batch schema at each suffix entry stage.
/// Delta dictionary pages are a typed error on this path — peers that speak
/// deltas decode through [`decode_shard_payload_with`].
pub fn decode_shard_payload(buf: Bytes, schemas: &[SchemaRef]) -> Result<NetPayload, Error> {
    decode_shard_payload_impl(buf, schemas, None)
}

/// Delta-aware variant of [`decode_shard_payload`]: dictionary-delta pages
/// inside a `ShardBatch` body resolve against (and extend) `registry`, the
/// receiver's per-peer mirror of the sender's persistent dictionaries.
pub fn decode_shard_payload_with(
    buf: Bytes,
    schemas: &[SchemaRef],
    registry: &mut DictRegistry,
) -> Result<NetPayload, Error> {
    decode_shard_payload_impl(buf, schemas, Some(registry))
}

fn decode_shard_payload_impl(
    mut buf: Bytes,
    schemas: &[SchemaRef],
    registry: Option<&mut DictRegistry>,
) -> Result<NetPayload, Error> {
    if buf.remaining() < 25 {
        return Err(Error::Decode(format!(
            "shard payload underrun: {} bytes",
            buf.remaining()
        )));
    }
    let tag = buf.get_u8();
    let shard = buf.get_u32_le();
    let epoch = buf.get_u64_le();
    let source = buf.get_u32_le();
    let rel = buf.get_u32_le();
    let len = buf.get_u32_le() as usize;
    if buf.remaining() != len {
        return Err(Error::Decode(format!(
            "shard payload length {len} != remaining {}",
            buf.remaining()
        )));
    }
    match tag {
        TAG_SHARD_BATCH => {
            let schema = schemas
                .get(rel as usize)
                .ok_or_else(|| Error::Decode(format!("no schema for suffix stage {rel}")))?
                .clone();
            let batch = match registry {
                Some(registry) => decode_batch_with(schema, buf, registry)?,
                None => decode_batch(schema, buf)?,
            };
            Ok(NetPayload::ShardBatch {
                shard,
                epoch,
                source,
                rel,
                batch,
            })
        }
        TAG_SHARD_STATE => {
            let entries = decode_group_state(buf)?;
            Ok(NetPayload::ShardState {
                shard,
                epoch,
                source,
                rel,
                delta: StatePartial::Group(entries),
            })
        }
        other => Err(Error::Decode(format!("unknown shard payload tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::agg::AggState;
    use streamkit::batch::Batch;
    use streamkit::ops::GroupPartialEntry;
    use streamkit::record::Record;
    use streamkit::schema::{DataType, Field, Schema};
    use streamkit::value::Value;

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("k", DataType::Str),
            Field::new("v", DataType::U64),
        ])
    }

    fn batch() -> Batch {
        let recs = vec![
            Record::new(1, vec![Value::str("a"), Value::U64(7)]),
            Record::new(2, vec![Value::Null, Value::U64(9)]),
        ];
        Batch::from_records(schema(), &recs).unwrap()
    }

    #[test]
    fn shard_batch_round_trips() {
        let p = NetPayload::ShardBatch {
            shard: 3,
            epoch: 12,
            source: 1,
            rel: 0,
            batch: batch(),
        };
        let wire = encode_shard_payload(&p);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn shard_state_round_trips() {
        let p = NetPayload::ShardState {
            shard: 0,
            epoch: 4,
            source: 0,
            rel: 0,
            delta: StatePartial::Group(vec![GroupPartialEntry {
                window_start: 10_000_000,
                key: vec![Value::str("t0"), Value::I64(-3)],
                states: vec![AggState::Count(5), AggState::Sum(1.25)],
            }]),
        };
        let wire = encode_shard_payload(&p);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn non_finite_state_round_trips_exactly() {
        // A Min that never folded a numeric value is +inf; NaN can reach a
        // Sum through the data. Both must survive the inter-node hop
        // bit-exactly.
        let p = NetPayload::ShardState {
            shard: 1,
            epoch: 2,
            source: 0,
            rel: 0,
            delta: StatePartial::Group(vec![GroupPartialEntry {
                window_start: 0,
                key: vec![Value::F64(f64::NAN)],
                states: vec![
                    AggState::Min(f64::INFINITY),
                    AggState::Max(f64::NEG_INFINITY),
                    AggState::Sum(f64::NAN),
                ],
            }]),
        };
        let wire = encode_shard_payload(&p);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        let NetPayload::ShardState {
            delta: StatePartial::Group(entries),
            ..
        } = back
        else {
            panic!("state payload expected");
        };
        let Value::F64(k) = entries[0].key[0] else {
            panic!("f64 key expected");
        };
        assert!(k.is_nan());
        assert_eq!(
            entries[0].states[..2],
            [
                AggState::Min(f64::INFINITY),
                AggState::Max(f64::NEG_INFINITY)
            ]
        );
        let AggState::Sum(s) = entries[0].states[2] else {
            panic!("sum expected");
        };
        assert!(s.is_nan());
    }

    #[test]
    fn delta_aware_shard_batches_shrink_after_first_contact() {
        use streamkit::batch::{Column, StreamDict};

        let schema = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("v", DataType::U64),
        ]);
        let mut stream = StreamDict::new();
        for t in ["tenant-00", "tenant-01", "tenant-02"] {
            stream.intern(t);
        }
        let dict = stream.snapshot();
        let mk = |epoch: u64, codes: Vec<u32>| {
            let n = codes.len();
            NetPayload::ShardBatch {
                shard: 1,
                epoch,
                source: 0,
                rel: 0,
                batch: Batch {
                    schema: schema.clone(),
                    timestamps: vec![epoch as i64; n],
                    columns: vec![
                        Column::Dict {
                            codes,
                            dict: dict.clone(),
                        },
                        Column::U64(vec![7; n]),
                    ],
                },
            }
        };
        let first = mk(1, vec![0, 1, 2]);
        let second = mk(2, vec![2, 0, 1]);

        let mut link = DictVersions::new();
        let mut registry = DictRegistry::new();
        let wire1 = encode_shard_payload_with(&first, &mut link);
        let wire2 = encode_shard_payload_with(&second, &mut link);
        assert!(
            wire2.len() < wire1.len(),
            "synced link must ship codes only: {} !< {}",
            wire2.len(),
            wire1.len()
        );
        let back1 =
            decode_shard_payload_with(wire1.clone(), std::slice::from_ref(&schema), &mut registry);
        assert_eq!(back1.unwrap(), first);
        let back2 =
            decode_shard_payload_with(wire2.clone(), std::slice::from_ref(&schema), &mut registry);
        assert_eq!(back2.unwrap(), second);

        // The plain decode path must refuse delta pages with a typed error,
        // not misread them.
        assert!(decode_shard_payload(wire2, std::slice::from_ref(&schema)).is_err());
        // And a fresh registry (post-recovery receiver) must refuse a frame
        // whose delta assumes earlier contact.
        let mut fresh = DictRegistry::new();
        let resync = encode_shard_payload_with(&mk(3, vec![1]), &mut link);
        assert!(decode_shard_payload_with(resync, &[schema], &mut fresh).is_err());
    }

    #[test]
    fn peek_reads_the_envelope_without_schemas() {
        let p = NetPayload::ShardState {
            shard: 3,
            epoch: 9,
            source: 2,
            rel: 1,
            delta: StatePartial::Group(vec![]),
        };
        let wire = encode_shard_payload(&p);
        let env = peek_envelope(&wire).unwrap();
        assert!(env.is_state);
        assert_eq!((env.shard, env.epoch, env.source, env.rel), (3, 9, 2, 1));
        // Garbage and truncations peek to None, never panic.
        assert_eq!(peek_envelope(b"short"), None);
        assert_eq!(peek_envelope(&wire[..24]), None);
        let mut bad_tag = wire.to_vec();
        bad_tag[0] = 99;
        assert_eq!(peek_envelope(&bad_tag), None);
    }

    #[test]
    fn truncated_payload_rejected() {
        let p = NetPayload::ShardBatch {
            shard: 1,
            epoch: 1,
            source: 0,
            rel: 0,
            batch: batch(),
        };
        let wire = encode_shard_payload(&p);
        let cut = wire.slice(0..wire.len() - 1);
        assert!(decode_shard_payload(cut, &[schema()]).is_err());
    }

    #[test]
    fn out_of_range_rel_rejected() {
        let p = NetPayload::ShardBatch {
            shard: 1,
            epoch: 1,
            source: 0,
            rel: 9,
            batch: batch(),
        };
        let wire = encode_shard_payload(&p);
        assert!(decode_shard_payload(wire, &[schema()]).is_err());
    }
}
