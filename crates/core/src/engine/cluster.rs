//! The multi-node stream-processor tier: `n_nodes` [`SpEngine`]s over one
//! fixed hash ring of virtual shards (the DiG-style out-of-band scale-out).
//!
//! The ring of `sp_shards` virtual shards is the exactness anchor: the
//! key → shard mapping ([`shard_of_values`](streamkit::shard::shard_of_values))
//! never depends on the node count, so 1-, 2-, and 4-node clusters produce
//! bit-identical result digests (`tests/node_parity.rs`). Nodes own
//! contiguous ring slices ([`node_of_shard`]); each source's uplink
//! terminates at its *ingress node* (`source % n_nodes`), which runs the
//! replica's stateless prefix and partitions at the keyed boundary.
//! Sub-batches and [`streamkit::ops::StatePartial`] splits whose owning shard lives on
//! another node cross the cluster as [`NetPayload::ShardBatch`] /
//! [`NetPayload::ShardState`] payloads, with wire cost charged per target
//! shard from the `batch::layout` accounting.
//!
//! Within an epoch the cluster alternates processing passes with payload
//! transfers until the outboxes run dry, so remote shard traffic is
//! processed in the same epoch it was produced (budget permitting) and
//! multi-node timing matches the single-node engine in uncongested runs.

use streamkit::physical::CostProfile;
use streamkit::record::Record;
use streamkit::shard::node_of_shard;
use streamkit::time::Ts;

use crate::engine::sp::{SpCompletion, SpEngine, SpShardStat};
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;

/// Per-node drain/usage/wire counters of a multi-node SP tier.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpNodeStat {
    /// Input rows routed into the node's owned shards.
    pub drained_records: u64,
    /// Modelled compute charged to the node's keyed pipelines, µs.
    pub usage_us: f64,
    /// Wire bytes the node shipped to other nodes (remote-shard traffic).
    pub wire_bytes_out: u64,
}

/// `n_nodes` SP engines sharing one virtual-shard ring.
pub struct SpCluster {
    nodes: Vec<SpEngine>,
    n_shards: usize,
}

impl SpCluster {
    /// Builds a cluster of `n_nodes` engines, each owning a contiguous
    /// slice of the `n_shards` ring and hosting `n_sources` replicas.
    /// Keyless plans degenerate to one shard on one node (nothing to
    /// partition by), exactly like the single-node engine.
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        n_sources: usize,
        sp_cores: f64,
        epoch_secs: f64,
        n_shards: usize,
        n_nodes: usize,
    ) -> SpCluster {
        let (n_shards, n_nodes) = if planned.plan.shard_boundary().is_some() {
            let shards = n_shards.max(1);
            (shards, n_nodes.clamp(1, shards))
        } else {
            (1, 1)
        };
        let nodes = (0..n_nodes)
            .map(|id| {
                SpEngine::for_node(
                    planned, costs, n_sources, sp_cores, epoch_secs, n_shards, id, n_nodes,
                )
            })
            .collect();
        SpCluster { nodes, n_shards }
    }

    /// Nodes in the cluster.
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Width of the fixed virtual-shard ring.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// One node's engine (budget inspection, tests).
    pub fn node(&self, i: usize) -> &SpEngine {
        &self.nodes[i]
    }

    /// The ingress node terminating `source`'s uplink.
    pub fn ingress(&self, source: usize) -> usize {
        source % self.nodes.len()
    }

    /// Delivers an uplink payload from `source` that finished its transfer
    /// at `arrival_secs` to the source's ingress node, then transfers any
    /// remote-shard splits it produced to their owners.
    pub fn deliver(&mut self, source: usize, payload: NetPayload, arrival_secs: f64) {
        let ingress = self.ingress(source);
        self.nodes[ingress].deliver(source, payload, arrival_secs);
        self.transfer();
    }

    /// Moves every outbox payload to the node owning its shard. Returns
    /// whether anything moved.
    fn transfer(&mut self) -> bool {
        let mut moved = false;
        for i in 0..self.nodes.len() {
            let out = self.nodes[i].take_outbound();
            for (payload, when) in out {
                let (shard, source) = match &payload {
                    NetPayload::ShardBatch { shard, source, .. }
                    | NetPayload::ShardState { shard, source, .. } => {
                        (*shard as usize, *source as usize)
                    }
                    _ => unreachable!("outboxes carry shard payloads only"),
                };
                let target = node_of_shard(shard, self.n_shards, self.nodes.len());
                debug_assert_ne!(target, i, "local shard traffic must not leave the node");
                self.nodes[target].deliver(source, payload, when);
                moved = true;
            }
        }
        moved
    }

    /// Runs one cluster epoch: every node processes its arrivals, remote
    /// shard traffic transfers and is processed in the same epoch while
    /// budgets allow, then every node advances event time. Returns
    /// input-record completions across nodes.
    pub fn run_epoch(&mut self, epoch_start_us: Ts) -> Vec<SpCompletion> {
        for n in &mut self.nodes {
            n.begin_epoch();
        }
        let mut completions = Vec::new();
        for n in &mut self.nodes {
            completions.extend(n.process_queued(epoch_start_us));
        }
        while self.transfer() {
            for n in &mut self.nodes {
                completions.extend(n.process_queued(epoch_start_us));
            }
        }
        for n in &mut self.nodes {
            n.advance_time(epoch_start_us);
        }
        // Watermark emissions routed to remote shards (none for today's
        // stateless prefixes) transfer now and process next epoch.
        self.transfer();
        completions
    }

    /// End-of-run flush for exactness fingerprinting: alternates no-budget
    /// queue flushes with payload transfers until the outboxes run dry, then
    /// closes every window on every node.
    pub fn finalize(&mut self) {
        loop {
            for n in &mut self.nodes {
                n.flush_queues();
            }
            if !self.transfer() {
                break;
            }
        }
        for n in &mut self.nodes {
            n.close_windows();
        }
    }

    /// Total result rows emitted across nodes.
    pub fn results_emitted(&self) -> u64 {
        self.nodes.iter().map(SpEngine::results_emitted).sum()
    }

    /// Rows still queued (delivered but unprocessed) across nodes.
    pub fn backlog_records(&self) -> usize {
        self.nodes.iter().map(SpEngine::backlog_records).sum()
    }

    /// Enables result-row retention on every node.
    pub fn set_collect_results(&mut self, on: bool) {
        for n in &mut self.nodes {
            n.set_collect_results(on);
        }
    }

    /// Retained result rows across nodes, when collection is enabled. Row
    /// order follows node order; exactness digests are order-independent.
    pub fn collected_results(&self) -> Option<Vec<Record>> {
        let mut rows = Vec::new();
        let mut any = false;
        for n in &self.nodes {
            if let Some(r) = n.collected_results() {
                any = true;
                rows.extend(r.iter().cloned());
            }
        }
        any.then_some(rows)
    }

    /// Ring-wide per-shard stats: drain/usage filled by each shard's owning
    /// node, wire bytes summed over every sender that shipped toward the
    /// shard.
    pub fn shard_stats(&self) -> Vec<SpShardStat> {
        let mut stats = vec![SpShardStat::default(); self.n_shards];
        for node in &self.nodes {
            for (s, stat) in node.owned_shards().zip(node.shard_stats()) {
                stats[s].drained_records += stat.drained_records;
                stats[s].usage_us += stat.usage_us;
            }
            for (s, &bytes) in node.shard_wire_out().iter().enumerate() {
                stats[s].wire_bytes_out += bytes;
            }
        }
        stats
    }

    /// Per-node drain/usage/wire stats.
    pub fn node_stats(&self) -> Vec<SpNodeStat> {
        self.nodes
            .iter()
            .map(|node| {
                let shards = node.shard_stats();
                SpNodeStat {
                    drained_records: shards.iter().map(|s| s.drained_records).sum(),
                    usage_us: shards.iter().map(|s| s.usage_us).sum(),
                    wire_bytes_out: node.shard_wire_out().iter().sum(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::experiment::ScenarioSpec;

    fn cluster(n_shards: usize, n_nodes: usize) -> (SpCluster, ScenarioSpec) {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
        let planned = spec.plan();
        let c = SpCluster::new(&planned, &spec.costs(), 2, 64.0, 1.0, n_shards, n_nodes);
        (c, spec)
    }

    #[test]
    fn nodes_own_disjoint_contiguous_slices() {
        let (c, _) = cluster(4, 3);
        assert_eq!(c.n_nodes(), 3);
        let mut seen = [false; 4];
        for i in 0..3 {
            for s in c.node(i).owned_shards() {
                assert!(!seen[s]);
                seen[s] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn node_count_clamps_to_the_ring() {
        let (c, _) = cluster(2, 6);
        assert_eq!(c.n_nodes(), 2, "more nodes than shards is meaningless");
    }

    #[test]
    fn remote_shard_traffic_crosses_as_payloads_and_is_charged() {
        let (mut c, spec) = cluster(4, 2);
        c.set_collect_results(true);
        let mut gen = spec.generator(0, 1);
        // Everything drained raw to the SP: the ingress (node 0) must ship
        // the sub-batches owned by node 1 across, charging wire bytes.
        for e in 0..4i64 {
            let batch = gen.generate_epoch_batch(e * 1_000_000, 1.0);
            c.deliver(0, NetPayload::Records { stage: 0, batch }, e as f64);
            c.run_epoch(e * 1_000_000);
        }
        c.finalize();
        let stats = c.shard_stats();
        assert_eq!(stats.len(), 4);
        let busy = stats.iter().filter(|s| s.drained_records > 0).count();
        assert!(busy > 1, "keys must spread: {stats:?}");
        let remote_bytes: u64 = stats.iter().map(|s| s.wire_bytes_out).sum();
        assert!(remote_bytes > 0, "cross-node shipping must be charged");
        // Node 0 is the only ingress for source 0, so only it ships.
        let nodes = c.node_stats();
        assert!(nodes[0].wire_bytes_out > 0);
        assert_eq!(nodes[1].wire_bytes_out, 0);
        // Shards owned by node 0 never cross a link.
        for s in c.node(0).owned_shards() {
            assert_eq!(stats[s].wire_bytes_out, 0);
        }
        assert!(c.results_emitted() > 0);
    }
}
