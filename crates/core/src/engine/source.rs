//! The source-side execution engine, batch-first.
//!
//! Runs one query instance on one emulated data source node: routes arriving
//! batches through control proxies (per-row, so error-diffusion routing stays
//! deterministic), charges operator costs against the node's epoch budget a
//! sub-batch at a time, sheds or queues overflow according to the strategy,
//! ships stateful partial-state deltas at the configured interval, and drives
//! the Jarvis runtime at every epoch boundary — including dedicated Profile
//! epochs that measure per-operator cost and relay ratios.

use std::collections::VecDeque;

use simnet::{CpuBudget, Node, NodeId};
use streamkit::batch::Batch;
use streamkit::ops::{absorbed_timestamps, AggRole, Operator};
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::schema::SchemaRef;
use streamkit::time::Ts;

use crate::calibration;
use crate::engine::metrics::EpochMetrics;
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;
use crate::proxy::{classify_query, ControlProxy, ProxyState, QueryState};
use crate::runtime::{JarvisRuntime, Phase, PROFILE_COST_US};
use crate::stepwise::ProfileEstimates;
use crate::strategy::{OverflowMode, StrategyKind};

/// One pipeline stage: a control proxy guarding an operator and its queue of
/// pending batches.
struct Stage {
    proxy: ControlProxy,
    op: Box<dyn Operator>,
    queue: VecDeque<Batch>,
}

impl Stage {
    fn queued_rows(&self) -> usize {
        self.queue.iter().map(Batch::len).sum()
    }
}

/// Source engine configuration.
#[derive(Debug, Clone)]
pub struct SourceConfig {
    /// Node id for the emulated source.
    pub node_id: u32,
    /// Initial CPU budget, fraction of cores.
    pub cpu_budget: f64,
    /// CPU scheduling jitter half-width.
    pub cpu_jitter: f64,
    /// Epoch length, seconds.
    pub epoch_secs: f64,
    /// Partitioning strategy.
    pub strategy: StrategyKind,
    /// State-delta shipping interval, epochs.
    pub ship_interval: u32,
    /// Queue cap (records) for queue-mode strategies.
    pub queue_cap: usize,
    /// Backlog-dependent cost inflation for queue-mode strategies.
    pub thrash_coeff: f64,
    /// RNG seed (node jitter).
    pub seed: u64,
}

impl SourceConfig {
    /// Defaults from the calibration module.
    pub fn new(node_id: u32, cpu_budget: f64, strategy: StrategyKind) -> SourceConfig {
        SourceConfig {
            node_id,
            cpu_budget,
            cpu_jitter: calibration::CPU_JITTER_FRAC,
            epoch_secs: calibration::EPOCH_SECS,
            strategy,
            ship_interval: calibration::STATE_SHIP_INTERVAL_EPOCHS,
            queue_cap: calibration::QUEUE_CAP_RECORDS,
            thrash_coeff: calibration::THRASH_COEFF,
            seed: 42,
        }
    }
}

/// Result of one source epoch.
pub struct SourceEpochResult {
    /// Payloads to enqueue on the uplink, with their wire bytes and enqueue
    /// offsets within the epoch in seconds.
    pub payloads: Vec<(NetPayload, usize, f64)>,
    /// Source-side metrics for the epoch.
    pub metrics: EpochMetrics,
}

/// The source-side engine.
pub struct SourceEngine {
    node: Node,
    stages: Vec<Stage>,
    /// Edge schemas for the full plan (index i = input schema of op i).
    schemas: Vec<SchemaRef>,
    /// Operators in the source-eligible prefix.
    source_ops: usize,
    /// Total operators in the plan.
    plan_ops: usize,
    overflow: OverflowMode,
    runtime: JarvisRuntime,
    cfg: SourceConfig,
    /// Average input record wire bytes (updated per epoch) for
    /// input-equivalent byte attribution.
    avg_input_bytes: f64,
    epochs_since_ship: u32,
    profile_next: bool,
    epoch: u64,
    /// Rows currently queued across stages (cheap running count).
    queued_records: usize,
    /// Completions seen, for latency subsampling.
    completion_counter: u64,
}

impl SourceEngine {
    /// Builds the engine for a planned query.
    pub fn new(planned: &PlannedQuery, costs: &CostProfile, cfg: SourceConfig) -> SourceEngine {
        let schemas = planned.plan.edge_schemas().expect("validated plan");
        // Source-side stateful operators run in Partial role: they ship
        // mergeable state increments instead of emitting results.
        let ops = build_pipeline(&planned.plan, costs, AggRole::Partial).expect("validated plan");
        let initial_p = cfg.strategy.initial_load_factors(planned);
        let mut stages = Vec::with_capacity(planned.source_ops);
        for (i, op) in ops.into_iter().take(planned.source_ops).enumerate() {
            stages.push(Stage {
                proxy: ControlProxy::new(
                    initial_p.get(i).copied().unwrap_or(0.0),
                    calibration::DRAINED_THRES,
                    calibration::IDLE_THRES,
                ),
                op,
                queue: VecDeque::new(),
            });
        }
        let runtime = JarvisRuntime::with_policy(
            cfg.strategy.runtime_config(),
            cfg.strategy.build_policy(planned.source_ops),
        );
        let node = Node::new(
            NodeId(cfg.node_id),
            CpuBudget::fraction(cfg.cpu_budget),
            cfg.cpu_jitter,
            cfg.seed,
        );
        SourceEngine {
            node,
            stages,
            schemas,
            source_ops: planned.source_ops,
            plan_ops: planned.plan.ops.len(),
            overflow: cfg.strategy.overflow_mode(),
            runtime,
            cfg,
            avg_input_bytes: 0.0,
            epochs_since_ship: 0,
            profile_next: false,
            epoch: 0,
            queued_records: 0,
            completion_counter: 0,
        }
    }

    /// Changes the node's CPU budget (resource-condition experiments).
    pub fn set_cpu_budget(&mut self, fraction: f64) {
        self.node.set_budget(CpuBudget::fraction(fraction));
    }

    /// Current load factors.
    pub fn load_factors(&self) -> Vec<f64> {
        self.stages.iter().map(|s| s.proxy.load_factor()).collect()
    }

    /// Installs load factors (used by fixed-allocation experiments §VI-F).
    pub fn set_load_factors(&mut self, p: &[f64]) {
        for (stage, &v) in self.stages.iter_mut().zip(p) {
            stage.proxy.set_load_factor(v);
        }
    }

    /// The runtime (trace/episode access).
    pub fn runtime(&self) -> &JarvisRuntime {
        &self.runtime
    }

    /// Mutable operator access (e.g. swapping a join table mid-run).
    pub fn op_mut(&mut self, stage: usize) -> &mut dyn Operator {
        self.stages[stage].op.as_mut()
    }

    /// The node (budget/consumption inspection).
    pub fn node(&self) -> &Node {
        &self.node
    }

    /// Average wire bytes of one input record (input-equivalent crediting of
    /// SP-side completions).
    pub fn avg_input_bytes(&self) -> f64 {
        self.avg_input_bytes
    }

    /// Thrash reflects *carried-over* backlog (memory pressure from previous
    /// epochs), not the normal batch of the current epoch — it is computed at
    /// epoch start and held constant for the epoch.
    fn compute_thrash_multiplier(&self) -> f64 {
        if self.overflow == OverflowMode::Queue && self.cfg.queue_cap > 0 {
            let frac = (self.queued_records as f64 / self.cfg.queue_cap as f64).min(1.0);
            1.0 + self.cfg.thrash_coeff * frac
        } else {
            1.0
        }
    }

    /// Time within the epoch (seconds offset) at the node's current
    /// utilisation, for sub-epoch completion timestamps.
    fn now_frac(&self) -> f64 {
        self.node.epoch_utilisation().min(1.0) * self.cfg.epoch_secs
    }

    /// Runs one epoch. `input` is this epoch's arrival batch;
    /// `epoch_start_us` is virtual time at the epoch start.
    pub fn run_epoch(&mut self, mut input: Batch, epoch_start_us: Ts) -> SourceEpochResult {
        // Wire accounting follows the plan's input schema, not whatever
        // schema the generator tagged the batch with (trace replay infers
        // column types, which would otherwise inflate byte counts).
        input.relabel(&self.schemas[0]);
        self.node.begin_epoch(self.cfg.epoch_secs);
        let mut metrics = EpochMetrics::default();
        let mut payloads: Vec<(NetPayload, usize, f64)> = Vec::new();

        metrics.input_records = input.len() as u64;
        metrics.input_bytes = input.wire_size() as u64;
        if metrics.input_records > 0 {
            self.avg_input_bytes = metrics.input_bytes as f64 / metrics.input_records as f64;
        }
        for stage in &mut self.stages {
            stage.proxy.begin_epoch();
        }

        let profiling = self.profile_next;
        self.profile_next = false;
        let estimates = if profiling {
            Some(self.run_profile_epoch(input, epoch_start_us, &mut metrics, &mut payloads))
        } else {
            self.run_normal_epoch(input, epoch_start_us, &mut metrics, &mut payloads);
            None
        };

        // Ship stateful partial state at the configured cadence (and always
        // right after a profile epoch, which measured via shipping).
        self.epochs_since_ship += 1;
        if !profiling && self.epochs_since_ship >= self.cfg.ship_interval {
            self.epochs_since_ship = 0;
            self.ship_state_deltas(&mut metrics, &mut payloads);
        }

        // Epoch boundary: classify proxies, drive the runtime.
        let node_idle_frac = 1.0 - self.node.epoch_utilisation();
        let states: Vec<ProxyState> = self
            .stages
            .iter()
            .map(|s| s.proxy.classify(node_idle_frac))
            .collect();
        let mut qstate = classify_query(&states);
        // An idle query whose load factors are already all 1 has nothing left
        // to pull local: treat as stable so the runtime does not churn
        // through pointless Profile/Adapt cycles.
        if qstate == QueryState::Idle
            && self
                .stages
                .iter()
                .all(|s| s.proxy.load_factor() >= 1.0 - 1e-12)
        {
            qstate = QueryState::Stable;
        }
        metrics.query_state = Some(qstate);

        let current_p = self.load_factors();
        let decision = self.runtime.on_epoch_end(qstate, estimates, &current_p);
        if let Some(p) = decision.set_load_factors {
            self.set_load_factors(&p);
        }
        self.profile_next = decision.run_profile;
        metrics.trace = self.runtime.trace().last().map(|t| t.trace);

        self.epoch += 1;
        SourceEpochResult { payloads, metrics }
    }

    /// Routes a batch at stage `i`'s proxy via
    /// [`ControlProxy::split_batch`]: the forwarded part joins the stage
    /// queue, the drained part is destined for SP stage `i`. Returns the
    /// number of rows forwarded.
    fn route_batch(
        stages: &mut [Stage],
        drains: &mut [Vec<Batch>],
        i: usize,
        batch: Batch,
    ) -> usize {
        let (fwd, drained) = stages[i].proxy.split_batch(batch);
        if let Some(drained) = drained {
            drains[i].push(drained);
        }
        let mut forwarded = 0;
        if let Some(fwd) = fwd {
            forwarded = fwd.len();
            stages[i].queue.push_back(fwd);
        }
        forwarded
    }

    fn run_normal_epoch(
        &mut self,
        input: Batch,
        epoch_start_us: Ts,
        metrics: &mut EpochMetrics,
        payloads: &mut Vec<(NetPayload, usize, f64)>,
    ) {
        let m = self.source_ops;
        let mut drains: Vec<Vec<Batch>> = vec![Vec::new(); m + 1];
        // `drains[m]` holds rows that traversed the whole local prefix
        // (possible only when the prefix is shorter than the plan, or the
        // tail operator is stateless).
        let epoch_end_us = epoch_start_us + (self.cfg.epoch_secs * 1e6) as Ts;
        // Memory-pressure penalty from the backlog carried into this epoch.
        let thrash = self.compute_thrash_multiplier();

        // Route arrivals at stage 0.
        self.queued_records += Self::route_batch(&mut self.stages, &mut drains, 0, input);

        // Process queues in pipeline order, a quantum of rows at a time,
        // until the budget is exhausted or everything is drained.
        let mut out_buf: Vec<Batch> = Vec::new();
        'outer: loop {
            let mut progressed = false;
            for i in 0..m {
                let mut quota = calibration::EXEC_QUANTUM;
                while quota > 0 {
                    let Some(front) = self.stages[i].queue.pop_front() else {
                        break;
                    };
                    if front.is_empty() {
                        continue;
                    }
                    let cost = self.stages[i].op.cost_us() * thrash;
                    let take = front.len().min(quota).min(self.node.affordable(cost));
                    if take == 0 {
                        self.stages[i].queue.push_front(front);
                        break 'outer;
                    }
                    let head = if take == front.len() {
                        front
                    } else {
                        let rest = front.slice(take..front.len());
                        let head = front.slice(0..take);
                        self.stages[i].queue.push_front(rest);
                        head
                    };
                    self.node.charge_upto(take as f64 * cost);
                    quota -= take;
                    self.queued_records -= take;
                    progressed = true;
                    let in_ts = head.timestamps.clone();
                    out_buf.clear();
                    self.stages[i].op.process_batch(head, &mut out_buf);
                    // Rows with no output were filtered out or absorbed into
                    // state: they complete locally.
                    for ts in absorbed_timestamps(&in_ts, &out_buf) {
                        self.complete_local(ts, epoch_start_us, metrics);
                    }
                    for out in out_buf.drain(..) {
                        if i + 1 < m {
                            self.queued_records +=
                                Self::route_batch(&mut self.stages, &mut drains, i + 1, out);
                        } else {
                            drains[m].push(out);
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        // Epoch-end watermark: closed-window emissions from final-role ops
        // (none in Partial role) flow downstream without extra cost.
        let mut wm_out: Vec<Batch> = Vec::new();
        for i in 0..m {
            wm_out.clear();
            self.stages[i].op.on_watermark(epoch_end_us, &mut wm_out);
            self.stages[i].op.on_epoch(&mut wm_out);
            for out in wm_out.drain(..) {
                if i + 1 < m {
                    self.queued_records +=
                        Self::route_batch(&mut self.stages, &mut drains, i + 1, out);
                } else {
                    drains[m].push(out);
                }
            }
        }

        // Leftovers: shed (data-level) or keep/cap (operator-level).
        match self.overflow {
            OverflowMode::Drain => {
                for (stage, drain) in self.stages[..m].iter_mut().zip(drains.iter_mut()) {
                    let n = stage.queued_rows() as u64;
                    if n > 0 {
                        stage.proxy.note_overflow(n);
                        drain.extend(stage.queue.drain(..));
                        stage.proxy.note_starved(false);
                    } else {
                        // Queue emptied before the epoch ran out of budget.
                        stage.proxy.note_starved(true);
                    }
                }
                self.recount_queue();
            }
            OverflowMode::Queue => {
                for stage in &mut self.stages[..m] {
                    let pending = stage.queued_rows() as u64;
                    stage.proxy.note_pending(pending);
                    stage.proxy.note_starved(pending == 0);
                }
                // Memory cap: drop oldest rows from the most backlogged stage.
                while self.queued_records > self.cfg.queue_cap {
                    let longest = (0..m)
                        .max_by_key(|&i| self.stages[i].queued_rows())
                        .expect("stages exist");
                    let Some(front) = self.stages[longest].queue.pop_front() else {
                        break;
                    };
                    let excess = self.queued_records - self.cfg.queue_cap;
                    let drop_n = front.len().min(excess);
                    if drop_n < front.len() {
                        self.stages[longest]
                            .queue
                            .push_front(front.slice(drop_n..front.len()));
                    }
                    self.queued_records -= drop_n;
                    metrics.lost_bytes += drop_n as f64 * self.avg_input_bytes;
                }
            }
        }

        // Flush drains to the network.
        self.flush_drains(drains, metrics, payloads);
    }

    /// Marks one input row's processing complete at the source.
    fn complete_local(&mut self, ts: Ts, epoch_start_us: Ts, metrics: &mut EpochMetrics) {
        let completion_s = epoch_start_us as f64 / 1e6 + self.now_frac();
        let latency = (completion_s - ts as f64 / 1e6).max(0.0);
        if latency <= calibration::LATENCY_BOUND_SECS {
            metrics.on_time_bytes += self.avg_input_bytes;
        } else {
            metrics.late_bytes += self.avg_input_bytes;
        }
        // Subsample latency 1-in-64 to keep per-epoch overhead flat.
        self.completion_counter = self.completion_counter.wrapping_add(1);
        if self.completion_counter.is_multiple_of(64) {
            metrics.latency_samples.push(latency);
        }
    }

    fn recount_queue(&mut self) {
        self.queued_records = self.stages.iter().map(Stage::queued_rows).sum();
    }

    /// Rows per network payload chunk. Small chunks give the links a fine
    /// eviction/fair-sharing quantum and sub-epoch completion times.
    const DRAIN_CHUNK_RECORDS: usize = 512;

    fn flush_drains(
        &mut self,
        drains: Vec<Vec<Batch>>,
        metrics: &mut EpochMetrics,
        payloads: &mut Vec<(NetPayload, usize, f64)>,
    ) {
        for (stage, batches) in drains.into_iter().enumerate() {
            let total_rows: usize = batches.iter().map(Batch::len).sum();
            if total_rows == 0 {
                continue;
            }
            metrics.drained_records += total_rows as u64;
            // Chunk and spread enqueue offsets across the epoch (routing
            // drains occur throughout it).
            let n_chunks: usize = batches
                .iter()
                .map(|b| b.len().div_ceil(Self::DRAIN_CHUNK_RECORDS))
                .sum();
            let mut c = 0usize;
            for batch in batches {
                for chunk in batch.chunks(Self::DRAIN_CHUNK_RECORDS) {
                    let bytes = chunk.wire_size();
                    metrics.net_bytes += bytes as u64;
                    let offset = (c as f64 + 0.5) / n_chunks as f64 * self.cfg.epoch_secs;
                    c += 1;
                    payloads.push((
                        NetPayload::Records {
                            stage,
                            batch: chunk,
                        },
                        bytes,
                        offset,
                    ));
                }
            }
        }
    }

    fn ship_state_deltas(
        &mut self,
        metrics: &mut EpochMetrics,
        payloads: &mut Vec<(NetPayload, usize, f64)>,
    ) {
        for i in 0..self.source_ops {
            if !self.stages[i].op.is_stateful() {
                continue;
            }
            if let Some(delta) = self.stages[i].op.take_state_delta() {
                let bytes = delta.wire_bytes();
                metrics.net_bytes += bytes as u64;
                metrics.state_bytes += bytes as u64;
                payloads.push((
                    NetPayload::StateDelta { stage: i, delta },
                    bytes,
                    self.cfg.epoch_secs,
                ));
            }
        }
    }

    /// A Profile epoch (paper §IV-C): execute one operator at a time on as
    /// much data as a per-operator budget slice allows, measuring per-record
    /// cost, relay ratios and the available budget. Costs are sampled per
    /// [`calibration::PROFILE_SUBBATCH_ROWS`]-row sub-batch so state-dependent growth is
    /// still observed. Unprocessed rows are drained losslessly.
    fn run_profile_epoch(
        &mut self,
        input: Batch,
        epoch_start_us: Ts,
        metrics: &mut EpochMetrics,
        payloads: &mut Vec<(NetPayload, usize, f64)>,
    ) -> ProfileEstimates {
        let m = self.source_ops;
        let records_per_epoch = input.len() as f64;
        self.node.charge_upto(PROFILE_COST_US);
        let slice = if m > 0 {
            self.node.remaining_us() / m as f64
        } else {
            0.0
        };

        let mut cost_us = Vec::with_capacity(m);
        let mut relay_bytes = Vec::with_capacity(m);
        let mut relay_count = Vec::with_capacity(m);
        let mut drains: Vec<Vec<Batch>> = vec![Vec::new(); m + 1];
        let mut batches = vec![input];

        #[allow(clippy::needless_range_loop)] // `i` indexes stages, schemas, and drains alike
        for i in 0..m {
            // Any backlog from previous epochs joins the sample.
            let mut pending: Vec<Batch> = self.stages[i].queue.drain(..).collect();
            pending.append(&mut batches);
            let mut used = 0.0f64;
            let mut processed = 0usize;
            let mut in_bytes = 0usize;
            let mut out: Vec<Batch> = Vec::new();
            let mut leftovers: Vec<Batch> = Vec::new();
            for batch in pending {
                let mut rest = batch;
                loop {
                    if rest.is_empty() {
                        break;
                    }
                    let cost = self.stages[i].op.cost_us();
                    let slice_afford = if cost <= 0.0 {
                        rest.len()
                    } else {
                        (((slice - used) / cost).max(0.0) as usize).min(self.node.affordable(cost))
                    };
                    let take = rest
                        .len()
                        .min(calibration::PROFILE_SUBBATCH_ROWS)
                        .min(slice_afford);
                    if take == 0 {
                        leftovers.push(rest);
                        break;
                    }
                    let head = if take == rest.len() {
                        std::mem::replace(&mut rest, Batch::empty(self.schemas[i].clone()))
                    } else {
                        let head = rest.slice(0..take);
                        rest = rest.slice(take..rest.len());
                        head
                    };
                    self.node.charge_upto(take as f64 * cost);
                    used += take as f64 * cost;
                    processed += take;
                    in_bytes += head.wire_size();
                    let in_ts = head.timestamps.clone();
                    let before = out.len();
                    self.stages[i].op.process_batch(head, &mut out);
                    for ts in absorbed_timestamps(&in_ts, &out[before..]) {
                        self.complete_local(ts, epoch_start_us, metrics);
                    }
                }
            }
            let mut out_bytes: usize = out.iter().map(Batch::wire_size).sum();
            let mut out_count: usize = out.iter().map(Batch::len).sum();
            // Stateful operators produce their output as shipped state.
            if self.stages[i].op.is_stateful() {
                if let Some(delta) = self.stages[i].op.take_state_delta() {
                    out_bytes += delta.wire_bytes();
                    out_count += delta.entry_count();
                    let bytes = delta.wire_bytes();
                    metrics.net_bytes += bytes as u64;
                    metrics.state_bytes += bytes as u64;
                    payloads.push((
                        NetPayload::StateDelta { stage: i, delta },
                        bytes,
                        self.cfg.epoch_secs,
                    ));
                }
            }
            cost_us.push(if processed > 0 {
                used / processed as f64
            } else {
                self.stages[i].op.cost_us()
            });
            relay_bytes.push(if in_bytes > 0 {
                out_bytes as f64 / in_bytes as f64
            } else {
                1.0
            });
            relay_count.push(if processed > 0 {
                out_count as f64 / processed as f64
            } else {
                1.0
            });
            drains[i].extend(leftovers);
            batches = out;
        }
        drains[m].append(&mut batches);
        self.recount_queue();
        self.flush_drains(drains, metrics, payloads);

        ProfileEstimates {
            cost_us,
            relay_bytes,
            relay_count,
            records_per_epoch,
            budget_us: self.node.granted_us(),
        }
    }

    /// Drains everything still held on the source — queued batches per stage
    /// and unshipped partial state — for an end-of-run flush to the stream
    /// processor (exactness fingerprinting).
    #[allow(clippy::type_complexity)]
    pub fn drain_residual(
        &mut self,
    ) -> (
        Vec<(usize, Vec<Batch>)>,
        Vec<(usize, streamkit::ops::StatePartial)>,
    ) {
        let mut batches = Vec::new();
        let mut deltas = Vec::new();
        for (stage, s) in self.stages.iter_mut().enumerate() {
            let queued: Vec<Batch> = s.queue.drain(..).collect();
            if !queued.is_empty() {
                batches.push((stage, queued));
            }
            if s.op.is_stateful() {
                if let Some(delta) = s.op.take_state_delta() {
                    deltas.push((stage, delta));
                }
            }
        }
        self.queued_records = 0;
        (batches, deltas)
    }

    /// Whether the runtime is mid-adaptation (Profile or Adapt phase).
    pub fn is_adapting(&self) -> bool {
        matches!(self.runtime.phase(), Phase::Profile | Phase::Adapt)
    }

    /// The number of operators in the full plan.
    pub fn plan_ops(&self) -> usize {
        self.plan_ops
    }

    /// Observed query state last epoch, if any.
    pub fn last_query_state(&self) -> Option<QueryState> {
        self.runtime.trace().last().map(|t| t.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::s2s_cost_profile;
    use crate::planner::{plan_query, RuleConfig};
    use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

    fn engine(strategy: StrategyKind, cpu: f64) -> SourceEngine {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        let mut cfg = SourceConfig::new(1, cpu, strategy);
        cfg.cpu_jitter = 0.0;
        SourceEngine::new(&planned, &s2s_cost_profile(), cfg)
    }

    fn epoch_input(e: i64, scale: f64) -> Batch {
        let mut gen = PingmeshGenerator::new(PingmeshConfig {
            scale,
            ..Default::default()
        });
        // Fast-forward the generator deterministically to epoch e.
        let mut out = gen.generate_epoch_batch(0, 1.0);
        for i in 1..=e {
            out = gen.generate_epoch_batch(i * 1_000_000, 1.0);
        }
        out
    }

    #[test]
    fn replayed_traces_account_under_the_plan_schema() {
        // A trace replay infers column types (U32 fields come back as U64),
        // but wire accounting must follow the plan's input schema: every
        // Pingmesh record is 86 bytes regardless of how it arrived.
        let mut gen = PingmeshGenerator::new(PingmeshConfig::default());
        let recorded = gen.generate_epoch(0, 1.0);
        let n = recorded.len() as u64;
        let mut replay = telemetry::trace::ReplayGenerator::new(recorded);
        let mut eng = engine(StrategyKind::AllSrc, 1.0);
        let result = eng.run_epoch(replay.generate_epoch_batch(0, 1.0), 0);
        assert_eq!(result.metrics.input_records, n);
        assert_eq!(
            result.metrics.input_bytes,
            n * telemetry::pingmesh::PINGMESH_RECORD_BYTES as u64
        );
        assert!((eng.avg_input_bytes() - 86.0).abs() < 1e-9);
    }

    #[test]
    fn drained_dict_batches_ship_the_smaller_dict_layout() {
        // LogAnalytics with the group stage pinned remote: batches drained
        // after ParseJobStats carry dictionary-encoded tenant / stat-name
        // columns, and the engine charges the (smaller) dict wire layout —
        // `Batch::wire_size` is the single source of truth either way.
        use telemetry::loganalytics::{LogConfig, LogGenerator};

        let planned =
            plan_query(telemetry::queries::log_analytics(), &RuleConfig::default()).unwrap();
        let mut cfg = SourceConfig::new(1, 1.0, StrategyKind::Jarvis);
        cfg.cpu_jitter = 0.0;
        let mut eng = SourceEngine::new(&planned, &crate::calibration::log_cost_profile(), cfg);
        let n_ops = planned.plan.ops.len();
        // Run everything up to (and including) the parse locally, drain the
        // rest to the SP replica.
        let mut factors = vec![1.0; n_ops];
        for f in factors.iter_mut().skip(4) {
            *f = 0.0;
        }
        eng.set_load_factors(&factors);
        let mut gen = LogGenerator::new(LogConfig {
            scale: 0.2,
            ..Default::default()
        });
        let result = eng.run_epoch(gen.generate_epoch_batch(0, 1.0), 0);
        let mut saw_dict_drain = false;
        for (payload, bytes, _) in &result.payloads {
            if let NetPayload::Records { batch, .. } = payload {
                assert_eq!(*bytes, batch.wire_size(), "charged = layout-derived");
                if batch.columns.iter().any(|c| c.as_dict().is_some()) {
                    saw_dict_drain = true;
                    let mut plain = batch.clone();
                    plain.dict_decode();
                    assert!(
                        batch.wire_size() < plain.wire_size(),
                        "dict drain {} must undercut plain {}",
                        batch.wire_size(),
                        plain.wire_size()
                    );
                    assert_eq!(plain.to_records(), batch.to_records());
                }
            }
        }
        assert!(
            saw_dict_drain,
            "post-parse drains must carry dict columns (factors {factors:?})"
        );
    }

    #[test]
    fn all_src_consumes_records_locally() {
        let mut eng = engine(StrategyKind::AllSrc, 1.0);
        let input = epoch_input(0, 1.0);
        let n = input.len() as u64;
        let result = eng.run_epoch(input, 0);
        assert_eq!(result.metrics.input_records, n);
        assert_eq!(result.metrics.drained_records, 0, "everything fits locally");
        assert!(result.metrics.on_time_bytes > 0.0);
    }

    #[test]
    fn all_sp_drains_every_record() {
        let mut eng = engine(StrategyKind::AllSp, 1.0);
        let input = epoch_input(0, 1.0);
        let n = input.len() as u64;
        let result = eng.run_epoch(input, 0);
        assert_eq!(result.metrics.drained_records, n);
        assert_eq!(
            result.metrics.on_time_bytes, 0.0,
            "completions happen at the SP"
        );
    }

    #[test]
    fn drain_mode_sheds_overflow_instead_of_queueing() {
        // Jarvis at a tiny budget with factors pinned to 1: the operators
        // cannot keep up, and the leftovers must drain (lossless), leaving
        // empty queues.
        let mut eng = engine(StrategyKind::Jarvis, 0.05);
        eng.set_load_factors(&[1.0, 1.0, 1.0]);
        let input = epoch_input(0, 10.0);
        let n = input.len() as u64;
        let result = eng.run_epoch(input, 0);
        assert!(result.metrics.drained_records > 0);
        // Conservation: local completions + drained == arrived (queues are
        // empty in drain mode). Completions are in input-equivalent bytes.
        let completed = ((result.metrics.on_time_bytes + result.metrics.late_bytes)
            / eng.avg_input_bytes())
        .round() as u64;
        assert_eq!(completed + result.metrics.drained_records, n);
    }

    #[test]
    fn profile_epoch_produces_biased_but_sane_estimates() {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        let mut cfg = SourceConfig::new(1, 0.9, StrategyKind::Jarvis);
        cfg.cpu_jitter = 0.0;
        let mut eng = SourceEngine::new(&planned, &s2s_cost_profile(), cfg);
        eng.profile_next = true;
        let result = eng.run_epoch(epoch_input(0, 10.0), 0);
        // Profiling ran: the runtime received estimates and moved to Adapt.
        let est = eng.runtime().estimates().expect("profile estimates");
        assert_eq!(est.len(), 3);
        // Filter cost is state-independent and must be measured accurately.
        assert!((est.cost_us[1] - 3.25).abs() < 0.1, "{est:?}");
        // The filter's byte relay ratio ≈ its 86% selectivity.
        assert!((est.relay_bytes[1] - 0.86).abs() < 0.05, "{est:?}");
        // G+R cost is *underestimated* relative to the ~22.5 µs steady state
        // (the §VI-C profiling-bias phenomenon).
        assert!(est.cost_us[2] < 22.0, "{est:?}");
        // Unprocessed profile records drained losslessly.
        assert!(result.metrics.drained_records > 0);
    }

    #[test]
    fn load_factors_clamp_and_install() {
        let mut eng = engine(StrategyKind::Jarvis, 0.5);
        eng.set_load_factors(&[0.5, 2.0, -1.0]);
        assert_eq!(eng.load_factors(), vec![0.5, 1.0, 0.0]);
    }
}
