//! The core building block (paper Fig. 4b): N data sources, an uplink
//! network, and one stream processor, advanced in lock-step epochs.

use simnet::link::{Delivered, FairLink, Link};
use simnet::VirtualClock;
use streamkit::batch::Batch;
use streamkit::physical::CostProfile;
use streamkit::time::Ts;

use crate::calibration;
use crate::engine::cluster::SpCluster;
use crate::engine::metrics::RunMetrics;
use crate::engine::source::{SourceConfig, SourceEngine};
use crate::engine::NetPayload;
use crate::planner::PlannedQuery;

/// A per-epoch batch generator (one per source). Sources produce columnar
/// [`Batch`]es directly — the dataflow is batch-first end to end.
pub trait EpochSource: Send {
    /// Produces the rows arriving in `[epoch_start, epoch_start + secs)` as
    /// one columnar batch.
    fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch;
}

impl EpochSource for telemetry::pingmesh::PingmeshGenerator {
    fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        telemetry::pingmesh::PingmeshGenerator::generate_epoch_batch(self, epoch_start, epoch_secs)
    }
}

impl EpochSource for telemetry::loganalytics::LogGenerator {
    fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        telemetry::loganalytics::LogGenerator::generate_epoch_batch(self, epoch_start, epoch_secs)
    }
}

impl EpochSource for telemetry::trace::ReplayGenerator {
    fn generate_epoch_batch(&mut self, epoch_start: Ts, epoch_secs: f64) -> Batch {
        telemetry::trace::ReplayGenerator::generate_epoch_batch(self, epoch_start, epoch_secs)
    }
}

/// Uplink topology between the sources and the SP.
#[derive(Debug, Clone, Copy)]
pub enum NetworkModel {
    /// A dedicated per-source, per-query link (Fig. 7/9/11 setting:
    /// 2.048 Mbps × 10).
    PerSource {
        /// Capacity per source, bits/second.
        bps: f64,
    },
    /// One shared SP-ingress pipe, max-min fair across sources (Fig. 10
    /// setting: 10 Gbps / 20 queries).
    Shared {
        /// Total capacity, bits/second.
        total_bps: f64,
    },
}

enum Net {
    PerSource(Vec<Link<NetPayload>>),
    Shared(FairLink<NetPayload>),
}

/// Record payloads are sheddable when the uplink buffer fills; state deltas
/// are not (they are small and carry accumulated aggregates).
fn evictable(p: &NetPayload) -> bool {
    matches!(p, NetPayload::Records { .. })
}

impl Net {
    /// Enqueues; returns input-equivalent *records* evicted by buffer caps.
    fn enqueue(&mut self, flow: usize, payload: NetPayload, bytes: usize, now: f64) -> usize {
        let evicted = match self {
            Net::PerSource(links) => links[flow].enqueue_bounded(payload, bytes, now, evictable),
            Net::Shared(link) => link.enqueue_bounded(flow, payload, bytes, now, evictable),
        };
        evicted.iter().map(|(p, _)| p.record_count()).sum()
    }

    fn transmit(&mut self, now: f64, secs: f64) -> Vec<(usize, Delivered<NetPayload>)> {
        match self {
            Net::PerSource(links) => {
                let mut out = Vec::new();
                for (i, link) in links.iter_mut().enumerate() {
                    for d in link.transmit(now, secs) {
                        out.push((i, d));
                    }
                }
                out
            }
            Net::Shared(link) => link.transmit(now, secs),
        }
    }

    fn backlog_bytes(&self) -> f64 {
        match self {
            Net::PerSource(links) => links.iter().map(Link::backlog_bytes).sum(),
            Net::Shared(link) => link.total_backlog_bytes(),
        }
    }
}

/// Building-block configuration.
#[derive(Debug, Clone)]
pub struct BuildingBlockConfig {
    /// Epoch length, seconds.
    pub epoch_secs: f64,
    /// SP cores.
    pub sp_cores: f64,
    /// Uplink model.
    pub network: NetworkModel,
    /// Virtual shards on the SP tier's fixed hash ring (1 = unsharded).
    pub sp_shards: usize,
    /// SP nodes dividing the ring into contiguous slices (1 = single node).
    pub sp_nodes: usize,
}

impl Default for BuildingBlockConfig {
    fn default() -> Self {
        BuildingBlockConfig {
            epoch_secs: calibration::EPOCH_SECS,
            sp_cores: calibration::SP_CORES,
            network: NetworkModel::PerSource {
                bps: calibration::per_query_per_node_bps(),
            },
            sp_shards: 1,
            sp_nodes: 1,
        }
    }
}

/// N sources + network + SP cluster, advanced epoch by epoch.
pub struct BuildingBlock {
    clock: VirtualClock,
    sources: Vec<SourceEngine>,
    generators: Vec<Box<dyn EpochSource>>,
    net: Net,
    sp: SpCluster,
    /// Per-source metrics (measurement window).
    metrics: Vec<RunMetrics>,
    /// Epochs excluded from metrics (system warm-up, §VI-A).
    warmup_epochs: u64,
    measured_epochs: u64,
    /// Sources currently failed (not generating or processing).
    failed: Vec<bool>,
}

impl BuildingBlock {
    /// Builds a block running `planned` on every source.
    pub fn new(
        planned: &PlannedQuery,
        costs: &CostProfile,
        source_cfgs: Vec<SourceConfig>,
        generators: Vec<Box<dyn EpochSource>>,
        cfg: BuildingBlockConfig,
        warmup_epochs: u64,
    ) -> BuildingBlock {
        assert_eq!(
            source_cfgs.len(),
            generators.len(),
            "one generator per source"
        );
        let n = source_cfgs.len();
        let sources: Vec<SourceEngine> = source_cfgs
            .into_iter()
            .map(|sc| SourceEngine::new(planned, costs, sc))
            .collect();
        // Finite uplink buffers sized so a record admitted to the buffer can
        // still complete within the latency bound: the bound minus headroom
        // for epoch batching and SP-side processing. Stale records beyond
        // that are shed (drop-oldest), as a real agent's bounded socket
        // buffers would.
        let buffer_secs = (calibration::LATENCY_BOUND_SECS - 2.0 * cfg.epoch_secs).max(0.5);
        let net = match cfg.network {
            NetworkModel::PerSource { bps } => {
                let cap = buffer_secs * bps / 8.0;
                Net::PerSource(
                    (0..n)
                        .map(|_| {
                            let mut link = Link::new(bps);
                            link.set_backlog_cap_bytes(Some(cap));
                            link
                        })
                        .collect(),
                )
            }
            NetworkModel::Shared { total_bps } => {
                let mut link = FairLink::new(total_bps, n);
                let share = total_bps / n.max(1) as f64;
                link.set_flow_backlog_cap_bytes(Some(buffer_secs * share / 8.0));
                Net::Shared(link)
            }
        };
        let sp = SpCluster::new(
            planned,
            costs,
            n,
            cfg.sp_cores,
            cfg.epoch_secs,
            cfg.sp_shards,
            cfg.sp_nodes,
        );
        BuildingBlock {
            clock: VirtualClock::new(cfg.epoch_secs),
            sources,
            generators,
            net,
            sp,
            metrics: (0..n).map(|_| RunMetrics::default()).collect(),
            warmup_epochs,
            measured_epochs: 0,
            failed: vec![false; n],
        }
    }

    /// Fails source `i` (paper §IV-E): captures a checkpoint of its
    /// accumulated state, ships it to the stream processor so the current
    /// window can complete there, and stops the source until
    /// [`BuildingBlock::recover_source`]. Returns the checkpoint for the
    /// eventual restart.
    pub fn fail_source(&mut self, i: usize) -> crate::checkpoint::Checkpoint {
        let now = self.clock.now_secs();
        let ckpt = crate::checkpoint::snapshot(&mut self.sources[i]);
        crate::checkpoint::apply_at_sp(&mut self.sp, i, &ckpt, now);
        self.failed[i] = true;
        ckpt
    }

    /// Recovers source `i` from a checkpoint: reinstalls its adapted load
    /// factors (state stays at the SP, which already owns the checkpointed
    /// windows).
    pub fn recover_source(&mut self, i: usize, ckpt: &crate::checkpoint::Checkpoint) {
        self.sources[i].set_load_factors(&ckpt.load_factors);
        self.failed[i] = false;
    }

    /// Whether source `i` is currently failed.
    pub fn is_failed(&self, i: usize) -> bool {
        self.failed[i]
    }

    /// Number of sources.
    pub fn source_count(&self) -> usize {
        self.sources.len()
    }

    /// Mutable access to a source engine (budget changes, table swaps).
    pub fn source_mut(&mut self, i: usize) -> &mut SourceEngine {
        &mut self.sources[i]
    }

    /// A source engine.
    pub fn source(&self, i: usize) -> &SourceEngine {
        &self.sources[i]
    }

    /// The SP cluster.
    pub fn sp(&self) -> &SpCluster {
        &self.sp
    }

    /// Per-source metrics over the measurement window.
    pub fn metrics(&self) -> &[RunMetrics] {
        &self.metrics
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u64 {
        self.clock.epoch()
    }

    /// Measured (post-warmup) virtual seconds.
    pub fn measured_secs(&self) -> f64 {
        self.measured_epochs as f64 * self.clock.epoch_secs()
    }

    /// Network backlog in bytes.
    pub fn net_backlog_bytes(&self) -> f64 {
        self.net.backlog_bytes()
    }

    /// Advances the whole block by one epoch.
    pub fn run_epoch(&mut self) {
        let epoch_secs = self.clock.epoch_secs();
        let now_us = self.clock.now_micros();
        let now_s = self.clock.now_secs();
        let measuring = self.clock.epoch() >= self.warmup_epochs;

        // 1. Sources ingest and execute (failed sources stay dark).
        let mut epoch_metrics = Vec::with_capacity(self.sources.len());
        for (i, source) in self.sources.iter_mut().enumerate() {
            if self.failed[i] {
                epoch_metrics.push(crate::engine::metrics::EpochMetrics::default());
                continue;
            }
            let input = self.generators[i].generate_epoch_batch(now_us, epoch_secs);
            let result = source.run_epoch(input, now_us);
            let mut evicted_records = 0usize;
            for (payload, bytes, offset) in result.payloads {
                evicted_records += self.net.enqueue(i, payload, bytes, now_s + offset);
            }
            let mut metrics = result.metrics;
            // Records shed at the uplink buffer never complete.
            metrics.lost_bytes += evicted_records as f64 * source.avg_input_bytes();
            epoch_metrics.push(metrics);
        }

        // 2. Network transfers for this epoch.
        let deliveries = self.net.transmit(now_s, epoch_secs);
        for (flow, d) in deliveries {
            let arrival = d.completed_at.max(d.enqueued_at);
            self.sp.deliver(flow, d.payload, arrival);
        }

        // 3. SP processes its arrivals; completions credit their sources.
        let completions = self.sp.run_epoch(now_us);
        if measuring {
            for c in completions {
                let m = &mut self.metrics[c.source];
                let bytes = self.sources[c.source].avg_input_bytes();
                let latency = (c.completed_s - c.ts as f64 / 1e6).max(0.0);
                if latency <= calibration::LATENCY_BOUND_SECS {
                    m.on_time_bytes += bytes;
                } else {
                    m.late_bytes += bytes;
                }
                m.latency.record(latency);
            }
            for (i, em) in epoch_metrics.iter().enumerate() {
                self.metrics[i].absorb(em);
            }
            self.measured_epochs += 1;
        }

        self.clock.advance();
    }

    /// Runs `n` epochs.
    pub fn run_epochs(&mut self, n: u64) {
        for _ in 0..n {
            self.run_epoch();
        }
    }

    /// Enables result-row retention at the SP for exactness fingerprinting.
    pub fn set_collect_results(&mut self, on: bool) {
        self.sp.set_collect_results(on);
    }

    /// Swaps the static table of every join operator on every source (the
    /// Fig. 8b 10× table growth).
    pub fn swap_join_tables(&mut self, table_size: u32) {
        use std::sync::Arc;
        use streamkit::ops::{JoinOp, StaticTable};
        let (src_table, dst_table) = telemetry::queries::t2t_tables(table_size, 40, &[1]);
        for i in 0..self.source_count() {
            let engine = self.source_mut(i);
            let mut join_seen = 0;
            for stage in 0..engine.plan_ops() {
                if let Some(join) = engine
                    .op_mut(stage)
                    .as_any_mut()
                    .and_then(|a| a.downcast_mut::<JoinOp>())
                {
                    let table: &Arc<StaticTable> = if join_seen == 0 {
                        &src_table
                    } else {
                        &dst_table
                    };
                    join.set_table(table.clone());
                    join_seen += 1;
                }
            }
        }
    }

    /// End-of-run flush for exactness fingerprinting: delivers everything
    /// still on the wire, ships residual source state and queued records to
    /// the SP, and closes all remaining windows there.
    pub fn finalize_results(&mut self) {
        let now = self.clock.now_secs();
        // Deliver the whole network backlog.
        for (flow, d) in self.net.transmit(now, 1e9) {
            let arrival = d.completed_at.max(d.enqueued_at);
            self.sp.deliver(flow, d.payload, arrival);
        }
        // Residual source-side state and queues.
        for i in 0..self.sources.len() {
            if self.failed[i] {
                continue;
            }
            let (batches, deltas) = self.sources[i].drain_residual();
            for (stage, stage_batches) in batches {
                for batch in stage_batches {
                    self.sp
                        .deliver(i, NetPayload::Records { stage, batch }, now);
                }
            }
            for (stage, delta) in deltas {
                self.sp
                    .deliver(i, NetPayload::StateDelta { stage, delta }, now);
            }
        }
        self.sp.finalize();
    }

    /// Aggregate on-time throughput across sources, paper-Mbps.
    pub fn aggregate_throughput_mbps(&self) -> f64 {
        let secs = self.measured_secs();
        self.metrics.iter().map(|m| m.throughput_mbps(secs)).sum()
    }

    /// Aggregate offered network rate, paper-Mbps.
    pub fn aggregate_network_mbps(&self) -> f64 {
        let secs = self.measured_secs();
        self.metrics.iter().map(|m| m.network_mbps(secs)).sum()
    }
}
