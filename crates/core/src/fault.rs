//! Deterministic fault injection for the distributed SP tier (§IV-E).
//!
//! A [`FaultPlan`] is a seeded, fully reproducible schedule of link faults:
//! *which* coordinator→node link misbehaves, *when* (a frame index or an
//! epoch boundary), and *how* ([`FaultKind`]). The plan is threaded through
//! [`crate::deploy::DeploymentBuilder::fault_plan`] into the live session,
//! where [`crate::engine::transport::Link::spawn_with_faults`] arms each
//! link's writer thread with its slice of the plan. The same vocabulary
//! drives the out-of-process `jarvis-chaos-proxy` binary, so in-process
//! tests and CI chaos runs exercise identical failure shapes.
//!
//! Determinism matters more than realism here: the recovery parity suites
//! assert *bit-identical* digests against fault-free runs, which is only a
//! meaningful test when the fault fires at exactly the same frame every
//! run. Randomness (the corrupt byte position, reconnect jitter) comes from
//! [`splitmix64`] over an explicit seed — the crate deliberately has no
//! RNG dependency.

use serde::{Deserialize, Serialize};

/// SplitMix64: one multiply-xorshift round over a 64-bit state. The only
/// randomness source in the crate — deterministic, seedable, and good
/// enough for picking corrupt-byte offsets and backoff jitter.
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// How an armed fault manifests on the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The matching frame is silently discarded.
    Drop,
    /// The writer stalls this many milliseconds before the frame.
    Delay(u64),
    /// One seed-chosen body byte of the frame is flipped (CRC-detectable).
    Corrupt,
    /// The socket is shut down in both directions — an abrupt node loss.
    Sever,
}

impl FaultKind {
    /// Short label for incident reports and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Drop => "drop",
            FaultKind::Delay(_) => "delay",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Sever => "sever",
        }
    }
}

/// When an armed fault fires. Counting is per link and 0-indexed; the fault
/// fires *before* the matching frame is written.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTrigger {
    /// Before the `n`-th frame written on the link.
    Frame(u64),
    /// Before the `k`-th `EpochEnd` frame — i.e. the node has received all
    /// of epoch `k`'s shard traffic but never the boundary marker, so it
    /// acks exactly `k` epochs.
    EpochEnd(u64),
}

/// One armed fault on one link: fires at most once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkFault {
    /// When the fault fires.
    pub trigger: FaultTrigger,
    /// What happens.
    pub kind: FaultKind,
}

/// One scheduled fault of a [`FaultPlan`], naming its target link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultAction {
    /// The coordinator→node link (node id) the fault arms.
    pub link: u32,
    /// When the fault fires on that link.
    pub trigger: FaultTrigger,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seeded schedule of link faults for one run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// Seed for every derived random choice (corrupt positions, jitter).
    pub seed: u64,
    /// The scheduled faults, any number per link.
    pub actions: Vec<FaultAction>,
}

impl FaultPlan {
    /// A plan with a single action — the common chaos-test shape.
    #[must_use]
    pub fn single(seed: u64, link: u32, trigger: FaultTrigger, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            seed,
            actions: vec![FaultAction {
                link,
                trigger,
                kind,
            }],
        }
    }

    /// The faults armed on one link, in schedule order.
    #[must_use]
    pub fn faults_for(&self, link: u32) -> Vec<LinkFault> {
        self.actions
            .iter()
            .filter(|a| a.link == link)
            .map(|a| LinkFault {
                trigger: a.trigger,
                kind: a.kind,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_deterministic_and_mixes() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(0), splitmix64(1));
        // Reference value of the SplitMix64 sequence from seed 0.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn plans_slice_per_link_and_round_trip_json() {
        let plan = FaultPlan {
            seed: 9,
            actions: vec![
                FaultAction {
                    link: 0,
                    trigger: FaultTrigger::Frame(3),
                    kind: FaultKind::Delay(10),
                },
                FaultAction {
                    link: 1,
                    trigger: FaultTrigger::EpochEnd(2),
                    kind: FaultKind::Sever,
                },
            ],
        };
        assert_eq!(plan.faults_for(1).len(), 1);
        assert_eq!(plan.faults_for(1)[0].kind, FaultKind::Sever);
        assert!(plan.faults_for(7).is_empty());
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }
}
