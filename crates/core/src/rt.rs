//! Cooperative task runtime for the live session's massive source fan-in.
//!
//! This is a thin facade over the vendored [`minirt`] crate: a
//! work-stealing multi-worker executor ([`Runtime`]), bounded async MPSC
//! channels ([`chan`]) whose receivers drain whole bursts per wakeup, and a
//! deadline timer wheel ([`TimerWheel`] / [`DeadlineQueue`]). The live
//! session spawns one task per source prefix, per SP node, and for the
//! dispatcher, so 10k sources run on `num_cpus` worker threads instead of
//! 10k OS threads.
//!
//! **Wakeup-amortization contract.** Every consumer task in the session
//! topology receives through [`chan::Receiver::recv_many`], which moves the
//! channel's *entire* buffered backlog in one poll. A burst of `n` messages
//! therefore costs one scheduler wakeup, not `n`, and per-record overhead
//! stays flat as the source count grows — the property the
//! `source_scaling` bench series gates on.
//!
//! **Determinism.** The schedule never affects results: the key → shard
//! mapping, netwire codec, and dict delta protocol are all
//! order-independent (see `tests/source_scale_parity.rs`). For debugging
//! task-ordering bugs, [`deterministic_runtime`] (or the
//! `JARVIS_RT_SEED` environment variable) switches to a seeded
//! single-worker scheduler that replays one interleaving exactly.

pub use minirt::chan;
pub use minirt::exec::{block_on, yield_now, Handle, JoinHandle, Runtime};
pub use minirt::timer::{DeadlineQueue, Sleep, TimerWheel};

/// Documented fan-in bound: how many source tasks one executor worker is
/// expected to multiplex comfortably at the default channel capacity.
/// Deployments requesting more than `rt_workers × RT_FANIN_BOUND` sources
/// without tuning `channel_capacity` trip the `JP501` plancheck info lint —
/// beyond this ratio, widening the channels is what keeps source tasks from
/// parking on backpressure between dispatcher drains.
pub const RT_FANIN_BOUND: u32 = 512;

/// Default capacity of the session's async channels (source → dispatcher
/// and dispatcher → node), overridable via the `channel_capacity` builder
/// knob.
pub const DEFAULT_CHANNEL_CAPACITY: u32 = 256;

/// Effective worker count for a requested `rt_workers` knob: `None` sizes
/// to the host's available parallelism.
pub fn effective_workers(requested: Option<u32>) -> usize {
    match requested {
        Some(n) => n as usize,
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// Builds the session runtime for a requested worker count, honouring the
/// `JARVIS_RT_SEED` deterministic-scheduler override (CI sets it to make
/// task-ordering bugs reproduce instead of flickering under thread-schedule
/// noise).
pub fn session_runtime(requested: Option<u32>) -> Runtime {
    if let Some(seed) = std::env::var("JARVIS_RT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
    {
        return deterministic_runtime(seed);
    }
    Runtime::new(effective_workers(requested))
}

/// A seeded single-worker runtime replaying one task interleaving exactly.
pub fn deterministic_runtime(seed: u64) -> Runtime {
    Runtime::deterministic(seed)
}

#[cfg(test)]
mod tests {
    use super::{chan, deterministic_runtime, effective_workers, session_runtime};

    #[test]
    fn effective_workers_defaults_to_host_parallelism() {
        assert!(effective_workers(None) >= 1);
        assert_eq!(effective_workers(Some(3)), 3);
    }

    #[test]
    fn session_runtime_spawns_and_joins() {
        let rt = session_runtime(Some(2));
        let h = rt.spawn(async { 41 + 1 });
        assert_eq!(h.join(), 42);
    }

    #[test]
    fn deterministic_runtime_is_single_worker() {
        let rt = deterministic_runtime(7);
        assert_eq!(rt.workers(), 1);
        let (tx, mut rx) = chan::bounded::<u32>(4);
        let prod = rt.spawn(async move {
            for i in 0..8 {
                tx.send(i).await.expect("receiver alive");
            }
        });
        let cons = rt.spawn(async move {
            let mut got = Vec::new();
            let mut buf = Vec::new();
            while rx.recv_many(&mut buf).await > 0 {
                got.append(&mut buf);
            }
            got
        });
        prod.join();
        assert_eq!(cons.join(), (0..8).collect::<Vec<_>>());
    }
}
