//! Abstract convergence-cost simulator (paper §VI-C, "Impact of number of
//! operators").
//!
//! The paper analyses fine-tuning convergence with a simulator that
//! exhaustively searches execution configurations (operator costs, relay
//! ratios, budgets) and measures the number of epochs StepWise-Adapt needs to
//! stabilise, finding up to 21 epochs in the worst case with four operators.
//! This module reproduces that analysis against an idealised environment:
//! the query is *congested* when the plan oversubscribes the budget, *idle*
//! when it undersubscribes it by more than a tolerance, and *stable* in
//! between. It also ablates binary search vs linear stepping.

use crate::proxy::QueryState;
use crate::stepwise::{ProfileEstimates, StepWiseAdapt, StepWiseConfig};

/// An abstract query/budget configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-operator per-record cost, µs.
    pub cost_us: Vec<f64>,
    /// Per-operator byte relay ratios.
    pub relay: Vec<f64>,
    /// Records per epoch.
    pub records: f64,
    /// Budget per epoch, µs.
    pub budget_us: f64,
    /// Stability tolerance: the fraction of budget that may remain unused
    /// without signalling idle (mirrors IdleThres).
    pub idle_tolerance: f64,
}

impl SimConfig {
    /// Compute usage (µs) of a load-factor plan in this configuration.
    #[allow(clippy::needless_range_loop)] // `i` indexes p, cost_us, and the relay prefix
    pub fn usage_us(&self, p: &[f64]) -> f64 {
        let mut usage = 0.0;
        let mut eff = 1.0;
        for i in 0..self.cost_us.len() {
            eff *= p[i];
            usage += eff * self.cost_us[i] * self.records * self.relay_prefix(i);
        }
        usage
    }

    fn relay_prefix(&self, i: usize) -> f64 {
        self.relay[..i].iter().map(|r| r.clamp(0.0, 1.0)).product()
    }

    /// Classifies a plan: oversubscribed → congested, well undersubscribed
    /// with headroom to raise → idle, else stable.
    pub fn classify(&self, p: &[f64]) -> QueryState {
        let usage = self.usage_us(p);
        if usage > self.budget_us {
            QueryState::Congested
        } else if usage < self.budget_us * (1.0 - self.idle_tolerance)
            && p.iter().any(|&x| x < 1.0 - 1e-9)
        {
            QueryState::Idle
        } else {
            QueryState::Stable
        }
    }
}

/// Counts fine-tuning epochs until stable, starting from all-zero load
/// factors (the w/o-LP-init worst case the paper simulates). Returns `None`
/// if the adapter fails to stabilise within `max_epochs`.
pub fn epochs_to_converge(cfg: &SimConfig, sw: StepWiseConfig, max_epochs: u32) -> Option<u32> {
    let m = cfg.cost_us.len();
    let mut adapter = StepWiseAdapt::new(sw, m);
    adapter.set_priorities(&ProfileEstimates {
        cost_us: cfg.cost_us.clone(),
        relay_bytes: cfg.relay.clone(),
        relay_count: cfg.relay.clone(),
        records_per_epoch: cfg.records,
        budget_us: cfg.budget_us,
    });
    let mut p = vec![0.0; m];
    for epoch in 0..max_epochs {
        let state = cfg.classify(&p);
        if state == QueryState::Stable {
            return Some(epoch);
        }
        if !adapter.fine_tune(&mut p, state) {
            // Nothing to move: stable next check or stuck.
            return if cfg.classify(&p) == QueryState::Stable {
                Some(epoch + 1)
            } else {
                None
            };
        }
    }
    None
}

/// Result of the exhaustive sweep for one operator count.
#[derive(Debug, Clone)]
pub struct OpCountResult {
    /// Number of operators.
    pub ops: usize,
    /// Worst-case convergence epochs over the grid.
    pub worst_epochs: u32,
    /// Mean convergence epochs.
    pub mean_epochs: f64,
    /// Configurations that failed to converge.
    pub failures: u32,
    /// Grid size.
    pub configs: u32,
}

/// Exhaustive sweep over cost/budget grids for 2..=`max_ops` operators.
pub fn sweep_operator_counts(max_ops: usize, sw: StepWiseConfig) -> Vec<OpCountResult> {
    let cost_grid = [0.5, 2.0, 8.0, 24.0];
    let relay_grid = [0.2, 0.6, 0.9];
    let budget_grid = [0.1, 0.3, 0.6, 0.9];
    let mut out = Vec::new();
    for ops in 2..=max_ops {
        let mut worst = 0u32;
        let mut total = 0u64;
        let mut failures = 0u32;
        let mut configs = 0u32;
        // Enumerate cost/relay assignments as digit strings over the grids
        // (bounded: the cost of this sweep is grid^ops ≤ 12^6).
        let combos = (cost_grid.len() * relay_grid.len()).pow(ops as u32);
        for combo in 0..combos {
            let mut c = combo;
            let mut cost_us = Vec::with_capacity(ops);
            let mut relay = Vec::with_capacity(ops);
            for _ in 0..ops {
                cost_us.push(cost_grid[c % cost_grid.len()]);
                c /= cost_grid.len();
                relay.push(relay_grid[c % relay_grid.len()]);
                c /= relay_grid.len();
            }
            for &budget in &budget_grid {
                configs += 1;
                let cfg = SimConfig {
                    cost_us: cost_us.clone(),
                    relay: relay.clone(),
                    records: 10_000.0,
                    budget_us: budget * 1e6,
                    idle_tolerance: 0.15,
                };
                match epochs_to_converge(&cfg, sw, 200) {
                    Some(e) => {
                        worst = worst.max(e);
                        total += u64::from(e);
                    }
                    None => failures += 1,
                }
            }
        }
        out.push(OpCountResult {
            ops,
            worst_epochs: worst,
            mean_epochs: total as f64 / (configs - failures).max(1) as f64,
            failures,
            configs,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_cfg() -> SimConfig {
        SimConfig {
            cost_us: vec![0.25, 3.25, 23.0],
            relay: vec![1.0, 0.86, 0.3],
            records: 40_000.0,
            budget_us: 600_000.0,
            idle_tolerance: 0.15,
        }
    }

    #[test]
    fn usage_is_monotone_in_load_factors() {
        let cfg = base_cfg();
        let low = cfg.usage_us(&[0.5, 0.5, 0.5]);
        let high = cfg.usage_us(&[1.0, 1.0, 1.0]);
        assert!(low < high);
    }

    #[test]
    fn classification_brackets_the_budget() {
        let cfg = base_cfg();
        assert_eq!(cfg.classify(&[1.0, 1.0, 1.0]), QueryState::Congested);
        assert_eq!(cfg.classify(&[0.1, 0.1, 0.1]), QueryState::Idle);
    }

    #[test]
    fn fine_tuning_converges_from_zero() {
        let cfg = base_cfg();
        let epochs = epochs_to_converge(&cfg, StepWiseConfig::without_lp_init(), 100)
            .expect("must converge");
        assert!(epochs > 0 && epochs < 40, "epochs = {epochs}");
    }

    #[test]
    fn worst_case_grows_with_operator_count() {
        let results = sweep_operator_counts(4, StepWiseConfig::without_lp_init());
        assert_eq!(results.len(), 3); // ops = 2, 3, 4
        assert!(results[0].worst_epochs <= results[2].worst_epochs);
        // Paper: worst case "as high as 21 epochs ... with four operators";
        // our grid should land in the same ballpark (double digits).
        assert!(
            results[2].worst_epochs >= 10,
            "4-op worst case = {}",
            results[2].worst_epochs
        );
        for r in &results {
            assert_eq!(r.failures, 0, "all configs must converge: {r:?}");
        }
    }
}
