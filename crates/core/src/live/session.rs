//! An epoch-driven live session: task-scheduled, batch-first, key-sharded,
//! multi-node execution under runtime control.
//!
//! [`run_partitioned`](crate::live::run_partitioned) runs one batch under
//! *fixed* load factors. [`LiveSession`] lifts that limitation: it keeps one
//! source worker per data source alive across epochs, and at every epoch
//! boundary drives each source's [`JarvisRuntime`] state machine (Startup →
//! Probe → Profile → Adapt) exactly like the emulated engine does — so
//! adaptive strategies converge over a *really concurrent* execution while
//! partitioned results stay exact. Sources generate columnar [`Batch`]es
//! and the channels carry batches end-to-end.
//!
//! Concurrency comes from the [`crate::rt`] cooperative task runtime, not
//! OS threads: every epoch spawns one **task** per source, one dispatcher
//! task, and one task per in-process SP node onto a work-stealing executor
//! sized by the `rt_workers` knob, connected by bounded async channels
//! sized by `channel_capacity`. Consumers drain through
//! [`crate::rt::chan::Receiver::recv_many`], so a burst of messages costs
//! one wakeup, not one per message — which is what lets 10k sources run on
//! `num_cpus` worker threads (the `source_scaling` bench series gates this).
//! Task ownership moves with the epoch: each task takes its worker or node
//! state in and hands it back through its join handle, so no epoch state is
//! ever shared between tasks.
//!
//! The SP side is a **dispatcher + node pool**: the dispatcher task runs each
//! replica's stateless prefix, partitions every boundary batch over the
//! fixed ring of `sp_shards` virtual shards
//! ([`Batch::shard_by_key`]), and dispatches each sub-batch to the SP node
//! owning its shard ([`node_of_shard`]) over that node's bounded channel —
//! a channel that emulates a network link: payloads whose owner is not the
//! source's ingress node cross it as **serialized**
//! [`NetPayload::ShardBatch`] / [`NetPayload::ShardState`] bytes
//! ([`netwire`](crate::engine::netwire)), decoded on the node's worker
//! task, so a remote shard pipeline is reachable through its wire form
//! alone (location transparency); ingress-local traffic skips the codec,
//! exactly like PR 4's single-node path. Shipped [`StatePartial`] entries split by the
//! shard owning their key ([`shard_of_values`]) the same way, so a group's
//! whole lifetime happens on one shard and merged results are bit-identical
//! at any shard *and node* count (`tests/shard_parity.rs`,
//! `tests/node_parity.rs`).
//!
//! Worker threads execute operators for real (state, joins, sketches); the
//! CPU *budget* is counterfactual, charged from the calibrated cost model:
//! an epoch whose modelled usage oversubscribes the budget classifies as
//! congested, one that undersubscribes with load factors left to raise
//! classifies as idle (the same rules as the §VI-C simulator). The same
//! counterfactual charging is recorded per shard (and rolled up per node)
//! on the SP side; cross-node shipping is charged per target shard at the
//! frames' actual encoded size — delta-aware for persistent dictionary
//! pages, which cross each link once and then resume as deltas across
//! batches *and epochs* — with each source's traffic entering at its
//! ingress node (`source % sp_nodes`). Classification itself stays
//! source-side today; feeding the slowest shard's budget back into
//! adaptation is a ROADMAP follow-on.
//! Profile epochs measure per-operator costs and relay ratios on a scratch
//! pipeline fed with the epoch's batch — reproducing the paper's
//! profile-on-a-sample bias — without disturbing live operator state.

use std::ops::Range;
use std::sync::Arc;

use bytes::Bytes;
use streamkit::batch::{Batch, DictRegistry, DictVersions};
use streamkit::ops::{AggRole, GroupPartialEntry, Operator, StatePartial};
use streamkit::physical::build_pipeline;
use streamkit::record::Record;
use streamkit::schema::SchemaRef;
use streamkit::shard::{node_of_shard, shard_of_values, shards_of_node};

use crate::calibration;
use crate::deploy::{DeployError, DeploymentSpec, FaultIncident, TransportKind};
use crate::engine::block::EpochSource;
use crate::engine::netwire::{decode_shard_payload_with, encode_shard_payload_with};
use crate::engine::NetPayload;
use crate::live::remote::RemoteCluster;
use crate::planner::PlannedQuery;
use crate::proxy::{ControlProxy, QueryState};
use crate::rt;
use crate::runtime::JarvisRuntime;
use crate::stepwise::ProfileEstimates;

/// Messages from source workers to the SP dispatcher.
enum Msg {
    /// A batch drained in front of source-side operator `stage`.
    Drained {
        /// Originating data source.
        source: usize,
        /// Entry stage on the SP replica.
        stage: usize,
        /// The drained rows.
        batch: Batch,
    },
    /// Partial state from the source-side stateful operator at `stage`.
    State {
        /// Originating data source.
        source: usize,
        /// Stage to merge into.
        stage: usize,
        /// The state increment.
        delta: StatePartial,
    },
}

/// One data source: its local operator prefix, proxies, generator, runtime.
struct Worker {
    ops: Vec<Box<dyn Operator>>,
    proxies: Vec<ControlProxy>,
    generator: Box<dyn EpochSource>,
    runtime: JarvisRuntime,
    budget_us: f64,
    run_profile: bool,
    // Per-epoch measurements (reset each epoch).
    usage_us: f64,
    input_records: u64,
    input_bytes: u64,
    drained_records: u64,
    drained_bytes: u64,
    state_deltas: u64,
    profile: Option<ProfileEstimates>,
}

/// One virtual shard's pipelines: a keyed chain per source plus the shard's
/// accumulated results and counters. Shared with the remote executor
/// ([`crate::node`]), which hosts the same sets behind a TCP link.
pub(crate) struct ShardSet {
    /// `pipelines[source]` = the chain from the stateful boundary down.
    pub(crate) pipelines: Vec<Vec<Box<dyn Operator>>>,
    /// Rows that traversed a full chain on this shard.
    pub(crate) collected: Vec<Record>,
    /// Input rows routed into this shard.
    pub(crate) drained_records: u64,
    /// Counterfactual compute charged to this shard, µs.
    pub(crate) usage_us: f64,
}

impl ShardSet {
    /// Runs a batch through the pipeline suffix starting at `rel`, charging
    /// the shard's counterfactual budget from the calibrated cost model.
    pub(crate) fn process(&mut self, source: usize, rel: usize, batch: Batch) {
        let ops = &mut self.pipelines[source];
        if rel >= ops.len() {
            self.collected.extend(batch.to_records());
            return;
        }
        self.drained_records += batch.len() as u64;
        let mut batches = vec![batch];
        let n = ops.len();
        for op in ops.iter_mut().take(n).skip(rel) {
            let mut next = Vec::new();
            for b in batches.drain(..) {
                self.usage_us += op.cost_us() * b.len() as f64;
                op.process_batch(b, &mut next);
            }
            batches = next;
        }
        for b in batches {
            self.collected.extend(b.to_records());
        }
    }
}

/// One SP node of the pool: a contiguous ring slice of shard sets, owned by
/// exactly one worker thread per epoch.
struct NodeSet {
    /// The contiguous ring slice this node owns.
    owned: Range<usize>,
    /// One [`ShardSet`] per owned shard, indexed by `shard - owned.start`.
    sets: Vec<ShardSet>,
    /// Receiver-side mirrors of the dispatcher's persistent dictionaries,
    /// keyed by sender dict id. Lives on the node (not the per-epoch worker
    /// thread) because delta pages resume across epoch boundaries.
    registry: DictRegistry,
}

/// Where the SP node pool lives: in-process worker threads behind bounded
/// channels (the default), or remote `jarvis-node` executors behind real
/// TCP links. Both carry identical shard payloads, so results are
/// bit-identical across tiers.
enum SpTier {
    /// One [`NodeSet`] per node, executed by per-epoch node tasks.
    InProcess(Vec<NodeSet>),
    /// Admitted remote executors (TCP transport); `Arc` so the dispatcher
    /// task can share the cluster's routing table for an epoch (the clone
    /// drops when the task joins, restoring exclusive access).
    Remote(Arc<RemoteCluster>),
}

/// Final outcome of a live session.
#[derive(Debug)]
pub struct LiveOutcome {
    /// Merged result rows across all sources' replicas.
    pub results: Vec<Record>,
    /// Rows drained over the channels.
    pub drained_records: u64,
    /// Drained batch bytes.
    pub drained_bytes: f64,
    /// State deltas shipped.
    pub state_deltas: u64,
    /// Total rows generated.
    pub input_records: u64,
    /// Total input bytes generated.
    pub input_bytes: f64,
    /// Epochs executed.
    pub epochs: u64,
    /// Input rows routed into each SP shard (key-hash drain share).
    pub shard_drained_records: Vec<u64>,
    /// Counterfactual compute charged to each SP shard, µs.
    pub shard_usage_us: Vec<f64>,
    /// Wire bytes shipped across SP nodes toward each shard.
    pub shard_wire_bytes: Vec<u64>,
    /// Input rows routed into each SP node's owned shards.
    pub node_drained_records: Vec<u64>,
    /// Counterfactual compute charged to each SP node, µs.
    pub node_usage_us: Vec<f64>,
    /// Wire bytes each SP node (as ingress) shipped to other nodes.
    pub node_wire_bytes: Vec<u64>,
    /// Node losses and how each was resolved (TCP tier only; empty for
    /// in-process sessions, which cannot lose nodes).
    pub incidents: Vec<FaultIncident>,
    /// Checkpoint + replay bytes re-shipped for recovery.
    pub replay_bytes: u64,
    /// Heartbeat pings the coordinator sent while awaiting epoch acks.
    pub heartbeats_sent: u64,
    /// Fraction of epochs each shard's results cover (1.0 unless shards
    /// were degraded away by [`OnNodeLoss::Degrade`](crate::deploy::OnNodeLoss)).
    pub shard_completeness: Vec<f64>,
}

/// A threaded deployment advanced epoch by epoch.
pub struct LiveSession {
    planned: PlannedQuery,
    /// The plan's input schema; generated batches are relabeled to it so
    /// wire accounting matches the emulated backend (trace replay infers
    /// column types).
    input_schema: streamkit::schema::SchemaRef,
    workers: Vec<Worker>,
    /// Per-source stateless prefix of the SP replica (dispatcher side).
    sp_prefix: Vec<Vec<Box<dyn Operator>>>,
    /// The SP node pool; each node owns a contiguous slice of the ring.
    tier: SpTier,
    /// SP nodes dividing the ring.
    n_nodes: usize,
    /// Width of the fixed virtual-shard ring.
    n_shards: usize,
    /// Index of the stateful boundary in the full chain.
    boundary: usize,
    /// Group-key columns at the boundary edge.
    shard_keys: Vec<usize>,
    /// Input schema of every suffix stage (`suffix_schemas[rel]`), plus the
    /// final output schema — the decode side of the inter-node wire.
    suffix_schemas: Vec<SchemaRef>,
    /// Wire bytes shipped cross-node toward each shard (ring-wide).
    shard_wire_bytes: Vec<u64>,
    /// Wire bytes each node (as ingress) shipped to other nodes.
    node_wire_bytes: Vec<u64>,
    /// Sender-side dictionary versions per node link (in-process tier): the
    /// highest version of each persistent dictionary already shipped over
    /// that link, so cross-node frames carry delta pages only. Survives
    /// epochs — that is the point of persistent dictionaries.
    dict_sync: Vec<DictVersions>,
    costs: streamkit::physical::CostProfile,
    /// The cooperative task runtime every epoch's source / dispatcher /
    /// node tasks run on. Lives as long as the session, so worker threads
    /// spawn once, not per epoch.
    rt: rt::Runtime,
    /// Capacity of the per-epoch async channels.
    channel_capacity: usize,
    /// Scheduled resource changes, applied at epoch starts.
    events: Vec<crate::experiment::ResourceEvent>,
    epoch: u64,
    epoch_secs: f64,
    input_records: u64,
    input_bytes: u64,
    finished: bool,
}

/// Rows per channel message, to exercise backpressure.
const CHUNK: usize = 256;

impl LiveSession {
    /// Builds a session from a validated spec.
    pub fn new(spec: &DeploymentSpec) -> Result<LiveSession, DeployError> {
        let planned = spec.planned.clone();
        let costs = spec.workload.costs();
        let m = planned.source_ops;
        let n = spec.sources;
        let budget_us = spec.cpu_budget * calibration::EPOCH_SECS * 1e6;

        let mut workers = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut ops = build_pipeline(&planned.plan, &costs, AggRole::Partial)?;
            ops.truncate(m);
            let initial = spec
                .fixed_load_factors
                .clone()
                .unwrap_or_else(|| spec.strategy.initial_load_factors(&planned));
            let proxies = initial
                .iter()
                .map(|&p| ControlProxy::new(p, calibration::DRAINED_THRES, calibration::IDLE_THRES))
                .collect();
            let runtime = JarvisRuntime::with_policy(
                spec.strategy.runtime_config(),
                spec.strategy.build_policy(m),
            );
            workers.push(Worker {
                ops,
                proxies,
                generator: spec.workload.generator(i, n),
                runtime,
                budget_us,
                run_profile: false,
                usage_us: 0.0,
                input_records: 0,
                input_bytes: 0,
                drained_records: 0,
                drained_bytes: 0,
                state_deltas: 0,
                profile: None,
            });
        }
        // Split the replica chain at its keyed boundary: stateless prefix on
        // the dispatcher, keyed pipelines on the node pool. Keyless plans
        // keep the whole chain on the dispatcher with a single pass-through
        // shard on a single node.
        let (boundary, shard_keys) = match planned.plan.shard_boundary() {
            Some((g, keys)) => (g, keys),
            None => (planned.plan.len(), Vec::new()),
        };
        let (n_shards, n_nodes) = if shard_keys.is_empty() {
            (1, 1)
        } else {
            let shards = spec.sp_shards.max(1) as usize;
            (shards, (spec.sp_nodes.max(1) as usize).min(shards))
        };
        let sp_prefix = (0..n)
            .map(|_| {
                build_pipeline(&planned.plan, &costs, AggRole::Final).map(|mut ops| {
                    let _ = ops.split_off(boundary);
                    ops
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let edge_schemas = planned.plan.edge_schemas()?;
        let input_schema = edge_schemas[0].clone();
        let suffix_schemas: Vec<SchemaRef> = edge_schemas[boundary..].to_vec();
        let tier = match spec.transport {
            TransportKind::InProcess => {
                let nodes = (0..n_nodes)
                    .map(|id| {
                        let owned = shards_of_node(id, n_shards, n_nodes);
                        let sets = owned
                            .clone()
                            .map(|_| {
                                let pipelines = (0..n)
                                    .map(|_| {
                                        build_pipeline(&planned.plan, &costs, AggRole::Final)
                                            .map(|mut ops| ops.split_off(boundary))
                                    })
                                    .collect::<Result<Vec<_>, _>>()?;
                                Ok(ShardSet {
                                    pipelines,
                                    collected: Vec::new(),
                                    drained_records: 0,
                                    usage_us: 0.0,
                                })
                            })
                            .collect::<Result<Vec<_>, DeployError>>()?;
                        Ok(NodeSet {
                            owned,
                            sets,
                            registry: DictRegistry::default(),
                        })
                    })
                    .collect::<Result<Vec<_>, DeployError>>()?;
                SpTier::InProcess(nodes)
            }
            TransportKind::Tcp => {
                let final_schema = suffix_schemas
                    .last()
                    .expect("edge schemas cover the output edge")
                    .clone();
                SpTier::Remote(Arc::new(RemoteCluster::listen(
                    spec,
                    n_shards,
                    n_nodes,
                    final_schema,
                )?))
            }
        };
        Ok(LiveSession {
            planned,
            input_schema,
            workers,
            sp_prefix,
            tier,
            n_nodes,
            n_shards,
            boundary,
            shard_keys,
            suffix_schemas,
            shard_wire_bytes: vec![0; n_shards],
            node_wire_bytes: vec![0; n_nodes],
            dict_sync: vec![DictVersions::new(); n_nodes],
            costs,
            rt: rt::session_runtime(spec.rt_workers),
            channel_capacity: spec.channel_capacity as usize,
            events: spec.events.clone(),
            epoch: 0,
            epoch_secs: calibration::EPOCH_SECS,
            input_records: 0,
            input_bytes: 0,
            finished: false,
        })
    }

    /// Current load factors of source `i`.
    pub fn load_factors(&self, i: usize) -> Vec<f64> {
        self.workers[i]
            .proxies
            .iter()
            .map(ControlProxy::load_factor)
            .collect()
    }

    /// The runtime of source `i` (trace/episode access).
    pub fn runtime(&self, i: usize) -> &JarvisRuntime {
        &self.workers[i].runtime
    }

    /// The planned query.
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }

    /// Virtual shards on the SP tier's fixed hash ring.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// SP nodes in the pool.
    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    /// Total rows generated so far.
    pub fn input_records(&self) -> u64 {
        self.input_records
    }

    /// Total input bytes generated so far.
    pub fn input_bytes(&self) -> u64 {
        self.input_bytes
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Executor worker threads backing the session's task runtime (the
    /// effective `rt_workers` value, after host sizing or the
    /// `JARVIS_RT_SEED` deterministic override).
    pub fn rt_workers(&self) -> u32 {
        self.rt.workers() as u32
    }

    /// Effective capacity of the session's async channels.
    pub fn channel_capacity(&self) -> u32 {
        self.channel_capacity as u32
    }

    /// Runs one epoch: generates per-source batches, executes the
    /// partitioned pipelines as cooperative tasks (source tasks →
    /// dispatcher task → SP node tasks) on the session's runtime, then
    /// drives each source's runtime state machine with the epoch's
    /// observations.
    ///
    /// Each task takes its epoch state by value (the source's `Worker`,
    /// the node's `NodeSet`, the dispatcher's prefixes + link accounting)
    /// and returns it through its join handle, so the scheduler never
    /// shares mutable state between tasks.
    ///
    /// For TCP-backed sessions the epoch boundary blocks until every live
    /// remote node acks it, so node losses (and their recovery, per the
    /// configured [`OnNodeLoss`](crate::deploy::OnNodeLoss) policy) surface
    /// here as typed errors. In-process sessions cannot fail.
    pub fn run_epoch(&mut self) -> Result<(), DeployError> {
        assert!(!self.finished, "session already finished");
        let now_us = (self.epoch as f64 * self.epoch_secs * 1e6) as i64;
        let m = self.planned.source_ops;
        self.apply_events();

        // Generate deterministically on the coordinating thread, relabeling
        // to the plan's input schema (same accounting as the emulated
        // engine).
        let input_schema = &self.input_schema;
        let inputs: Vec<Batch> = self
            .workers
            .iter_mut()
            .map(|w| {
                let mut b = w.generator.generate_epoch_batch(now_us, 1.0);
                b.relabel(input_schema);
                b
            })
            .collect();
        // Profile epochs measure their scratch pipeline on the coordinator
        // before the tasks spawn: the scratch run borrows the plan and cost
        // model, which stay with the session.
        for (worker, input) in self.workers.iter_mut().zip(&inputs) {
            if worker.run_profile {
                worker.profile = Some(profile_on_scratch(
                    &self.planned.plan,
                    &self.costs,
                    m,
                    input,
                    worker.budget_us,
                ));
                worker.run_profile = false;
            }
        }

        let cap = self.channel_capacity;
        let handle = self.rt.handle();
        let n_nodes = self.n_nodes;

        // Wire the dispatcher to the node pool. In-process: per-node bounded
        // async channels emulating network links (cross-node payloads travel
        // as encoded wire frames, ingress-local ones as in-process values —
        // no link crossed, no codec paid), drained by one task per node.
        // Remote: every payload is framed onto the owner's real TCP link.
        let (sink, node_tasks) = match &mut self.tier {
            SpTier::InProcess(nodes) => {
                let mut node_txs = Vec::with_capacity(n_nodes);
                let mut tasks = Vec::with_capacity(n_nodes);
                for mut node in std::mem::take(nodes) {
                    let (ntx, mut nrx) = rt::chan::bounded::<NodeMsg>(cap);
                    node_txs.push(ntx);
                    let suffix_schemas = self.suffix_schemas.clone();
                    tasks.push(handle.spawn(async move {
                        // Batch drain: one wakeup per burst of frames.
                        let mut buf = Vec::new();
                        loop {
                            if nrx.recv_many(&mut buf).await == 0 {
                                break;
                            }
                            for msg in buf.drain(..) {
                                let payload = match msg {
                                    NodeMsg::Local(payload) => payload,
                                    NodeMsg::Wire(raw) => decode_shard_payload_with(
                                        raw,
                                        &suffix_schemas,
                                        &mut node.registry,
                                    )
                                    .expect("dispatcher sends valid payloads"),
                                };
                                match payload {
                                    NetPayload::ShardBatch {
                                        shard,
                                        source,
                                        rel,
                                        batch,
                                        ..
                                    } => {
                                        let set = &mut node.sets[shard as usize - node.owned.start];
                                        set.process(source as usize, rel as usize, batch);
                                    }
                                    NetPayload::ShardState {
                                        shard,
                                        source,
                                        rel,
                                        delta,
                                        ..
                                    } => {
                                        let set = &mut node.sets[shard as usize - node.owned.start];
                                        set.pipelines[source as usize][rel as usize]
                                            .merge_state(delta);
                                    }
                                    _ => unreachable!("node links carry shard payloads only"),
                                }
                            }
                        }
                        node
                    }));
                }
                (LinkSink::Channels(node_txs), tasks)
            }
            SpTier::Remote(cluster) => (LinkSink::Remote(Arc::clone(cluster)), Vec::new()),
        };

        // Source tasks: each owns its worker for the epoch and returns it.
        let (tx, mut rx) = rt::chan::bounded::<Msg>(cap);
        let workers = std::mem::take(&mut self.workers);
        let mut source_tasks = Vec::with_capacity(workers.len());
        for ((source, mut worker), input) in workers.into_iter().enumerate().zip(inputs) {
            let tx = tx.clone();
            source_tasks.push(handle.spawn(async move {
                worker.begin_epoch();
                worker.input_records = input.len() as u64;
                worker.input_bytes = input.wire_size() as u64;
                let mut msgs = Vec::new();
                worker.execute(source, m, input, &mut msgs);
                for msg in msgs {
                    if tx.send(msg).await.is_err() {
                        break;
                    }
                }
                worker
            }));
        }
        drop(tx);

        // The dispatcher task: per-source stateless prefixes + the ring
        // partitioner feeding the node pool (cross-node hops encoded). It
        // owns the prefixes, dictionary sync state, and wire counters for
        // the epoch, and hands them back through its join handle.
        let mut links = Links {
            sink,
            n_nodes,
            shard_keys: self.shard_keys.clone(),
            n_shards: self.n_shards,
            epoch: self.epoch,
            shard_wire: std::mem::take(&mut self.shard_wire_bytes),
            node_wire: std::mem::take(&mut self.node_wire_bytes),
            dict_sync: std::mem::take(&mut self.dict_sync),
        };
        let mut sp_prefix = std::mem::take(&mut self.sp_prefix);
        let boundary = self.boundary;
        let dispatcher = handle.spawn(async move {
            let mut buf = Vec::new();
            loop {
                if rx.recv_many(&mut buf).await == 0 {
                    break;
                }
                for msg in buf.drain(..) {
                    match msg {
                        Msg::Drained {
                            source,
                            stage,
                            batch,
                        } => {
                            if stage >= boundary {
                                links.dispatch_batch(source, stage - boundary, batch).await;
                                continue;
                            }
                            // Stateless prefix from the entry stage to the
                            // boundary, then partition.
                            let prefix = &mut sp_prefix[source];
                            let mut batches = vec![batch];
                            for op in prefix.iter_mut().skip(stage) {
                                let mut next = Vec::new();
                                for b in batches.drain(..) {
                                    op.process_batch(b, &mut next);
                                }
                                batches = next;
                            }
                            for b in batches {
                                links.dispatch_batch(source, 0, b).await;
                            }
                        }
                        Msg::State {
                            source,
                            stage,
                            delta,
                        } => {
                            if stage < boundary {
                                // A stateless prefix op cannot own mergeable
                                // state; the default merge hook ignores it.
                                sp_prefix[source][stage].merge_state(delta);
                                continue;
                            }
                            links.dispatch_state(source, stage - boundary, delta).await;
                        }
                    }
                }
            }
            // Dispatcher done: dropping the sink closes the node channels,
            // which stops the node tasks.
            let Links {
                sink,
                shard_wire,
                node_wire,
                dict_sync,
                ..
            } = links;
            drop(sink);
            (sp_prefix, shard_wire, node_wire, dict_sync)
        });

        // Join in completion order — sources, then the dispatcher, then the
        // node tasks — moving every task's epoch state back into the
        // session. (On a deterministic runtime, the first join opens the
        // scheduler gate.)
        self.workers = source_tasks.into_iter().map(rt::JoinHandle::join).collect();
        let (sp_prefix, shard_wire, node_wire, dict_sync) = dispatcher.join();
        self.sp_prefix = sp_prefix;
        self.shard_wire_bytes = shard_wire;
        self.node_wire_bytes = node_wire;
        self.dict_sync = dict_sync;
        if let SpTier::InProcess(nodes) = &mut self.tier {
            *nodes = node_tasks.into_iter().map(rt::JoinHandle::join).collect();
        }

        // Epoch boundary: block until every live remote executor acks it
        // (failure detection + recovery live behind this call), then run
        // counterfactual budget classification + the runtime state machine
        // per source.
        if let SpTier::Remote(cluster) = &mut self.tier {
            Arc::get_mut(cluster)
                .expect("epoch tasks joined; the dispatcher's clone is gone")
                .epoch_end(self.epoch)?;
        }
        for worker in &mut self.workers {
            self.input_records += worker.input_records;
            self.input_bytes += worker.input_bytes;
            worker.end_epoch();
        }
        self.epoch += 1;
        Ok(())
    }

    /// Applies resource events scheduled for the current epoch: budget
    /// changes update every worker's counterfactual budget; table growth
    /// swaps the static join tables on workers, dispatcher prefixes, and
    /// shard pipelines alike.
    fn apply_events(&mut self) {
        let epoch = self.epoch;
        let epoch_secs = self.epoch_secs;
        for ev in self.events.clone().iter().filter(|e| e.epoch == epoch) {
            if let Some(cpu) = ev.cpu_budget {
                for worker in &mut self.workers {
                    worker.budget_us = cpu * epoch_secs * 1e6;
                }
            }
            if let Some(size) = ev.table_size {
                let (src_table, dst_table) = telemetry::queries::t2t_tables(size, 40, &[1]);
                let swap = |ops: &mut [Box<dyn Operator>]| {
                    let mut join_seen = 0;
                    for op in ops.iter_mut() {
                        if let Some(join) = op
                            .as_any_mut()
                            .and_then(|a| a.downcast_mut::<streamkit::ops::JoinOp>())
                        {
                            let table = if join_seen == 0 {
                                &src_table
                            } else {
                                &dst_table
                            };
                            join.set_table(table.clone());
                            join_seen += 1;
                        }
                    }
                };
                for worker in &mut self.workers {
                    swap(&mut worker.ops);
                }
                for prefix in &mut self.sp_prefix {
                    swap(prefix);
                }
                // TCP deployments reject scheduled events at validation, so
                // table swaps never need to reach a remote executor.
                if let SpTier::InProcess(nodes) = &mut self.tier {
                    for node in nodes {
                        for set in &mut node.sets {
                            for pipeline in &mut set.pipelines {
                                swap(pipeline);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Runs `n` epochs, stopping at the first transport failure.
    pub fn run_epochs(&mut self, n: u64) -> Result<(), DeployError> {
        for _ in 0..n {
            self.run_epoch()?;
        }
        Ok(())
    }

    /// Finishes the session: ships residual partial state (routed by key
    /// ownership to the owning shard and node, like the live path), closes
    /// every window on every shard pipeline, and returns the merged results.
    ///
    /// Infallible convenience for in-process sessions; TCP-backed sessions
    /// should prefer [`LiveSession::try_finish`], whose transport errors
    /// this unwraps.
    pub fn finish(self) -> LiveOutcome {
        self.try_finish().expect("live session finish failed")
    }

    /// [`LiveSession::finish`] with transport failures surfaced as typed
    /// errors: a remote node dying mid-run, missing epoch acks, undecodable
    /// results, or the collection deadline expiring.
    pub fn try_finish(mut self) -> Result<LiveOutcome, DeployError> {
        self.finished = true;
        let mut drained_records = 0u64;
        let mut drained_bytes = 0u64;
        let mut state_deltas = 0u64;
        let boundary = self.boundary;
        let n_shards = self.n_shards;
        let n_nodes = self.n_nodes;
        // Residual per-shard state still held by source-side operators:
        // `(shard, source, rel, entries)` routed by key ownership.
        let mut residuals: Vec<(usize, usize, usize, Vec<GroupPartialEntry>)> = Vec::new();
        for (source, worker) in self.workers.iter_mut().enumerate() {
            drained_records += worker.drained_records;
            drained_bytes += worker.drained_bytes;
            state_deltas += worker.state_deltas;
            for (stage, op) in worker.ops.iter_mut().enumerate() {
                let Some(delta) = op.take_state_delta() else {
                    continue;
                };
                state_deltas += 1;
                if stage < boundary {
                    self.sp_prefix[source][stage].merge_state(delta);
                    continue;
                }
                let rel = stage - boundary;
                let StatePartial::Group(entries) = delta;
                let mut per_shard: Vec<Vec<GroupPartialEntry>> =
                    (0..n_shards).map(|_| Vec::new()).collect();
                for entry in entries {
                    per_shard[shard_of_values(&entry.key, n_shards)].push(entry);
                }
                for (s, part) in per_shard.into_iter().enumerate() {
                    if !part.is_empty() {
                        residuals.push((s, source, rel, part));
                    }
                }
            }
        }
        match &mut self.tier {
            SpTier::InProcess(nodes) => {
                for (s, source, rel, part) in residuals {
                    let node = &mut nodes[node_of_shard(s, n_shards, n_nodes)];
                    node.sets[s - node.owned.start].pipelines[source][rel]
                        .merge_state(StatePartial::Group(part));
                }
            }
            SpTier::Remote(cluster) => {
                for (s, source, rel, part) in residuals {
                    let payload = NetPayload::ShardState {
                        shard: s as u32,
                        epoch: self.epoch,
                        source: source as u32,
                        rel: rel as u32,
                        delta: StatePartial::Group(part),
                    };
                    // Routed by the cluster's (possibly recovered) shard
                    // map; degraded shards drop their residuals by policy.
                    if let Some(bytes) = cluster.route_payload(s, self.epoch, &payload) {
                        self.shard_wire_bytes[s] += bytes;
                    }
                }
            }
        }
        // Close all windows on every shard; emissions cascade through the
        // rest of that shard's chain. In-process sets drain locally; remote
        // executors drain on their side and stream the rows back.
        let mut results = Vec::new();
        let mut shard_drained_records = vec![0u64; n_shards];
        let mut shard_usage_us = vec![0f64; n_shards];
        let mut node_drained_records = Vec::with_capacity(n_nodes);
        let mut node_usage_us = Vec::with_capacity(n_nodes);
        let mut node_wire_bytes = self.node_wire_bytes;
        let mut incidents = Vec::new();
        let mut replay_bytes = 0u64;
        let mut heartbeats_sent = 0u64;
        let mut shard_completeness = vec![1.0f64; n_shards];
        match self.tier {
            SpTier::InProcess(mut nodes) => {
                for node in &mut nodes {
                    let mut drained = 0u64;
                    let mut usage = 0f64;
                    for (s, set) in node.owned.clone().zip(node.sets.iter_mut()) {
                        for pipeline in &mut set.pipelines {
                            set.collected
                                .extend(streamkit::physical::drain_windows_rows(
                                    pipeline,
                                    streamkit::time::TS_MAX,
                                ));
                        }
                        results.append(&mut set.collected);
                        shard_drained_records[s] = set.drained_records;
                        shard_usage_us[s] = set.usage_us;
                        drained += set.drained_records;
                        usage += set.usage_us;
                    }
                    node_drained_records.push(drained);
                    node_usage_us.push(usage);
                }
            }
            SpTier::Remote(cluster) => {
                let cluster = Arc::into_inner(cluster)
                    .expect("epoch tasks joined; the session holds the only cluster handle");
                let fin = cluster.finish()?;
                results = fin.results;
                for msg in &fin.stats {
                    let mut drained = 0u64;
                    let mut usage = 0f64;
                    for sc in &msg.shards {
                        shard_drained_records[sc.shard as usize] = sc.drained_records;
                        shard_usage_us[sc.shard as usize] = sc.usage_us;
                        drained += sc.drained_records;
                        usage += sc.usage_us;
                    }
                    node_drained_records.push(drained);
                    node_usage_us.push(usage);
                }
                // Actual socket traffic (TX + RX) per node link, replacing
                // the modelled per-ingress accounting.
                node_wire_bytes = fin.node_wire_bytes;
                incidents = fin.incidents;
                replay_bytes = fin.replay_bytes;
                heartbeats_sent = fin.heartbeats_sent;
                shard_completeness = fin.shard_completeness;
            }
        }
        Ok(LiveOutcome {
            results,
            drained_records,
            drained_bytes: drained_bytes as f64,
            state_deltas,
            input_records: self.input_records,
            input_bytes: self.input_bytes as f64,
            epochs: self.epoch,
            shard_drained_records,
            shard_usage_us,
            shard_wire_bytes: self.shard_wire_bytes,
            node_drained_records,
            node_usage_us,
            node_wire_bytes,
            incidents,
            replay_bytes,
            heartbeats_sent,
            shard_completeness,
        })
    }
}

/// One message on a node link: shard traffic whose owner is the sending
/// source's ingress node stays an in-process value (the PR-4 single-node
/// fast path — no link crossed, no codec paid), while genuine cross-node
/// hops travel as encoded wire frames.
enum NodeMsg {
    /// Ingress-local shard payload.
    Local(NetPayload),
    /// Cross-node shard payload in its inter-node wire form.
    Wire(Bytes),
}

/// Where the dispatcher's shard payloads land: in-process node channels or
/// the remote executors' TCP links.
enum LinkSink {
    /// Bounded async channels into the per-epoch node tasks.
    Channels(Vec<rt::chan::Sender<NodeMsg>>),
    /// The remote cluster (every payload is framed onto the shard owner's
    /// link through the cluster's recovery-aware routing table).
    Remote(Arc<RemoteCluster>),
}

/// The dispatcher task's view of the per-node links: ring geometry, the
/// sink, and the wire accounting charged when a payload's owning node
/// differs from its source's ingress node. Owned by the dispatcher task
/// for the epoch and handed back at its join.
struct Links {
    sink: LinkSink,
    n_nodes: usize,
    shard_keys: Vec<usize>,
    n_shards: usize,
    epoch: u64,
    /// Cross-node wire bytes per target shard.
    shard_wire: Vec<u64>,
    /// Cross-node wire bytes per sending (ingress) node.
    node_wire: Vec<u64>,
    /// Per-target-node dictionary versions (in-process tier): what each
    /// node's mirror already holds, so encoded frames ship delta pages only.
    dict_sync: Vec<DictVersions>,
}

impl Links {
    /// Sends one payload over the owning node's link. In-process:
    /// ingress-local traffic as an in-process value, cross-node traffic
    /// encoded delta-aware (persistent dictionary pages ship only what the
    /// target's mirror is missing) and charged its actual encoded size.
    /// Remote: everything is framed onto the owner's socket and charged its
    /// actual framed size; the enqueue onto the link's bounded queue may
    /// block this task's worker briefly, but the link's writer thread
    /// drains independently of the executor, so the pool cannot deadlock.
    async fn ship(&mut self, source: usize, shard: usize, payload: NetPayload) {
        let owner = node_of_shard(shard, self.n_shards, self.n_nodes);
        // The node terminating `source`'s uplink (same placement the
        // emulated cluster uses).
        let ingress = source % self.n_nodes;
        let epoch = self.epoch;
        let Links {
            sink,
            shard_wire,
            node_wire,
            dict_sync,
            ..
        } = self;
        match sink {
            LinkSink::Channels(node_txs) => {
                let msg = if owner == ingress {
                    NodeMsg::Local(payload)
                } else {
                    let wire = encode_shard_payload_with(&payload, &mut dict_sync[owner]);
                    let bytes = wire.len() as u64;
                    shard_wire[shard] += bytes;
                    node_wire[ingress] += bytes;
                    NodeMsg::Wire(wire)
                };
                node_txs[owner]
                    .send(msg)
                    .await
                    .expect("node task alive for the epoch");
            }
            LinkSink::Remote(cluster) => {
                if let Some(bytes) = cluster.route_payload(shard, epoch, &payload) {
                    shard_wire[shard] += bytes;
                    node_wire[ingress] += bytes;
                }
            }
        }
    }

    /// Partitions a boundary batch over the ring and ships each non-empty
    /// part to the node owning its shard. Batches entering past the
    /// boundary (stateless suffix) and keyless plans go to shard 0.
    async fn dispatch_batch(&mut self, source: usize, rel: usize, batch: Batch) {
        if batch.is_empty() {
            return;
        }
        if rel == 0 && self.n_shards > 1 && !self.shard_keys.is_empty() {
            for (s, part) in batch
                .shard_by_key(&self.shard_keys, self.n_shards)
                .into_iter()
                .enumerate()
            {
                if part.is_empty() {
                    continue;
                }
                self.ship(
                    source,
                    s,
                    NetPayload::ShardBatch {
                        shard: s as u32,
                        epoch: self.epoch,
                        source: source as u32,
                        rel: 0,
                        batch: part,
                    },
                )
                .await;
            }
        } else {
            self.ship(
                source,
                0,
                NetPayload::ShardBatch {
                    shard: 0,
                    epoch: self.epoch,
                    source: source as u32,
                    rel: rel as u32,
                    batch,
                },
            )
            .await;
        }
    }

    /// Splits a state delta's group entries by key ownership and ships each
    /// shard its share.
    async fn dispatch_state(&mut self, source: usize, rel: usize, delta: StatePartial) {
        let StatePartial::Group(entries) = delta;
        if self.n_shards == 1 {
            self.ship(
                source,
                0,
                NetPayload::ShardState {
                    shard: 0,
                    epoch: self.epoch,
                    source: source as u32,
                    rel: rel as u32,
                    delta: StatePartial::Group(entries),
                },
            )
            .await;
            return;
        }
        let mut per_shard: Vec<Vec<GroupPartialEntry>> =
            (0..self.n_shards).map(|_| Vec::new()).collect();
        for entry in entries {
            per_shard[shard_of_values(&entry.key, self.n_shards)].push(entry);
        }
        for (s, part) in per_shard.into_iter().enumerate() {
            if !part.is_empty() {
                self.ship(
                    source,
                    s,
                    NetPayload::ShardState {
                        shard: s as u32,
                        epoch: self.epoch,
                        source: source as u32,
                        rel: rel as u32,
                        delta: StatePartial::Group(part),
                    },
                )
                .await;
            }
        }
    }
}

impl Worker {
    fn begin_epoch(&mut self) {
        self.usage_us = 0.0;
        self.input_records = 0;
        self.input_bytes = 0;
        for p in &mut self.proxies {
            p.begin_epoch();
        }
    }

    /// Routes and executes one epoch's batch, collecting the drained
    /// chunks and state deltas into `out` (in the same order the threaded
    /// path sent them); the owning source task streams `out` to the
    /// dispatcher over the async channel afterwards, so the deep operator
    /// code stays synchronous.
    fn execute(&mut self, source: usize, m: usize, input: Batch, out: &mut Vec<Msg>) {
        let send_chunked = |stage: usize,
                            batch: Batch,
                            drained_records: &mut u64,
                            drained_bytes: &mut u64,
                            out: &mut Vec<Msg>| {
            if batch.is_empty() {
                return;
            }
            *drained_records += batch.len() as u64;
            *drained_bytes += batch.wire_size() as u64;
            for chunk in batch.chunks(CHUNK) {
                out.push(Msg::Drained {
                    source,
                    stage,
                    batch: chunk,
                });
            }
        };

        let mut batches = vec![input];
        for i in 0..m {
            let mut next: Vec<Batch> = Vec::new();
            for batch in batches.drain(..) {
                let (fwd, drained) = self.proxies[i].split_batch(batch);
                if let Some(drained) = drained {
                    send_chunked(
                        i,
                        drained,
                        &mut self.drained_records,
                        &mut self.drained_bytes,
                        out,
                    );
                }
                if let Some(fwd) = fwd {
                    // Counterfactual budget charge from the calibrated model,
                    // resampled per quantum so state-dependent costs track
                    // state growth within the epoch (as the emulated engine
                    // does).
                    for sub in fwd.chunks(calibration::EXEC_QUANTUM) {
                        self.usage_us += self.ops[i].cost_us() * sub.len() as f64;
                        self.ops[i].process_batch(sub, &mut next);
                    }
                }
            }
            batches = next;
        }
        // Rows that passed the whole local prefix continue at SP stage m.
        for batch in batches {
            send_chunked(
                m,
                batch,
                &mut self.drained_records,
                &mut self.drained_bytes,
                out,
            );
        }

        // Ship partial state every epoch (exactness does not depend on the
        // cadence; shipping eagerly keeps replica state fresh).
        for (stage, op) in self.ops.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                self.state_deltas += 1;
                out.push(Msg::State {
                    source,
                    stage,
                    delta,
                });
            }
        }
    }

    /// Classifies the finished epoch against the counterfactual budget and
    /// drives the runtime state machine.
    fn end_epoch(&mut self) {
        let all_local = self.proxies.iter().all(|p| p.load_factor() >= 1.0 - 1e-12);
        let state = if self.usage_us > self.budget_us {
            QueryState::Congested
        } else if self.usage_us < self.budget_us * (1.0 - calibration::IDLE_THRES) && !all_local {
            QueryState::Idle
        } else {
            QueryState::Stable
        };
        let current: Vec<f64> = self.proxies.iter().map(ControlProxy::load_factor).collect();
        let decision = self
            .runtime
            .on_epoch_end(state, self.profile.take(), &current);
        if let Some(p) = decision.set_load_factors {
            for (proxy, &v) in self.proxies.iter_mut().zip(&p) {
                proxy.set_load_factor(v);
            }
        }
        self.run_profile = decision.run_profile;
    }
}

/// Measures per-operator cost and relay ratios on a scratch pipeline fed
/// with this epoch's batch — the live equivalent of a Profile epoch. The
/// scratch state starts empty, so state-dependent costs are *under*estimated
/// exactly like the paper's one-epoch profiling (§VI-C).
pub(crate) fn profile_on_scratch(
    plan: &streamkit::logical::LogicalPlan,
    costs: &streamkit::physical::CostProfile,
    m: usize,
    input: &Batch,
    budget_us: f64,
) -> ProfileEstimates {
    let mut ops = build_pipeline(plan, costs, AggRole::Partial).expect("validated plan");
    ops.truncate(m);
    let mut cost_us = Vec::with_capacity(m);
    let mut relay_bytes = Vec::with_capacity(m);
    let mut relay_count = Vec::with_capacity(m);
    let mut batches: Vec<Batch> = vec![input.clone()];
    for op in &mut ops {
        let in_count: usize = batches.iter().map(Batch::len).sum();
        let in_bytes: usize = batches.iter().map(Batch::wire_size).sum();
        let mut out: Vec<Batch> = Vec::new();
        let mut used = 0.0;
        for batch in batches.drain(..) {
            for sub in batch.chunks(calibration::PROFILE_SUBBATCH_ROWS) {
                used += op.cost_us() * sub.len() as f64;
                op.process_batch(sub, &mut out);
            }
        }
        let mut out_count: usize = out.iter().map(Batch::len).sum();
        let mut out_bytes: usize = out.iter().map(Batch::wire_size).sum();
        if op.is_stateful() {
            if let Some(delta) = op.take_state_delta() {
                out_count += delta.entry_count();
                out_bytes += delta.wire_bytes();
            }
        }
        cost_us.push(if in_count > 0 {
            used / in_count as f64
        } else {
            op.cost_us()
        });
        relay_count.push(if in_count > 0 {
            out_count as f64 / in_count as f64
        } else {
            1.0
        });
        relay_bytes.push(if in_bytes > 0 {
            out_bytes as f64 / in_bytes as f64
        } else {
            1.0
        });
        batches = out;
    }
    ProfileEstimates {
        cost_us,
        relay_bytes,
        relay_count,
        records_per_epoch: input.len() as f64,
        budget_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::deploy::Deployment;
    use crate::experiment::ScenarioSpec;
    use crate::strategy::StrategyKind;

    fn spec(strategy: StrategyKind, cpu: f64) -> DeploymentSpec {
        Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(strategy)
            .cpu_budget(cpu)
            .sources(2)
            .spec()
            .unwrap()
    }

    #[test]
    fn resource_events_change_the_live_budget() {
        // A Fig.8-style budget drop must reach the workers' counterfactual
        // budgets and re-trigger adaptation on the live backend.
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
            .strategy(StrategyKind::Jarvis)
            .cpu_budget(1.0)
            .events(&[crate::experiment::ResourceEvent {
                epoch: 12,
                cpu_budget: Some(0.05),
                table_size: None,
            }])
            .spec()
            .unwrap();
        let mut s = LiveSession::new(&spec).unwrap();
        s.run_epochs(12).unwrap();
        let before = s.load_factors(0);
        s.run_epochs(14).unwrap();
        let after = s.load_factors(0);
        assert!(
            after.iter().sum::<f64>() < before.iter().sum::<f64>(),
            "a 20x budget cut must pull load factors down: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn adaptive_session_pulls_work_local() {
        let mut s = LiveSession::new(&spec(StrategyKind::Jarvis, 1.0)).unwrap();
        s.run_epochs(12).unwrap();
        let p = s.load_factors(0);
        assert!(
            p.iter().any(|&v| v > 0.0),
            "the runtime must install a plan over live epochs: {p:?}"
        );
        assert!(!s.runtime(0).trace().is_empty());
    }

    #[test]
    fn fixed_strategy_sessions_never_move_factors() {
        let mut s = LiveSession::new(&spec(StrategyKind::AllSrc, 0.2)).unwrap();
        s.run_epochs(6).unwrap();
        assert_eq!(s.load_factors(0), vec![1.0, 1.0, 1.0]);
        let out = s.finish();
        assert_eq!(out.drained_records, 0, "All-Src drains nothing");
        assert!(out.state_deltas > 0, "state still ships");
        assert!(!out.results.is_empty());
    }

    #[test]
    fn adaptive_and_all_sp_results_match() {
        // Exactness across load-factor plans, now under runtime adaptation.
        let mut adaptive = LiveSession::new(&spec(StrategyKind::Jarvis, 0.6)).unwrap();
        adaptive.run_epochs(10).unwrap();
        let a = adaptive.finish();
        let mut all_sp = LiveSession::new(&spec(StrategyKind::AllSp, 0.6)).unwrap();
        all_sp.run_epochs(10).unwrap();
        let b = all_sp.finish();
        let digest = |rows: &[Record]| crate::deploy::ExactnessDigest::of_rows(rows);
        assert_eq!(digest(&a.results), digest(&b.results));
        assert!(a.drained_records < b.drained_records);
    }

    #[test]
    fn shard_pool_splits_the_drain_share() {
        // With 4 shards and everything drained to the SP, the key-hash
        // partitioner must spread rows across more than one shard worker
        // and account the split.
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(StrategyKind::AllSp)
            .cpu_budget(0.6)
            .sources(2)
            .sp_shards(4)
            .spec()
            .unwrap();
        let mut s = LiveSession::new(&spec).unwrap();
        assert_eq!(s.n_shards(), 4);
        assert_eq!(s.n_nodes(), 1);
        s.run_epochs(4).unwrap();
        let out = s.finish();
        assert_eq!(out.shard_drained_records.len(), 4);
        let busy = out.shard_drained_records.iter().filter(|&&r| r > 0).count();
        assert!(
            busy > 1,
            "keys must spread: {:?}",
            out.shard_drained_records
        );
        assert!(
            out.shard_usage_us.iter().sum::<f64>() > 0.0,
            "per-shard budgets must be charged"
        );
        assert_eq!(
            out.shard_wire_bytes.iter().sum::<u64>(),
            0,
            "a single-node pool never crosses a link"
        );
        assert!(!out.results.is_empty());
    }

    #[test]
    fn node_pool_splits_the_ring_and_charges_the_links() {
        // 4 shards over 2 nodes with 2 sources: source 0 ingresses at node
        // 0, source 1 at node 1, and every sub-batch owned by the other
        // node's slice must cross a link as encoded bytes.
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(StrategyKind::AllSp)
            .cpu_budget(0.6)
            .sources(2)
            .sp_shards(4)
            .sp_nodes(2)
            .spec()
            .unwrap();
        let mut s = LiveSession::new(&spec).unwrap();
        assert_eq!(s.n_shards(), 4);
        assert_eq!(s.n_nodes(), 2);
        s.run_epochs(4).unwrap();
        let out = s.finish();
        assert_eq!(out.node_drained_records.len(), 2);
        assert_eq!(
            out.node_drained_records.iter().sum::<u64>(),
            out.shard_drained_records.iter().sum::<u64>(),
            "node drains roll up the shard drains"
        );
        assert!(
            out.shard_wire_bytes.iter().sum::<u64>() > 0,
            "remote-shard traffic must charge the links"
        );
        assert!(
            out.node_wire_bytes.iter().all(|&b| b > 0),
            "both ingress nodes ship toward the other's slice: {:?}",
            out.node_wire_bytes
        );
        assert!(!out.results.is_empty());
    }
}
