//! An epoch-driven live session: threaded, batch-first execution under
//! runtime control.
//!
//! [`run_partitioned`](crate::live::run_partitioned) runs one batch under
//! *fixed* load factors. [`LiveSession`] lifts that limitation: it keeps one
//! worker thread per data source and a stream-processor thread alive across
//! epochs, and at every epoch boundary drives each source's
//! [`JarvisRuntime`] state machine (Startup → Probe → Profile → Adapt)
//! exactly like the emulated engine does — so adaptive strategies converge
//! over a *really concurrent* execution while partitioned results stay
//! exact. Sources generate columnar [`Batch`]es and the channels carry
//! batches end-to-end.
//!
//! Worker threads execute operators for real (state, joins, sketches); the
//! CPU *budget* is counterfactual, charged from the calibrated cost model:
//! an epoch whose modelled usage oversubscribes the budget classifies as
//! congested, one that undersubscribes with load factors left to raise
//! classifies as idle (the same rules as the §VI-C simulator). Profile
//! epochs measure per-operator costs and relay ratios on a scratch pipeline
//! fed with the epoch's batch — reproducing the paper's
//! profile-on-a-sample bias — without disturbing live operator state.

use crossbeam::channel::{bounded, Receiver, Sender};
use streamkit::batch::Batch;
use streamkit::ops::{AggRole, Operator, StatePartial};
use streamkit::physical::build_pipeline;
use streamkit::record::Record;

use crate::calibration;
use crate::deploy::{DeployError, DeploymentSpec};
use crate::engine::block::EpochSource;
use crate::planner::PlannedQuery;
use crate::proxy::{ControlProxy, QueryState};
use crate::runtime::JarvisRuntime;
use crate::stepwise::ProfileEstimates;

/// Messages from source workers to the SP worker.
enum Msg {
    /// A batch drained in front of source-side operator `stage`.
    Drained {
        /// Originating data source.
        source: usize,
        /// Entry stage on the SP replica.
        stage: usize,
        /// The drained rows.
        batch: Batch,
    },
    /// Partial state from the source-side stateful operator at `stage`.
    State {
        /// Originating data source.
        source: usize,
        /// Stage to merge into.
        stage: usize,
        /// The state increment.
        delta: StatePartial,
    },
}

/// One data source: its local operator prefix, proxies, generator, runtime.
struct Worker {
    ops: Vec<Box<dyn Operator>>,
    proxies: Vec<ControlProxy>,
    generator: Box<dyn EpochSource>,
    runtime: JarvisRuntime,
    budget_us: f64,
    run_profile: bool,
    // Per-epoch measurements (reset each epoch).
    usage_us: f64,
    input_records: u64,
    input_bytes: u64,
    drained_records: u64,
    drained_bytes: u64,
    state_deltas: u64,
    profile: Option<ProfileEstimates>,
}

/// Final outcome of a live session.
#[derive(Debug)]
pub struct LiveOutcome {
    /// Merged result rows across all sources' replicas.
    pub results: Vec<Record>,
    /// Rows drained over the channels.
    pub drained_records: u64,
    /// Drained batch bytes.
    pub drained_bytes: f64,
    /// State deltas shipped.
    pub state_deltas: u64,
    /// Total rows generated.
    pub input_records: u64,
    /// Total input bytes generated.
    pub input_bytes: f64,
    /// Epochs executed.
    pub epochs: u64,
}

/// A threaded deployment advanced epoch by epoch.
pub struct LiveSession {
    planned: PlannedQuery,
    /// The plan's input schema; generated batches are relabeled to it so
    /// wire accounting matches the emulated backend (trace replay infers
    /// column types).
    input_schema: streamkit::schema::SchemaRef,
    workers: Vec<Worker>,
    /// One Final-role replica pipeline per source (mirrors [`crate::engine::sp::SpEngine`]).
    replicas: Vec<Vec<Box<dyn Operator>>>,
    /// Rows that traversed a full replica chain during epochs.
    collected: Vec<Record>,
    costs: streamkit::physical::CostProfile,
    /// Scheduled resource changes, applied at epoch starts.
    events: Vec<crate::experiment::ResourceEvent>,
    epoch: u64,
    epoch_secs: f64,
    input_records: u64,
    input_bytes: u64,
    finished: bool,
}

/// Rows per channel message, to exercise backpressure.
const CHUNK: usize = 256;

impl LiveSession {
    /// Builds a session from a validated spec.
    pub fn new(spec: &DeploymentSpec) -> Result<LiveSession, DeployError> {
        let planned = spec.planned.clone();
        let costs = spec.workload.costs();
        let m = planned.source_ops;
        let n = spec.sources;
        let budget_us = spec.cpu_budget * calibration::EPOCH_SECS * 1e6;

        let mut workers = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut ops = build_pipeline(&planned.plan, &costs, AggRole::Partial)?;
            ops.truncate(m);
            let initial = spec
                .fixed_load_factors
                .clone()
                .unwrap_or_else(|| spec.strategy.initial_load_factors(&planned));
            let proxies = initial
                .iter()
                .map(|&p| ControlProxy::new(p, calibration::DRAINED_THRES, calibration::IDLE_THRES))
                .collect();
            let runtime = JarvisRuntime::with_policy(
                spec.strategy.runtime_config(),
                spec.strategy.build_policy(m),
            );
            workers.push(Worker {
                ops,
                proxies,
                generator: spec.workload.generator(i, n),
                runtime,
                budget_us,
                run_profile: false,
                usage_us: 0.0,
                input_records: 0,
                input_bytes: 0,
                drained_records: 0,
                drained_bytes: 0,
                state_deltas: 0,
                profile: None,
            });
        }
        let replicas = (0..n)
            .map(|_| build_pipeline(&planned.plan, &costs, AggRole::Final))
            .collect::<Result<Vec<_>, _>>()?;
        let input_schema = planned.plan.edge_schemas()?[0].clone();
        Ok(LiveSession {
            planned,
            input_schema,
            workers,
            replicas,
            collected: Vec::new(),
            costs,
            events: spec.events.clone(),
            epoch: 0,
            epoch_secs: calibration::EPOCH_SECS,
            input_records: 0,
            input_bytes: 0,
            finished: false,
        })
    }

    /// Current load factors of source `i`.
    pub fn load_factors(&self, i: usize) -> Vec<f64> {
        self.workers[i]
            .proxies
            .iter()
            .map(ControlProxy::load_factor)
            .collect()
    }

    /// The runtime of source `i` (trace/episode access).
    pub fn runtime(&self, i: usize) -> &JarvisRuntime {
        &self.workers[i].runtime
    }

    /// The planned query.
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }

    /// Total rows generated so far.
    pub fn input_records(&self) -> u64 {
        self.input_records
    }

    /// Total input bytes generated so far.
    pub fn input_bytes(&self) -> u64 {
        self.input_bytes
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs one epoch: generates per-source batches, executes the
    /// partitioned pipelines on real threads, then drives each source's
    /// runtime state machine with the epoch's observations.
    pub fn run_epoch(&mut self) {
        assert!(!self.finished, "session already finished");
        let now_us = (self.epoch as f64 * self.epoch_secs * 1e6) as i64;
        let m = self.planned.source_ops;
        self.apply_events();

        // Generate deterministically on the coordinating thread, relabeling
        // to the plan's input schema (same accounting as the emulated
        // engine).
        let input_schema = &self.input_schema;
        let inputs: Vec<Batch> = self
            .workers
            .iter_mut()
            .map(|w| {
                let mut b = w.generator.generate_epoch_batch(now_us, 1.0);
                b.relabel(input_schema);
                b
            })
            .collect();

        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = bounded(256);
        let costs = &self.costs;
        let plan = &self.planned.plan;
        let replicas = &mut self.replicas;
        let collected = &mut self.collected;

        std::thread::scope(|scope| {
            for ((source, worker), input) in self.workers.iter_mut().enumerate().zip(inputs) {
                let tx = tx.clone();
                scope.spawn(move || {
                    worker.begin_epoch();
                    worker.input_records = input.len() as u64;
                    worker.input_bytes = input.wire_size() as u64;
                    if worker.run_profile {
                        worker.profile =
                            Some(profile_on_scratch(plan, costs, m, &input, worker.budget_us));
                        worker.run_profile = false;
                    }
                    worker.execute(source, m, input, &tx);
                });
            }
            drop(tx);

            // The SP worker: replica pipelines + state merging.
            scope.spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Drained {
                            source,
                            stage,
                            batch,
                        } => {
                            let stages = &mut replicas[source];
                            let n = stages.len();
                            let mut batches = vec![batch];
                            for op in stages.iter_mut().take(n).skip(stage) {
                                let mut next = Vec::new();
                                for b in batches.drain(..) {
                                    op.process_batch(b, &mut next);
                                }
                                batches = next;
                            }
                            for b in batches {
                                collected.extend(b.to_records());
                            }
                        }
                        Msg::State {
                            source,
                            stage,
                            delta,
                        } => {
                            replicas[source][stage].merge_state(delta);
                        }
                    }
                }
            });
        });

        // Epoch boundary: counterfactual budget classification + runtime.
        for worker in &mut self.workers {
            self.input_records += worker.input_records;
            self.input_bytes += worker.input_bytes;
            worker.end_epoch();
        }
        self.epoch += 1;
    }

    /// Applies resource events scheduled for the current epoch: budget
    /// changes update every worker's counterfactual budget; table growth
    /// swaps the static join tables on workers and replicas alike.
    fn apply_events(&mut self) {
        let epoch = self.epoch;
        let epoch_secs = self.epoch_secs;
        for ev in self.events.clone().iter().filter(|e| e.epoch == epoch) {
            if let Some(cpu) = ev.cpu_budget {
                for worker in &mut self.workers {
                    worker.budget_us = cpu * epoch_secs * 1e6;
                }
            }
            if let Some(size) = ev.table_size {
                let (src_table, dst_table) = telemetry::queries::t2t_tables(size, 40, &[1]);
                let swap = |ops: &mut [Box<dyn Operator>]| {
                    let mut join_seen = 0;
                    for op in ops.iter_mut() {
                        if let Some(join) = op
                            .as_any_mut()
                            .and_then(|a| a.downcast_mut::<streamkit::ops::JoinOp>())
                        {
                            let table = if join_seen == 0 {
                                &src_table
                            } else {
                                &dst_table
                            };
                            join.set_table(table.clone());
                            join_seen += 1;
                        }
                    }
                };
                for worker in &mut self.workers {
                    swap(&mut worker.ops);
                }
                for replica in &mut self.replicas {
                    swap(replica);
                }
            }
        }
    }

    /// Runs `n` epochs.
    pub fn run_epochs(&mut self, n: u64) {
        for _ in 0..n {
            self.run_epoch();
        }
    }

    /// Finishes the session: ships residual partial state, closes every
    /// window on the replicas, and returns the merged results.
    pub fn finish(mut self) -> LiveOutcome {
        self.finished = true;
        let mut drained_records = 0u64;
        let mut drained_bytes = 0u64;
        let mut state_deltas = 0u64;
        for (source, worker) in self.workers.iter_mut().enumerate() {
            drained_records += worker.drained_records;
            drained_bytes += worker.drained_bytes;
            state_deltas += worker.state_deltas;
            for (stage, op) in worker.ops.iter_mut().enumerate() {
                if let Some(delta) = op.take_state_delta() {
                    state_deltas += 1;
                    self.replicas[source][stage].merge_state(delta);
                }
            }
        }
        // Close all windows; emissions cascade through the rest of the chain.
        for stages in &mut self.replicas {
            self.collected
                .extend(streamkit::physical::drain_windows_rows(
                    stages,
                    streamkit::time::TS_MAX,
                ));
        }
        LiveOutcome {
            results: std::mem::take(&mut self.collected),
            drained_records,
            drained_bytes: drained_bytes as f64,
            state_deltas,
            input_records: self.input_records,
            input_bytes: self.input_bytes as f64,
            epochs: self.epoch,
        }
    }
}

impl Worker {
    fn begin_epoch(&mut self) {
        self.usage_us = 0.0;
        self.input_records = 0;
        self.input_bytes = 0;
        for p in &mut self.proxies {
            p.begin_epoch();
        }
    }

    /// Routes and executes one epoch's batch, draining to the SP channel.
    fn execute(&mut self, source: usize, m: usize, input: Batch, tx: &Sender<Msg>) {
        let send_chunked =
            |stage: usize, batch: Batch, drained_records: &mut u64, drained_bytes: &mut u64| {
                if batch.is_empty() {
                    return;
                }
                *drained_records += batch.len() as u64;
                *drained_bytes += batch.wire_size() as u64;
                for chunk in batch.chunks(CHUNK) {
                    tx.send(Msg::Drained {
                        source,
                        stage,
                        batch: chunk,
                    })
                    .expect("SP worker alive");
                }
            };

        let mut batches = vec![input];
        for i in 0..m {
            let mut next: Vec<Batch> = Vec::new();
            for batch in batches.drain(..) {
                let (fwd, drained) = self.proxies[i].split_batch(batch);
                if let Some(drained) = drained {
                    send_chunked(
                        i,
                        drained,
                        &mut self.drained_records,
                        &mut self.drained_bytes,
                    );
                }
                if let Some(fwd) = fwd {
                    // Counterfactual budget charge from the calibrated model,
                    // resampled per quantum so state-dependent costs track
                    // state growth within the epoch (as the emulated engine
                    // does).
                    for sub in fwd.chunks(calibration::EXEC_QUANTUM) {
                        self.usage_us += self.ops[i].cost_us() * sub.len() as f64;
                        self.ops[i].process_batch(sub, &mut next);
                    }
                }
            }
            batches = next;
        }
        // Rows that passed the whole local prefix continue at SP stage m.
        for batch in batches {
            send_chunked(m, batch, &mut self.drained_records, &mut self.drained_bytes);
        }

        // Ship partial state every epoch (exactness does not depend on the
        // cadence; shipping eagerly keeps replica state fresh).
        for (stage, op) in self.ops.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                self.state_deltas += 1;
                tx.send(Msg::State {
                    source,
                    stage,
                    delta,
                })
                .expect("SP worker alive");
            }
        }
    }

    /// Classifies the finished epoch against the counterfactual budget and
    /// drives the runtime state machine.
    fn end_epoch(&mut self) {
        let all_local = self.proxies.iter().all(|p| p.load_factor() >= 1.0 - 1e-12);
        let state = if self.usage_us > self.budget_us {
            QueryState::Congested
        } else if self.usage_us < self.budget_us * (1.0 - calibration::IDLE_THRES) && !all_local {
            QueryState::Idle
        } else {
            QueryState::Stable
        };
        let current: Vec<f64> = self.proxies.iter().map(ControlProxy::load_factor).collect();
        let decision = self
            .runtime
            .on_epoch_end(state, self.profile.take(), &current);
        if let Some(p) = decision.set_load_factors {
            for (proxy, &v) in self.proxies.iter_mut().zip(&p) {
                proxy.set_load_factor(v);
            }
        }
        self.run_profile = decision.run_profile;
    }
}

/// Measures per-operator cost and relay ratios on a scratch pipeline fed
/// with this epoch's batch — the live equivalent of a Profile epoch. The
/// scratch state starts empty, so state-dependent costs are *under*estimated
/// exactly like the paper's one-epoch profiling (§VI-C).
pub(crate) fn profile_on_scratch(
    plan: &streamkit::logical::LogicalPlan,
    costs: &streamkit::physical::CostProfile,
    m: usize,
    input: &Batch,
    budget_us: f64,
) -> ProfileEstimates {
    let mut ops = build_pipeline(plan, costs, AggRole::Partial).expect("validated plan");
    ops.truncate(m);
    let mut cost_us = Vec::with_capacity(m);
    let mut relay_bytes = Vec::with_capacity(m);
    let mut relay_count = Vec::with_capacity(m);
    let mut batches: Vec<Batch> = vec![input.clone()];
    for op in ops.iter_mut() {
        let in_count: usize = batches.iter().map(Batch::len).sum();
        let in_bytes: usize = batches.iter().map(Batch::wire_size).sum();
        let mut out: Vec<Batch> = Vec::new();
        let mut used = 0.0;
        for batch in batches.drain(..) {
            for sub in batch.chunks(calibration::PROFILE_SUBBATCH_ROWS) {
                used += op.cost_us() * sub.len() as f64;
                op.process_batch(sub, &mut out);
            }
        }
        let mut out_count: usize = out.iter().map(Batch::len).sum();
        let mut out_bytes: usize = out.iter().map(Batch::wire_size).sum();
        if op.is_stateful() {
            if let Some(delta) = op.take_state_delta() {
                out_count += delta.entry_count();
                out_bytes += delta.wire_bytes();
            }
        }
        cost_us.push(if in_count > 0 {
            used / in_count as f64
        } else {
            op.cost_us()
        });
        relay_count.push(if in_count > 0 {
            out_count as f64 / in_count as f64
        } else {
            1.0
        });
        relay_bytes.push(if in_bytes > 0 {
            out_bytes as f64 / in_bytes as f64
        } else {
            1.0
        });
        batches = out;
    }
    ProfileEstimates {
        cost_us,
        relay_bytes,
        relay_count,
        records_per_epoch: input.len() as f64,
        budget_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::deploy::Deployment;
    use crate::experiment::ScenarioSpec;
    use crate::strategy::StrategyKind;

    fn spec(strategy: StrategyKind, cpu: f64) -> DeploymentSpec {
        Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(strategy)
            .cpu_budget(cpu)
            .sources(2)
            .spec()
            .unwrap()
    }

    #[test]
    fn resource_events_change_the_live_budget() {
        // A Fig.8-style budget drop must reach the workers' counterfactual
        // budgets and re-trigger adaptation on the live backend.
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
            .strategy(StrategyKind::Jarvis)
            .cpu_budget(1.0)
            .events(&[crate::experiment::ResourceEvent {
                epoch: 12,
                cpu_budget: Some(0.05),
                table_size: None,
            }])
            .spec()
            .unwrap();
        let mut s = LiveSession::new(&spec).unwrap();
        s.run_epochs(12);
        let before = s.load_factors(0);
        s.run_epochs(14);
        let after = s.load_factors(0);
        assert!(
            after.iter().sum::<f64>() < before.iter().sum::<f64>(),
            "a 20x budget cut must pull load factors down: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn adaptive_session_pulls_work_local() {
        let mut s = LiveSession::new(&spec(StrategyKind::Jarvis, 1.0)).unwrap();
        s.run_epochs(12);
        let p = s.load_factors(0);
        assert!(
            p.iter().any(|&v| v > 0.0),
            "the runtime must install a plan over live epochs: {p:?}"
        );
        assert!(!s.runtime(0).trace().is_empty());
    }

    #[test]
    fn fixed_strategy_sessions_never_move_factors() {
        let mut s = LiveSession::new(&spec(StrategyKind::AllSrc, 0.2)).unwrap();
        s.run_epochs(6);
        assert_eq!(s.load_factors(0), vec![1.0, 1.0, 1.0]);
        let out = s.finish();
        assert_eq!(out.drained_records, 0, "All-Src drains nothing");
        assert!(out.state_deltas > 0, "state still ships");
        assert!(!out.results.is_empty());
    }

    #[test]
    fn adaptive_and_all_sp_results_match() {
        // Exactness across load-factor plans, now under runtime adaptation.
        let mut adaptive = LiveSession::new(&spec(StrategyKind::Jarvis, 0.6)).unwrap();
        adaptive.run_epochs(10);
        let a = adaptive.finish();
        let mut all_sp = LiveSession::new(&spec(StrategyKind::AllSp, 0.6)).unwrap();
        all_sp.run_epochs(10);
        let b = all_sp.finish();
        let digest = |rows: &[Record]| crate::deploy::ExactnessDigest::of_rows(rows);
        assert_eq!(digest(&a.results), digest(&b.results));
        assert!(a.drained_records < b.drained_records);
    }
}
