//! An epoch-driven live session: threaded, batch-first, key-sharded
//! execution under runtime control.
//!
//! [`run_partitioned`](crate::live::run_partitioned) runs one batch under
//! *fixed* load factors. [`LiveSession`] lifts that limitation: it keeps one
//! worker thread per data source alive across epochs, and at every epoch
//! boundary drives each source's [`JarvisRuntime`] state machine (Startup →
//! Probe → Profile → Adapt) exactly like the emulated engine does — so
//! adaptive strategies converge over a *really concurrent* execution while
//! partitioned results stay exact. Sources generate columnar [`Batch`]es
//! and the channels carry batches end-to-end.
//!
//! The SP side is a **router + shard-worker pool** instead of a single SP
//! thread: the router runs each replica's stateless prefix and partitions
//! every boundary batch by the plan's group keys
//! ([`Batch::shard_by_key`]); `sp_shards` worker threads each own one
//! keyed pipeline per source (the stateful operator plus the rest of the
//! chain) behind a bounded crossbeam channel. Shipped [`StatePartial`]
//! entries are routed to the shard owning their key
//! ([`shard_of_values`]), so a group's whole lifetime happens on one shard
//! and merged results stay exact at any shard count
//! (`tests/shard_parity.rs`).
//!
//! Worker threads execute operators for real (state, joins, sketches); the
//! CPU *budget* is counterfactual, charged from the calibrated cost model:
//! an epoch whose modelled usage oversubscribes the budget classifies as
//! congested, one that undersubscribes with load factors left to raise
//! classifies as idle (the same rules as the §VI-C simulator). The same
//! counterfactual charging is recorded per shard on the SP side and
//! reported via [`LiveOutcome::shard_usage_us`] — classification itself
//! stays source-side today; feeding the slowest shard's budget back into
//! adaptation is a ROADMAP follow-on.
//! Profile epochs measure per-operator costs and relay ratios on a scratch
//! pipeline fed with the epoch's batch — reproducing the paper's
//! profile-on-a-sample bias — without disturbing live operator state.

use crossbeam::channel::{bounded, Receiver, Sender};
use streamkit::batch::Batch;
use streamkit::ops::{AggRole, GroupPartialEntry, Operator, StatePartial};
use streamkit::physical::build_pipeline;
use streamkit::record::Record;
use streamkit::shard::shard_of_values;

use crate::calibration;
use crate::deploy::{DeployError, DeploymentSpec};
use crate::engine::block::EpochSource;
use crate::planner::PlannedQuery;
use crate::proxy::{ControlProxy, QueryState};
use crate::runtime::JarvisRuntime;
use crate::stepwise::ProfileEstimates;

/// Messages from source workers to the SP router.
enum Msg {
    /// A batch drained in front of source-side operator `stage`.
    Drained {
        /// Originating data source.
        source: usize,
        /// Entry stage on the SP replica.
        stage: usize,
        /// The drained rows.
        batch: Batch,
    },
    /// Partial state from the source-side stateful operator at `stage`.
    State {
        /// Originating data source.
        source: usize,
        /// Stage to merge into.
        stage: usize,
        /// The state increment.
        delta: StatePartial,
    },
}

/// Messages from the router to one shard worker. Stage indices are relative
/// to the keyed boundary (0 = the stateful operator).
enum ShardMsg {
    /// A keyed sub-batch entering the shard pipeline at `rel`.
    Batch {
        source: usize,
        rel: usize,
        batch: Batch,
    },
    /// State entries owned by this shard, merging at `rel`.
    State {
        source: usize,
        rel: usize,
        entries: Vec<GroupPartialEntry>,
    },
}

/// One data source: its local operator prefix, proxies, generator, runtime.
struct Worker {
    ops: Vec<Box<dyn Operator>>,
    proxies: Vec<ControlProxy>,
    generator: Box<dyn EpochSource>,
    runtime: JarvisRuntime,
    budget_us: f64,
    run_profile: bool,
    // Per-epoch measurements (reset each epoch).
    usage_us: f64,
    input_records: u64,
    input_bytes: u64,
    drained_records: u64,
    drained_bytes: u64,
    state_deltas: u64,
    profile: Option<ProfileEstimates>,
}

/// One shard of the SP pool: a keyed pipeline per source plus the shard's
/// accumulated results and counters. Owned by exactly one worker thread per
/// epoch.
struct ShardSet {
    /// `pipelines[source]` = the chain from the stateful boundary down.
    pipelines: Vec<Vec<Box<dyn Operator>>>,
    /// Rows that traversed a full chain on this shard.
    collected: Vec<Record>,
    /// Input rows routed into this shard.
    drained_records: u64,
    /// Counterfactual compute charged to this shard, µs.
    usage_us: f64,
}

impl ShardSet {
    /// Runs a batch through the pipeline suffix starting at `rel`, charging
    /// the shard's counterfactual budget from the calibrated cost model.
    fn process(&mut self, source: usize, rel: usize, batch: Batch) {
        let ops = &mut self.pipelines[source];
        if rel >= ops.len() {
            self.collected.extend(batch.to_records());
            return;
        }
        self.drained_records += batch.len() as u64;
        let mut batches = vec![batch];
        let n = ops.len();
        for op in ops.iter_mut().take(n).skip(rel) {
            let mut next = Vec::new();
            for b in batches.drain(..) {
                self.usage_us += op.cost_us() * b.len() as f64;
                op.process_batch(b, &mut next);
            }
            batches = next;
        }
        for b in batches {
            self.collected.extend(b.to_records());
        }
    }
}

/// Final outcome of a live session.
#[derive(Debug)]
pub struct LiveOutcome {
    /// Merged result rows across all sources' replicas.
    pub results: Vec<Record>,
    /// Rows drained over the channels.
    pub drained_records: u64,
    /// Drained batch bytes.
    pub drained_bytes: f64,
    /// State deltas shipped.
    pub state_deltas: u64,
    /// Total rows generated.
    pub input_records: u64,
    /// Total input bytes generated.
    pub input_bytes: f64,
    /// Epochs executed.
    pub epochs: u64,
    /// Input rows routed into each SP shard (key-hash drain share).
    pub shard_drained_records: Vec<u64>,
    /// Counterfactual compute charged to each SP shard, µs.
    pub shard_usage_us: Vec<f64>,
}

/// A threaded deployment advanced epoch by epoch.
pub struct LiveSession {
    planned: PlannedQuery,
    /// The plan's input schema; generated batches are relabeled to it so
    /// wire accounting matches the emulated backend (trace replay infers
    /// column types).
    input_schema: streamkit::schema::SchemaRef,
    workers: Vec<Worker>,
    /// Per-source stateless prefix of the SP replica (router side).
    sp_prefix: Vec<Vec<Box<dyn Operator>>>,
    /// Keyed shard pool; each shard owns one pipeline suffix per source.
    shards: Vec<ShardSet>,
    /// Index of the stateful boundary in the full chain.
    boundary: usize,
    /// Group-key columns at the boundary edge.
    shard_keys: Vec<usize>,
    costs: streamkit::physical::CostProfile,
    /// Scheduled resource changes, applied at epoch starts.
    events: Vec<crate::experiment::ResourceEvent>,
    epoch: u64,
    epoch_secs: f64,
    input_records: u64,
    input_bytes: u64,
    finished: bool,
}

/// Rows per channel message, to exercise backpressure.
const CHUNK: usize = 256;

impl LiveSession {
    /// Builds a session from a validated spec.
    pub fn new(spec: &DeploymentSpec) -> Result<LiveSession, DeployError> {
        let planned = spec.planned.clone();
        let costs = spec.workload.costs();
        let m = planned.source_ops;
        let n = spec.sources;
        let budget_us = spec.cpu_budget * calibration::EPOCH_SECS * 1e6;

        let mut workers = Vec::with_capacity(n as usize);
        for i in 0..n {
            let mut ops = build_pipeline(&planned.plan, &costs, AggRole::Partial)?;
            ops.truncate(m);
            let initial = spec
                .fixed_load_factors
                .clone()
                .unwrap_or_else(|| spec.strategy.initial_load_factors(&planned));
            let proxies = initial
                .iter()
                .map(|&p| ControlProxy::new(p, calibration::DRAINED_THRES, calibration::IDLE_THRES))
                .collect();
            let runtime = JarvisRuntime::with_policy(
                spec.strategy.runtime_config(),
                spec.strategy.build_policy(m),
            );
            workers.push(Worker {
                ops,
                proxies,
                generator: spec.workload.generator(i, n),
                runtime,
                budget_us,
                run_profile: false,
                usage_us: 0.0,
                input_records: 0,
                input_bytes: 0,
                drained_records: 0,
                drained_bytes: 0,
                state_deltas: 0,
                profile: None,
            });
        }
        // Split the replica chain at its keyed boundary: stateless prefix on
        // the router, keyed pipelines on the shard pool. Keyless plans keep
        // the whole chain on the router with a single pass-through shard.
        let (boundary, shard_keys) = match planned.plan.shard_boundary() {
            Some((g, keys)) => (g, keys),
            None => (planned.plan.len(), Vec::new()),
        };
        let n_shards = if shard_keys.is_empty() {
            1
        } else {
            spec.sp_shards.max(1) as usize
        };
        let sp_prefix = (0..n)
            .map(|_| {
                build_pipeline(&planned.plan, &costs, AggRole::Final).map(|mut ops| {
                    let _ = ops.split_off(boundary);
                    ops
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        let shards = (0..n_shards)
            .map(|_| {
                let pipelines = (0..n)
                    .map(|_| {
                        build_pipeline(&planned.plan, &costs, AggRole::Final)
                            .map(|mut ops| ops.split_off(boundary))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ShardSet {
                    pipelines,
                    collected: Vec::new(),
                    drained_records: 0,
                    usage_us: 0.0,
                })
            })
            .collect::<Result<Vec<_>, DeployError>>()?;
        let input_schema = planned.plan.edge_schemas()?[0].clone();
        Ok(LiveSession {
            planned,
            input_schema,
            workers,
            sp_prefix,
            shards,
            boundary,
            shard_keys,
            costs,
            events: spec.events.clone(),
            epoch: 0,
            epoch_secs: calibration::EPOCH_SECS,
            input_records: 0,
            input_bytes: 0,
            finished: false,
        })
    }

    /// Current load factors of source `i`.
    pub fn load_factors(&self, i: usize) -> Vec<f64> {
        self.workers[i]
            .proxies
            .iter()
            .map(ControlProxy::load_factor)
            .collect()
    }

    /// The runtime of source `i` (trace/episode access).
    pub fn runtime(&self, i: usize) -> &JarvisRuntime {
        &self.workers[i].runtime
    }

    /// The planned query.
    pub fn planned(&self) -> &PlannedQuery {
        &self.planned
    }

    /// Shard workers in the SP pool.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows generated so far.
    pub fn input_records(&self) -> u64 {
        self.input_records
    }

    /// Total input bytes generated so far.
    pub fn input_bytes(&self) -> u64 {
        self.input_bytes
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Runs one epoch: generates per-source batches, executes the
    /// partitioned pipelines on real threads (source workers → router →
    /// shard workers), then drives each source's runtime state machine with
    /// the epoch's observations.
    pub fn run_epoch(&mut self) {
        assert!(!self.finished, "session already finished");
        let now_us = (self.epoch as f64 * self.epoch_secs * 1e6) as i64;
        let m = self.planned.source_ops;
        self.apply_events();

        // Generate deterministically on the coordinating thread, relabeling
        // to the plan's input schema (same accounting as the emulated
        // engine).
        let input_schema = &self.input_schema;
        let inputs: Vec<Batch> = self
            .workers
            .iter_mut()
            .map(|w| {
                let mut b = w.generator.generate_epoch_batch(now_us, 1.0);
                b.relabel(input_schema);
                b
            })
            .collect();

        let (tx, rx): (Sender<Msg>, Receiver<Msg>) = bounded(256);
        let n_shards = self.shards.len();
        let mut shard_txs = Vec::with_capacity(n_shards);
        let mut shard_rxs = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let (stx, srx): (Sender<ShardMsg>, Receiver<ShardMsg>) = bounded(256);
            shard_txs.push(stx);
            shard_rxs.push(srx);
        }
        let costs = &self.costs;
        let plan = &self.planned.plan;
        let boundary = self.boundary;
        let shard_keys = &self.shard_keys;
        let sp_prefix = &mut self.sp_prefix;

        std::thread::scope(|scope| {
            for ((source, worker), input) in self.workers.iter_mut().enumerate().zip(inputs) {
                let tx = tx.clone();
                scope.spawn(move || {
                    worker.begin_epoch();
                    worker.input_records = input.len() as u64;
                    worker.input_bytes = input.wire_size() as u64;
                    if worker.run_profile {
                        worker.profile =
                            Some(profile_on_scratch(plan, costs, m, &input, worker.budget_us));
                        worker.run_profile = false;
                    }
                    worker.execute(source, m, input, &tx);
                });
            }
            drop(tx);

            // The router: per-source stateless prefixes + the key-hash
            // partitioner feeding the shard pool.
            scope.spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Drained {
                            source,
                            stage,
                            batch,
                        } => {
                            if stage >= boundary {
                                route_batch(
                                    &shard_txs,
                                    shard_keys,
                                    source,
                                    stage - boundary,
                                    batch,
                                );
                                continue;
                            }
                            // Stateless prefix from the entry stage to the
                            // boundary, then partition.
                            let prefix = &mut sp_prefix[source];
                            let mut batches = vec![batch];
                            for op in prefix.iter_mut().skip(stage) {
                                let mut next = Vec::new();
                                for b in batches.drain(..) {
                                    op.process_batch(b, &mut next);
                                }
                                batches = next;
                            }
                            for b in batches {
                                route_batch(&shard_txs, shard_keys, source, 0, b);
                            }
                        }
                        Msg::State {
                            source,
                            stage,
                            delta,
                        } => {
                            if stage < boundary {
                                // A stateless prefix op cannot own mergeable
                                // state; the default merge hook ignores it.
                                sp_prefix[source][stage].merge_state(delta);
                                continue;
                            }
                            route_state(&shard_txs, source, stage - boundary, delta);
                        }
                    }
                }
                // Router done: closing the shard channels stops the pool.
                drop(shard_txs);
            });

            // The shard workers: keyed pipelines + state merging, one
            // thread per shard.
            for (set, srx) in self.shards.iter_mut().zip(shard_rxs) {
                scope.spawn(move || {
                    while let Ok(msg) = srx.recv() {
                        match msg {
                            ShardMsg::Batch { source, rel, batch } => {
                                set.process(source, rel, batch);
                            }
                            ShardMsg::State {
                                source,
                                rel,
                                entries,
                            } => {
                                set.pipelines[source][rel]
                                    .merge_state(StatePartial::Group(entries));
                            }
                        }
                    }
                });
            }
        });

        // Epoch boundary: counterfactual budget classification + runtime.
        for worker in &mut self.workers {
            self.input_records += worker.input_records;
            self.input_bytes += worker.input_bytes;
            worker.end_epoch();
        }
        self.epoch += 1;
    }

    /// Applies resource events scheduled for the current epoch: budget
    /// changes update every worker's counterfactual budget; table growth
    /// swaps the static join tables on workers, router prefixes, and shard
    /// pipelines alike.
    fn apply_events(&mut self) {
        let epoch = self.epoch;
        let epoch_secs = self.epoch_secs;
        for ev in self.events.clone().iter().filter(|e| e.epoch == epoch) {
            if let Some(cpu) = ev.cpu_budget {
                for worker in &mut self.workers {
                    worker.budget_us = cpu * epoch_secs * 1e6;
                }
            }
            if let Some(size) = ev.table_size {
                let (src_table, dst_table) = telemetry::queries::t2t_tables(size, 40, &[1]);
                let swap = |ops: &mut [Box<dyn Operator>]| {
                    let mut join_seen = 0;
                    for op in ops.iter_mut() {
                        if let Some(join) = op
                            .as_any_mut()
                            .and_then(|a| a.downcast_mut::<streamkit::ops::JoinOp>())
                        {
                            let table = if join_seen == 0 {
                                &src_table
                            } else {
                                &dst_table
                            };
                            join.set_table(table.clone());
                            join_seen += 1;
                        }
                    }
                };
                for worker in &mut self.workers {
                    swap(&mut worker.ops);
                }
                for prefix in &mut self.sp_prefix {
                    swap(prefix);
                }
                for set in &mut self.shards {
                    for pipeline in &mut set.pipelines {
                        swap(pipeline);
                    }
                }
            }
        }
    }

    /// Runs `n` epochs.
    pub fn run_epochs(&mut self, n: u64) {
        for _ in 0..n {
            self.run_epoch();
        }
    }

    /// Finishes the session: ships residual partial state (routed by key
    /// ownership, like the live path), closes every window on every shard
    /// pipeline, and returns the merged results.
    pub fn finish(mut self) -> LiveOutcome {
        self.finished = true;
        let mut drained_records = 0u64;
        let mut drained_bytes = 0u64;
        let mut state_deltas = 0u64;
        let boundary = self.boundary;
        let n_shards = self.shards.len();
        for (source, worker) in self.workers.iter_mut().enumerate() {
            drained_records += worker.drained_records;
            drained_bytes += worker.drained_bytes;
            state_deltas += worker.state_deltas;
            for (stage, op) in worker.ops.iter_mut().enumerate() {
                let Some(delta) = op.take_state_delta() else {
                    continue;
                };
                state_deltas += 1;
                if stage < boundary {
                    self.sp_prefix[source][stage].merge_state(delta);
                    continue;
                }
                let rel = stage - boundary;
                let StatePartial::Group(entries) = delta;
                let mut per_shard: Vec<Vec<GroupPartialEntry>> =
                    (0..n_shards).map(|_| Vec::new()).collect();
                for entry in entries {
                    per_shard[shard_of_values(&entry.key, n_shards)].push(entry);
                }
                for (set, part) in self.shards.iter_mut().zip(per_shard) {
                    if !part.is_empty() {
                        set.pipelines[source][rel].merge_state(StatePartial::Group(part));
                    }
                }
            }
        }
        // Close all windows on every shard; emissions cascade through the
        // rest of that shard's chain.
        let mut results = Vec::new();
        let mut shard_drained_records = Vec::with_capacity(n_shards);
        let mut shard_usage_us = Vec::with_capacity(n_shards);
        for set in &mut self.shards {
            for pipeline in &mut set.pipelines {
                set.collected
                    .extend(streamkit::physical::drain_windows_rows(
                        pipeline,
                        streamkit::time::TS_MAX,
                    ));
            }
            results.append(&mut set.collected);
            shard_drained_records.push(set.drained_records);
            shard_usage_us.push(set.usage_us);
        }
        LiveOutcome {
            results,
            drained_records,
            drained_bytes: drained_bytes as f64,
            state_deltas,
            input_records: self.input_records,
            input_bytes: self.input_bytes as f64,
            epochs: self.epoch,
            shard_drained_records,
            shard_usage_us,
        }
    }
}

/// Partitions a boundary batch by key hash and sends each non-empty part to
/// its shard. Batches entering past the boundary (stateless suffix) and
/// keyless plans go to shard 0.
fn route_batch(
    shard_txs: &[Sender<ShardMsg>],
    shard_keys: &[usize],
    source: usize,
    rel: usize,
    batch: Batch,
) {
    if batch.is_empty() {
        return;
    }
    let n = shard_txs.len();
    if rel == 0 && n > 1 && !shard_keys.is_empty() {
        for (k, part) in batch.shard_by_key(shard_keys, n).into_iter().enumerate() {
            if !part.is_empty() {
                shard_txs[k]
                    .send(ShardMsg::Batch {
                        source,
                        rel,
                        batch: part,
                    })
                    .expect("shard worker alive");
            }
        }
    } else {
        shard_txs[0]
            .send(ShardMsg::Batch { source, rel, batch })
            .expect("shard worker alive");
    }
}

/// Splits a state delta's group entries by key ownership and sends each
/// shard its share.
fn route_state(shard_txs: &[Sender<ShardMsg>], source: usize, rel: usize, delta: StatePartial) {
    let n = shard_txs.len();
    let StatePartial::Group(entries) = delta;
    if n == 1 {
        shard_txs[0]
            .send(ShardMsg::State {
                source,
                rel,
                entries,
            })
            .expect("shard worker alive");
        return;
    }
    let mut per_shard: Vec<Vec<GroupPartialEntry>> = (0..n).map(|_| Vec::new()).collect();
    for entry in entries {
        per_shard[shard_of_values(&entry.key, n)].push(entry);
    }
    for (k, part) in per_shard.into_iter().enumerate() {
        if !part.is_empty() {
            shard_txs[k]
                .send(ShardMsg::State {
                    source,
                    rel,
                    entries: part,
                })
                .expect("shard worker alive");
        }
    }
}

impl Worker {
    fn begin_epoch(&mut self) {
        self.usage_us = 0.0;
        self.input_records = 0;
        self.input_bytes = 0;
        for p in &mut self.proxies {
            p.begin_epoch();
        }
    }

    /// Routes and executes one epoch's batch, draining to the SP channel.
    fn execute(&mut self, source: usize, m: usize, input: Batch, tx: &Sender<Msg>) {
        let send_chunked =
            |stage: usize, batch: Batch, drained_records: &mut u64, drained_bytes: &mut u64| {
                if batch.is_empty() {
                    return;
                }
                *drained_records += batch.len() as u64;
                *drained_bytes += batch.wire_size() as u64;
                for chunk in batch.chunks(CHUNK) {
                    tx.send(Msg::Drained {
                        source,
                        stage,
                        batch: chunk,
                    })
                    .expect("SP router alive");
                }
            };

        let mut batches = vec![input];
        for i in 0..m {
            let mut next: Vec<Batch> = Vec::new();
            for batch in batches.drain(..) {
                let (fwd, drained) = self.proxies[i].split_batch(batch);
                if let Some(drained) = drained {
                    send_chunked(
                        i,
                        drained,
                        &mut self.drained_records,
                        &mut self.drained_bytes,
                    );
                }
                if let Some(fwd) = fwd {
                    // Counterfactual budget charge from the calibrated model,
                    // resampled per quantum so state-dependent costs track
                    // state growth within the epoch (as the emulated engine
                    // does).
                    for sub in fwd.chunks(calibration::EXEC_QUANTUM) {
                        self.usage_us += self.ops[i].cost_us() * sub.len() as f64;
                        self.ops[i].process_batch(sub, &mut next);
                    }
                }
            }
            batches = next;
        }
        // Rows that passed the whole local prefix continue at SP stage m.
        for batch in batches {
            send_chunked(m, batch, &mut self.drained_records, &mut self.drained_bytes);
        }

        // Ship partial state every epoch (exactness does not depend on the
        // cadence; shipping eagerly keeps replica state fresh).
        for (stage, op) in self.ops.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                self.state_deltas += 1;
                tx.send(Msg::State {
                    source,
                    stage,
                    delta,
                })
                .expect("SP router alive");
            }
        }
    }

    /// Classifies the finished epoch against the counterfactual budget and
    /// drives the runtime state machine.
    fn end_epoch(&mut self) {
        let all_local = self.proxies.iter().all(|p| p.load_factor() >= 1.0 - 1e-12);
        let state = if self.usage_us > self.budget_us {
            QueryState::Congested
        } else if self.usage_us < self.budget_us * (1.0 - calibration::IDLE_THRES) && !all_local {
            QueryState::Idle
        } else {
            QueryState::Stable
        };
        let current: Vec<f64> = self.proxies.iter().map(ControlProxy::load_factor).collect();
        let decision = self
            .runtime
            .on_epoch_end(state, self.profile.take(), &current);
        if let Some(p) = decision.set_load_factors {
            for (proxy, &v) in self.proxies.iter_mut().zip(&p) {
                proxy.set_load_factor(v);
            }
        }
        self.run_profile = decision.run_profile;
    }
}

/// Measures per-operator cost and relay ratios on a scratch pipeline fed
/// with this epoch's batch — the live equivalent of a Profile epoch. The
/// scratch state starts empty, so state-dependent costs are *under*estimated
/// exactly like the paper's one-epoch profiling (§VI-C).
pub(crate) fn profile_on_scratch(
    plan: &streamkit::logical::LogicalPlan,
    costs: &streamkit::physical::CostProfile,
    m: usize,
    input: &Batch,
    budget_us: f64,
) -> ProfileEstimates {
    let mut ops = build_pipeline(plan, costs, AggRole::Partial).expect("validated plan");
    ops.truncate(m);
    let mut cost_us = Vec::with_capacity(m);
    let mut relay_bytes = Vec::with_capacity(m);
    let mut relay_count = Vec::with_capacity(m);
    let mut batches: Vec<Batch> = vec![input.clone()];
    for op in ops.iter_mut() {
        let in_count: usize = batches.iter().map(Batch::len).sum();
        let in_bytes: usize = batches.iter().map(Batch::wire_size).sum();
        let mut out: Vec<Batch> = Vec::new();
        let mut used = 0.0;
        for batch in batches.drain(..) {
            for sub in batch.chunks(calibration::PROFILE_SUBBATCH_ROWS) {
                used += op.cost_us() * sub.len() as f64;
                op.process_batch(sub, &mut out);
            }
        }
        let mut out_count: usize = out.iter().map(Batch::len).sum();
        let mut out_bytes: usize = out.iter().map(Batch::wire_size).sum();
        if op.is_stateful() {
            if let Some(delta) = op.take_state_delta() {
                out_count += delta.entry_count();
                out_bytes += delta.wire_bytes();
            }
        }
        cost_us.push(if in_count > 0 {
            used / in_count as f64
        } else {
            op.cost_us()
        });
        relay_count.push(if in_count > 0 {
            out_count as f64 / in_count as f64
        } else {
            1.0
        });
        relay_bytes.push(if in_bytes > 0 {
            out_bytes as f64 / in_bytes as f64
        } else {
            1.0
        });
        batches = out;
    }
    ProfileEstimates {
        cost_us,
        relay_bytes,
        relay_count,
        records_per_epoch: input.len() as f64,
        budget_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::deploy::Deployment;
    use crate::experiment::ScenarioSpec;
    use crate::strategy::StrategyKind;

    fn spec(strategy: StrategyKind, cpu: f64) -> DeploymentSpec {
        Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(strategy)
            .cpu_budget(cpu)
            .sources(2)
            .spec()
            .unwrap()
    }

    #[test]
    fn resource_events_change_the_live_budget() {
        // A Fig.8-style budget drop must reach the workers' counterfactual
        // budgets and re-trigger adaptation on the live backend.
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
            .strategy(StrategyKind::Jarvis)
            .cpu_budget(1.0)
            .events(&[crate::experiment::ResourceEvent {
                epoch: 12,
                cpu_budget: Some(0.05),
                table_size: None,
            }])
            .spec()
            .unwrap();
        let mut s = LiveSession::new(&spec).unwrap();
        s.run_epochs(12);
        let before = s.load_factors(0);
        s.run_epochs(14);
        let after = s.load_factors(0);
        assert!(
            after.iter().sum::<f64>() < before.iter().sum::<f64>(),
            "a 20x budget cut must pull load factors down: {before:?} -> {after:?}"
        );
    }

    #[test]
    fn adaptive_session_pulls_work_local() {
        let mut s = LiveSession::new(&spec(StrategyKind::Jarvis, 1.0)).unwrap();
        s.run_epochs(12);
        let p = s.load_factors(0);
        assert!(
            p.iter().any(|&v| v > 0.0),
            "the runtime must install a plan over live epochs: {p:?}"
        );
        assert!(!s.runtime(0).trace().is_empty());
    }

    #[test]
    fn fixed_strategy_sessions_never_move_factors() {
        let mut s = LiveSession::new(&spec(StrategyKind::AllSrc, 0.2)).unwrap();
        s.run_epochs(6);
        assert_eq!(s.load_factors(0), vec![1.0, 1.0, 1.0]);
        let out = s.finish();
        assert_eq!(out.drained_records, 0, "All-Src drains nothing");
        assert!(out.state_deltas > 0, "state still ships");
        assert!(!out.results.is_empty());
    }

    #[test]
    fn adaptive_and_all_sp_results_match() {
        // Exactness across load-factor plans, now under runtime adaptation.
        let mut adaptive = LiveSession::new(&spec(StrategyKind::Jarvis, 0.6)).unwrap();
        adaptive.run_epochs(10);
        let a = adaptive.finish();
        let mut all_sp = LiveSession::new(&spec(StrategyKind::AllSp, 0.6)).unwrap();
        all_sp.run_epochs(10);
        let b = all_sp.finish();
        let digest = |rows: &[Record]| crate::deploy::ExactnessDigest::of_rows(rows);
        assert_eq!(digest(&a.results), digest(&b.results));
        assert!(a.drained_records < b.drained_records);
    }

    #[test]
    fn shard_pool_splits_the_drain_share() {
        // With 4 shards and everything drained to the SP, the key-hash
        // partitioner must spread rows across more than one shard worker
        // and account the split.
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(StrategyKind::AllSp)
            .cpu_budget(0.6)
            .sources(2)
            .sp_shards(4)
            .spec()
            .unwrap();
        let mut s = LiveSession::new(&spec).unwrap();
        assert_eq!(s.n_shards(), 4);
        s.run_epochs(4);
        let out = s.finish();
        assert_eq!(out.shard_drained_records.len(), 4);
        let busy = out.shard_drained_records.iter().filter(|&&r| r > 0).count();
        assert!(
            busy > 1,
            "keys must spread: {:?}",
            out.shard_drained_records
        );
        assert!(
            out.shard_usage_us.iter().sum::<f64>() > 0.0,
            "per-shard budgets must be charged"
        );
        assert!(!out.results.is_empty());
    }
}
