//! A threaded "live" runtime, batch-first.
//!
//! The emulator (`engine`) gives deterministic, calibrated results; this
//! module runs the *same* pipeline code under real concurrency, mirroring the
//! paper's MiNiFi-agent → NiFi deployment: one thread per data source runs
//! the source pipeline and control proxies, a stream-processor thread runs
//! the replica pipelines and state merging, and bounded crossbeam channels
//! carry drained batches / state deltas (providing natural backpressure).
//!
//! It exists to validate that partitioned execution is *exact* — merged
//! results equal an unpartitioned run — under real interleavings; the
//! epoch-driven, multi-node variant behind `BackendKind::Live` lives in
//! [`session::LiveSession`].

pub(crate) mod remote;
pub mod session;

pub use session::{LiveOutcome, LiveSession};

use std::thread;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use streamkit::batch::Batch;
use streamkit::ops::AggRole;
use streamkit::physical::{build_pipeline, CostProfile};
use streamkit::record::Record;
use streamkit::time::Ts;

use crate::planner::PlannedQuery;
use crate::proxy::ControlProxy;

/// Messages from a source worker to the SP worker.
enum LiveMsg {
    /// A batch drained in front of source-side operator `stage`.
    Drained { stage: usize, batch: Batch },
    /// Partial state from the source-side stateful operator at `stage`.
    State {
        stage: usize,
        delta: streamkit::ops::StatePartial,
    },
    /// Source finished; final event-time watermark.
    Eof { watermark: Ts },
}

/// Result of a live run.
#[derive(Debug, Clone)]
pub struct LiveReport {
    /// Result rows emitted by the SP-side final operators.
    pub results: Vec<Record>,
    /// Rows drained over the channel.
    pub drained_records: usize,
    /// State deltas shipped.
    pub state_deltas: usize,
}

/// Rows per drained channel message, to exercise backpressure.
const DRAIN_CHUNK: usize = 128;

/// Sends a drained batch in bounded chunks.
fn send_chunked(tx: &Sender<LiveMsg>, stage: usize, batch: Batch) {
    for chunk in batch.chunks(DRAIN_CHUNK) {
        tx.send(LiveMsg::Drained {
            stage,
            batch: chunk,
        })
        .expect("SP worker alive");
    }
}

/// Runs `records` through a partitioned deployment with fixed `load_factors`
/// on `threads` source workers (records are partitioned round-robin), and
/// returns the merged SP results.
pub fn run_partitioned(
    planned: &PlannedQuery,
    costs: &CostProfile,
    records: Vec<Record>,
    load_factors: &[f64],
    threads: usize,
) -> LiveReport {
    assert!(threads >= 1, "at least one source thread");
    let m = planned.source_ops;
    assert_eq!(load_factors.len(), m, "one load factor per source op");
    let schemas = planned.plan.edge_schemas().expect("validated plan");

    let (tx, rx): (Sender<LiveMsg>, Receiver<LiveMsg>) = bounded(256);
    let results = Mutex::new(Vec::new());
    let mut drained_records = 0usize;
    let mut state_deltas = 0usize;

    // Partition input round-robin across source workers.
    let mut partitions: Vec<Vec<Record>> = (0..threads).map(|_| Vec::new()).collect();
    // The stream has ended: the final watermark closes every window.
    let max_ts = streamkit::time::TS_MAX;
    for (i, rec) in records.into_iter().enumerate() {
        partitions[i % threads].push(rec);
    }

    thread::scope(|scope| {
        // Source workers.
        for part in partitions {
            let tx = tx.clone();
            let lf = load_factors.to_vec();
            let schema0 = schemas[0].clone();
            scope.spawn(move || {
                let mut ops =
                    build_pipeline(&planned.plan, costs, AggRole::Partial).expect("validated plan");
                ops.truncate(m);
                let mut proxies: Vec<ControlProxy> = lf
                    .iter()
                    .map(|&p| ControlProxy::new(p, 0.05, 0.25))
                    .collect();
                let input = Batch::from_records(schema0, &part).expect("generator rows");
                let mut batches = vec![input];
                for i in 0..m {
                    let mut next: Vec<Batch> = Vec::new();
                    for batch in batches.drain(..) {
                        let (fwd, drained) = proxies[i].split_batch(batch);
                        if let Some(drained) = drained {
                            send_chunked(&tx, i, drained);
                        }
                        if let Some(fwd) = fwd {
                            ops[i].process_batch(fwd, &mut next);
                        }
                    }
                    batches = next;
                }
                // Rows that passed the whole local prefix continue at SP
                // stage m.
                for batch in batches {
                    send_chunked(&tx, m, batch);
                }
                for (stage, op) in ops.iter_mut().enumerate() {
                    if let Some(delta) = op.take_state_delta() {
                        tx.send(LiveMsg::State { stage, delta }).unwrap();
                    }
                }
                tx.send(LiveMsg::Eof { watermark: max_ts }).unwrap();
            });
        }
        drop(tx);

        // SP worker.
        let results = &results;
        let drained = &mut drained_records;
        let deltas = &mut state_deltas;
        scope.spawn(move || {
            let mut stages =
                build_pipeline(&planned.plan, costs, AggRole::Final).expect("validated plan");
            let n = stages.len();
            let mut eofs = 0;
            let mut final_wm = 0;
            let mut collected = Vec::new();
            while let Ok(msg) = rx.recv() {
                match msg {
                    LiveMsg::Drained { stage, batch } => {
                        *drained += batch.len();
                        let mut batches = vec![batch];
                        for op in stages.iter_mut().take(n).skip(stage) {
                            let mut next = Vec::new();
                            for b in batches.drain(..) {
                                op.process_batch(b, &mut next);
                            }
                            batches = next;
                        }
                        for b in batches {
                            collected.extend(b.to_records());
                        }
                    }
                    LiveMsg::State { stage, delta } => {
                        *deltas += 1;
                        stages[stage].merge_state(delta);
                    }
                    LiveMsg::Eof { watermark } => {
                        eofs += 1;
                        final_wm = final_wm.max(watermark);
                    }
                }
            }
            let _ = eofs;
            // All sources done: close windows (the shared backend flush).
            collected.extend(streamkit::physical::drain_windows_rows(
                &mut stages,
                final_wm,
            ));
            results.lock().extend(collected);
        });
    });

    LiveReport {
        results: results.into_inner(),
        drained_records,
        state_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration;
    use crate::planner::{plan_query, RuleConfig};
    use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

    fn workload(epochs: u64) -> Vec<Record> {
        let mut g = PingmeshGenerator::new(PingmeshConfig::default());
        let mut out = Vec::new();
        for e in 0..epochs {
            out.extend(g.generate_epoch(e as i64 * 1_000_000, 1.0));
        }
        out
    }

    fn sorted_rows(mut rows: Vec<Record>) -> Vec<Record> {
        rows.sort_by_key(|r| format!("{:?}", r.values));
        rows
    }

    #[test]
    fn partitioned_results_equal_unpartitioned() {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        let costs = calibration::s2s_cost_profile();
        let records = workload(12);

        // Reference: everything drained to the SP (p = 0 everywhere).
        let reference = run_partitioned(&planned, &costs, records.clone(), &[0.0, 0.0, 0.0], 1);
        // Partitioned: a fractional split across two worker threads.
        let split = run_partitioned(&planned, &costs, records, &[1.0, 0.7, 0.4], 2);

        assert_eq!(
            sorted_rows(reference.results),
            sorted_rows(split.results),
            "data-level partitioning must be lossless and exact"
        );
        assert!(split.state_deltas > 0, "partial state must flow");
        assert!(split.drained_records < reference.drained_records);
    }

    #[test]
    fn all_local_ships_only_state() {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        let costs = calibration::s2s_cost_profile();
        let report = run_partitioned(&planned, &costs, workload(4), &[1.0, 1.0, 1.0], 1);
        assert_eq!(report.drained_records, 0);
        assert!(report.state_deltas > 0);
        assert!(!report.results.is_empty());
    }
}
