//! Coordinator side of the TCP stream-processor tier.
//!
//! [`RemoteCluster`] replaces the in-process SP node threads of
//! [`super::session::LiveSession`] when a deployment selects
//! [`TransportKind::Tcp`](crate::deploy::TransportKind): it listens on the
//! configured endpoint, admits `jarvis-node` registrations (shared-token
//! auth, versioned handshake), pushes each node its [`NodeSpec`] slice, and
//! then carries the exact same `NetPayload` shard traffic the channel
//! transport carries — untouched `netwire` envelopes inside
//! [`FrameKind::Shard`] frames — so digests are bit-identical to the
//! in-process run. Per-link socket byte counters (TX from the writer
//! thread, RX from the frame reader) feed `RunReport.node_stats` with
//! *actual* wire traffic rather than modelled sizes.
//!
//! # Fault tolerance
//!
//! The coordinator is also the failure detector and the recovery driver:
//!
//! - **Detection.** Every epoch boundary blocks until each live node acks
//!   the epoch (a `Progress` frame). While waiting, the coordinator sends
//!   `Ping` heartbeats and expects traffic back within the configured
//!   liveness deadline; a silent node, a broken writer, or a reader error
//!   all surface as a typed loss instead of a wedged run.
//! - **Epoch-aligned checkpoints.** Nodes snapshot owned-shard state every
//!   `checkpoint_interval` epochs as `Ckpt` frames (schema-free `netwire`
//!   state envelopes the coordinator stores verbatim) committed by the ack
//!   riding the next `Progress`. Commit truncates per-shard replay buffers
//!   to post-checkpoint traffic, bounding recovery cost.
//! - **Recovery.** On loss the coordinator first holds a reconnect window
//!   (`reconnect_grace`): the same node may re-register (same token, same
//!   id) and is re-seeded with its checkpoint plus replayed traffic. If the
//!   window lapses the [`OnNodeLoss`] policy applies — `Reassign` ships the
//!   lost shards to survivors via [`AdoptMsg`], `Degrade` drops them and
//!   reports per-shard completeness, `Fail` surfaces the pre-fault error.
//!
//! Recovery re-ships *full* checkpoint snapshots plus every buffered
//! post-checkpoint payload in the original per-shard order, and the merged
//! result digest is order-independent, so a recovered run is bit-identical
//! to a fault-free one.
//!
//! Persistent dictionaries version-sync with recovery: live shard frames
//! ship dictionary *delta* pages against per-link [`DictVersions`], while
//! checkpoint and replay bodies stay self-contained (full pages), so they
//! decode on any executor regardless of its mirror state. A reconnect
//! resets the link's versions (the rebuilt engine has empty mirrors); a
//! reassignment needs no reset, because the survivor keeps both its mirrors
//! and its link's version state.
//!
//! # Control-plane scheduling
//!
//! Every coordinator wait is event-driven rather than polled. A dedicated
//! blocking [`Acceptor`] thread owns the listener and feeds accepted
//! connections into a channel that admission and the reconnect window
//! drain with deadline-bounded receives; the ack and finish loops sleep on
//! the reader-event channel bounded by the earliest armed
//! [`DeadlineQueue`] deadline (heartbeat cadence, a silent node's liveness
//! deadline, the overall node timeout). The coordinator thread wakes
//! exactly when there is a frame to handle or a timer to honour — no
//! fixed-interval `sleep` loops.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{IpAddr, Ipv4Addr, Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
use parking_lot::Mutex;
use streamkit::batch::DictVersions;
use streamkit::record::Record;
use streamkit::schema::SchemaRef;
use streamkit::shard::node_of_shard;

use crate::deploy::remote::{
    from_body, to_body, Admit, AdoptMsg, AdoptShard, CheckpointAck, NodeSpec, NodeStatsMsg,
    Progress, Register, Reject, RemoteWorkload,
};
use crate::deploy::{DeployError, DeploymentSpec, FaultIncident, OnNodeLoss};
use crate::engine::netwire::{encode_shard_payload, encode_shard_payload_with, peek_envelope};
use crate::engine::transport::{encode_frame, FrameKind, FrameReader, Link, TransportError};
use crate::engine::NetPayload;
use crate::planner::RuleConfig;
use crate::rt::DeadlineQueue;

/// Cadence of the registered-but-dead probe during admission. Accept
/// latency is event-driven (the acceptor thread blocks in `accept`); this
/// timer only bounds how long an admitted node's death can go unnoticed
/// before the fleet is complete.
const ADMIT_PROBE: Duration = Duration::from_millis(25);

/// Accepts-channel depth: connections the acceptor thread has taken off
/// the listener but nobody has examined yet. Overflow drops the
/// connection, like an overflowing OS accept backlog would.
const ACCEPT_QUEUE: usize = 64;

/// Events-channel depth (progress frames are tiny; results frames are
/// chunked node-side).
const EVENT_QUEUE: usize = 4096;

/// Heartbeat cadence while blocked on epoch acks.
const HEARTBEAT_EVERY: Duration = Duration::from_millis(500);

/// One admitted node's connection state between handshake and link spawn.
struct AdmittedNode {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
    /// Handshake bytes written before the writer thread took over.
    handshake_tx: u64,
}

/// A frame (or failure) surfaced by a per-node reader thread.
///
/// `gen` is the connection generation the frame arrived on: a reconnect
/// bumps the node's generation, so stale events from a replaced reader
/// (e.g. the old connection's `Broken`) are dropped instead of killing the
/// fresh link.
enum NodeEvent {
    Frame {
        node: u32,
        gen: u32,
        kind: FrameKind,
        body: Bytes,
    },
    Broken {
        node: u32,
        gen: u32,
        error: String,
    },
}

/// Spawns the per-connection reader thread feeding the event channel.
fn spawn_reader(
    mut reader: FrameReader<TcpStream>,
    node: u32,
    gen: u32,
    tx: Sender<NodeEvent>,
) -> JoinHandle<()> {
    thread::spawn(move || loop {
        match reader.read_frame() {
            Ok((kind, body)) => {
                let done = kind == FrameKind::Done;
                if tx
                    .send(NodeEvent::Frame {
                        node,
                        gen,
                        kind,
                        body,
                    })
                    .is_err()
                {
                    return;
                }
                if done {
                    return;
                }
            }
            Err(e) => {
                let _ = tx.send(NodeEvent::Broken {
                    node,
                    gen,
                    error: e.to_string(),
                });
                return;
            }
        }
    })
}

/// Deadline keys driving the coordinator's event-driven waits: the ack
/// and finish loops block on the events channel bounded by the earliest
/// armed key in a [`DeadlineQueue`] instead of polling a fixed interval.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum WakeKey {
    /// Next `Ping` heartbeat; doubles as the broken-writer scan cadence.
    Heartbeat,
    /// Liveness deadline for one not-yet-acked node.
    Liveness(u32),
}

/// The blocking acceptor thread: owns the listener and feeds every
/// accepted connection into the accepts channel, which admission and the
/// reconnect window drain with deadline-bounded receives. Dropping the
/// handle stops the thread by arming the flag and self-dialing the listen
/// endpoint to unblock `accept`.
struct Acceptor {
    handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl Acceptor {
    fn spawn(listener: TcpListener, addr: SocketAddr, tx: Sender<TcpStream>) -> Acceptor {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if flag.load(Ordering::Acquire) {
                        return;
                    }
                    match tx.try_send(stream) {
                        // A full queue sheds the connection, exactly as an
                        // overflowing OS accept backlog would; never block
                        // here, so the stop dial always gets through.
                        Ok(()) | Err(TrySendError::Full(_)) => {}
                        Err(TrySendError::Disconnected(_)) => return,
                    }
                }
                Err(_) => {
                    if flag.load(Ordering::Acquire) {
                        return;
                    }
                    // Transient accept failure (aborted handshake, fd
                    // pressure): back off briefly instead of spinning.
                    thread::sleep(Duration::from_millis(20));
                }
            }
        });
        Acceptor {
            handle: Some(handle),
            stop,
            addr,
        }
    }

    /// Dial target for the stop wake-up: an unspecified bind address is
    /// reachable via loopback.
    fn dial_addr(&self) -> SocketAddr {
        let mut addr = self.addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(IpAddr::V4(Ipv4Addr::LOCALHOST));
        }
        addr
    }
}

impl Drop for Acceptor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            // Unblock `accept` so the thread observes the flag; a failed
            // dial means the listener already died and accept errored out.
            let _ = TcpStream::connect(self.dial_addr());
            let _ = handle.join();
        }
    }
}

/// Everything the session needs from the remote tier after `finish`.
pub(crate) struct RemoteFinish {
    /// Merged result rows from every node (order-independent digest).
    pub results: Vec<Record>,
    /// Final per-shard accounting, one message per node, node order
    /// (synthesized from the last checkpoint for degraded nodes).
    pub stats: Vec<NodeStatsMsg>,
    /// Actual socket traffic per node link, TX + RX bytes, summed across
    /// reconnects.
    pub node_wire_bytes: Vec<u64>,
    /// Node losses and how each was resolved, detection order.
    pub incidents: Vec<FaultIncident>,
    /// Checkpoint + replay bytes re-shipped for recovery.
    pub replay_bytes: u64,
    /// `Ping` heartbeats the coordinator sent.
    pub heartbeats_sent: u64,
    /// Fraction of announced epochs each shard's results cover (1.0
    /// everywhere unless shards were degraded away).
    pub shard_completeness: Vec<f64>,
}

/// The coordinator's handle on a fleet of admitted `jarvis-node` executors.
pub(crate) struct RemoteCluster {
    /// Per-node writer links (`None` once retired by a loss).
    links: Vec<Option<Link>>,
    /// Socket clones used to force-unblock a retired link's reader.
    streams: Vec<Option<TcpStream>>,
    readers: Vec<Option<JoinHandle<()>>>,
    /// Connection generation per node, bumped on reconnect.
    gens: Vec<u32>,
    /// RX byte counters, shared with the (current) reader and carried
    /// across reconnects.
    rx_counters: Vec<Arc<AtomicU64>>,
    /// Handshake bytes written synchronously, summed across reconnects.
    handshake_tx: Vec<u64>,
    /// TX bytes banked from retired links.
    retired_tx: Vec<u64>,
    events: Mutex<Receiver<NodeEvent>>,
    /// Kept so reconnected readers can feed the same channel.
    ev_tx: Sender<NodeEvent>,
    /// Connections the acceptor thread took off the listener; the
    /// reconnect window drains it with deadline-bounded receives.
    /// (Locked only for `Sync`: the coordinator thread is the one user.)
    accepts: Mutex<Receiver<TcpStream>>,
    /// Blocking acceptor thread owning the listener; held for its drop
    /// guard only (stops and joins the thread, releasing the port).
    _acceptor: Acceptor,
    /// Single-worker runtime driving every link's writer task: one thread
    /// for the whole fleet instead of one writer thread per node.
    /// Declared after `links` so links close (joining their tasks) while
    /// the workers are still alive.
    link_rt: crate::rt::Runtime,
    /// Timer wheel backing the writer tasks' send-buffer backoff and
    /// `Delay` fault sleeps.
    link_timer: Arc<crate::rt::TimerWheel>,
    /// Epochs announced via `epoch_end`.
    epochs_sent: u64,
    /// Highest epoch acked per node (max across duplicates — recovery
    /// re-sends `EpochEnd`, so duplicate acks are expected).
    acked_epoch: Vec<Option<u64>>,
    alive: Vec<bool>,
    /// Last traffic seen per node (liveness clock).
    last_heard: Vec<Instant>,
    /// Current owner per ring shard; `None` once degraded away.
    routes: Vec<Option<usize>>,
    /// Post-checkpoint shard payloads, per shard, epoch-stamped, in ship
    /// order (locked: the dispatcher thread appends through `&self`).
    /// Stored **self-contained** (full dictionary pages, no link state):
    /// recovery re-ships these bodies verbatim to executors whose mirror
    /// state is unknown — fresh after a reconnect, partial on an adopter.
    replay: Vec<Mutex<Vec<(u64, Bytes)>>>,
    /// Sender-side persistent-dictionary versions per node link (locked:
    /// the dispatcher thread encodes through `&self`): the highest version
    /// of each dictionary already shipped over the link, so live shard
    /// frames carry delta pages only. Reset when a node reconnects — the
    /// rebuilt executor starts with empty mirrors, so the next frame
    /// re-seeds it with full pages.
    dict_sync: Vec<Mutex<DictVersions>>,
    /// Whether replay buffering is on (any recovery path configured).
    buffering: bool,
    /// Last committed checkpoint state, keyed `(shard, source, rel)`,
    /// bodies stored verbatim (schema-free).
    ckpt_state: BTreeMap<(u32, u32, u32), Bytes>,
    /// Counters frozen at each shard's last committed checkpoint.
    ckpt_counters: BTreeMap<u32, ShardCountersEntry>,
    /// `Ckpt` frames received but not yet committed by a `Progress` ack.
    staged: Vec<Vec<Bytes>>,
    /// Epochs covered (acked) per degraded shard, frozen at loss.
    degraded_covered: BTreeMap<u32, u64>,
    /// Shards degraded away per original owner node.
    degraded_from: Vec<Vec<u32>>,
    incidents: Vec<FaultIncident>,
    replay_bytes: u64,
    heartbeats_sent: u64,
    /// True once `finish` started: a reconnector must also re-finish, and
    /// reassignment is no longer possible (adopters may have exited).
    finishing: bool,
    on_node_loss: OnNodeLoss,
    liveness_timeout: Duration,
    reconnect_grace: Duration,
    handshake_timeout: Duration,
    node_timeout: Duration,
    checkpoint_interval: u64,
    auth_token: String,
    workload: RemoteWorkload,
    rules: RuleConfig,
    sources: u32,
    final_schema: SchemaRef,
}

/// Alias keeping the checkpoint-counter map readable.
type ShardCountersEntry = crate::deploy::remote::ShardCounters;

impl RemoteCluster {
    /// Binds the listen endpoint, admits `n_nodes` registrations, pushes
    /// each node its spec slice, and waits for every `Ready`.
    ///
    /// Connections that never speak the protocol (port scanners, garbage)
    /// are dropped and admission continues; protocol-level failures — wrong
    /// token, version mismatch, unusable node id — abort the deployment
    /// with a typed error, and a registered node whose connection dies
    /// before the fleet is complete aborts with `NodeLost`.
    pub(crate) fn listen(
        spec: &DeploymentSpec,
        n_shards: usize,
        n_nodes: usize,
        final_schema: SchemaRef,
    ) -> Result<RemoteCluster, DeployError> {
        let addr = spec
            .listen_addr
            .expect("validated TCP spec carries a listen endpoint");
        let workload = spec
            .workload
            .remote_workload()
            .expect("validated TCP spec carries a remotable workload");
        let listener = TcpListener::bind(addr).map_err(|e| DeployError::InvalidEndpoint {
            got: format!("{addr}: bind failed: {e}"),
        })?;
        let local = listener
            .local_addr()
            .map_err(|e| DeployError::InvalidEndpoint {
                got: format!("{addr}: {e}"),
            })?;
        let (accept_tx, accepts) = bounded::<TcpStream>(ACCEPT_QUEUE);
        let acceptor = Acceptor::spawn(listener, local, accept_tx);

        let deadline = Instant::now() + spec.node_timeout;
        let mut admitted: Vec<Option<AdmittedNode>> = (0..n_nodes).map(|_| None).collect();
        let mut registered = 0u32;
        let mut probe: DeadlineQueue<()> = DeadlineQueue::new();
        probe.arm((), Instant::now() + ADMIT_PROBE);
        while (registered as usize) < n_nodes {
            let now = Instant::now();
            if now >= deadline {
                return Err(DeployError::NodeTimeout {
                    waited_ms: spec.node_timeout.as_millis() as u64,
                    registered,
                    expected: n_nodes as u32,
                });
            }
            // A node that registered and then died leaves a slice nobody
            // else can claim — fail admission eagerly instead of timing
            // out. The probe timer bounds detection; accepts themselves
            // arrive event-driven.
            if !probe.due(now).is_empty() {
                for (id, slot) in admitted.iter().enumerate() {
                    if let Some(node) = slot {
                        if let Some(reason) = peer_disconnected(&node.stream) {
                            return Err(DeployError::NodeLost {
                                node: id as u32,
                                reason,
                            });
                        }
                    }
                }
                probe.arm((), now + ADMIT_PROBE);
            }
            let wake = probe
                .next_deadline()
                .expect("probe timer is always re-armed")
                .min(deadline);
            let stream = match accepts.recv_deadline(wake) {
                Ok(stream) => stream,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(DeployError::HandshakeFailed {
                        peer: addr.to_string(),
                        reason: "acceptor thread died".to_string(),
                    })
                }
            };
            let peer = stream
                .peer_addr()
                .map_or_else(|_| "unknown peer".to_string(), |p| p.to_string());
            if admit(
                stream,
                &peer,
                spec,
                &workload,
                n_shards,
                n_nodes,
                &mut admitted,
            )? {
                registered += 1;
            }
        }

        // Every slot is filled: spawn the writer links and reader threads.
        // Writers are cooperative tasks on a dedicated single-worker
        // runtime (one thread drives the whole fleet's sends over
        // nonblocking sockets); readers stay blocking OS threads. The
        // chaos plan (if any) arms the original links only; reconnected
        // links are clean — a planned fault fires once.
        let link_rt = crate::rt::Runtime::new(1);
        let link_timer = Arc::new(crate::rt::TimerWheel::new());
        let (ev_tx, events) = bounded::<NodeEvent>(EVENT_QUEUE);
        let mut links = Vec::with_capacity(n_nodes);
        let mut streams = Vec::with_capacity(n_nodes);
        let mut readers = Vec::with_capacity(n_nodes);
        let mut rx_counters = Vec::with_capacity(n_nodes);
        let mut handshake_tx = Vec::with_capacity(n_nodes);
        for (id, slot) in admitted.into_iter().enumerate() {
            let node = slot.expect("all slots admitted");
            rx_counters.push(node.reader.counter());
            handshake_tx.push(node.handshake_tx);
            let shutdown = node
                .stream
                .try_clone()
                .map_err(|e| DeployError::HandshakeFailed {
                    peer: addr.to_string(),
                    reason: format!("clone admitted stream: {e}"),
                })?;
            streams.push(Some(shutdown));
            let faults = spec
                .fault_plan
                .as_ref()
                .map(|p| p.faults_for(id as u32))
                .unwrap_or_default();
            let seed = spec.fault_plan.as_ref().map_or(0, |p| p.seed);
            links.push(Some(Link::spawn_task(
                &link_rt.handle(),
                &link_timer,
                node.stream,
                faults,
                seed,
            )));
            readers.push(Some(spawn_reader(node.reader, id as u32, 0, ev_tx.clone())));
        }

        let buffering =
            !matches!(spec.on_node_loss, OnNodeLoss::Fail) || spec.reconnect_grace > Duration::ZERO;
        Ok(RemoteCluster {
            links,
            streams,
            readers,
            gens: vec![0; n_nodes],
            rx_counters,
            handshake_tx,
            retired_tx: vec![0; n_nodes],
            events: Mutex::new(events),
            ev_tx,
            accepts: Mutex::new(accepts),
            _acceptor: acceptor,
            link_rt,
            link_timer,
            epochs_sent: 0,
            acked_epoch: vec![None; n_nodes],
            alive: vec![true; n_nodes],
            last_heard: vec![Instant::now(); n_nodes],
            routes: (0..n_shards)
                .map(|s| Some(node_of_shard(s, n_shards, n_nodes)))
                .collect(),
            replay: (0..n_shards).map(|_| Mutex::new(Vec::new())).collect(),
            dict_sync: (0..n_nodes)
                .map(|_| Mutex::new(DictVersions::new()))
                .collect(),
            buffering,
            ckpt_state: BTreeMap::new(),
            ckpt_counters: BTreeMap::new(),
            staged: vec![Vec::new(); n_nodes],
            degraded_covered: BTreeMap::new(),
            degraded_from: vec![Vec::new(); n_nodes],
            incidents: Vec::new(),
            replay_bytes: 0,
            heartbeats_sent: 0,
            finishing: false,
            on_node_loss: spec.on_node_loss,
            liveness_timeout: spec.liveness_timeout,
            reconnect_grace: spec.reconnect_grace,
            handshake_timeout: spec.handshake_timeout,
            node_timeout: spec.node_timeout,
            checkpoint_interval: spec.checkpoint_interval,
            auth_token: spec.auth_token.clone(),
            workload,
            rules: spec.rules.clone(),
            sources: spec.sources,
            final_schema,
        })
    }

    /// Ships one shard payload to the shard's current owner, buffering it
    /// for replay when recovery is enabled. The live frame is encoded
    /// against the owner link's persistent-dictionary versions (delta pages
    /// only); the replay copy is encoded self-contained, because recovery
    /// re-ships it verbatim to an executor whose mirrors it cannot assume.
    /// Returns the framed wire size, or `None` when the shard has been
    /// degraded away (the payload is dropped, by policy).
    pub(crate) fn route_payload(
        &self,
        shard: usize,
        epoch: u64,
        payload: &NetPayload,
    ) -> Option<u64> {
        let owner = self.routes[shard]?;
        if self.buffering {
            self.replay[shard]
                .lock()
                .push((epoch, encode_shard_payload(payload)));
        }
        let link = self.links[owner].as_ref()?;
        let body = encode_shard_payload_with(payload, &mut self.dict_sync[owner].lock());
        Some(link.send(FrameKind::Shard, &body))
    }

    /// Announces an epoch boundary to every live node, then blocks until
    /// each has acked it — detecting, and recovering from, node losses
    /// while it waits.
    pub(crate) fn epoch_end(&mut self, epoch: u64) -> Result<(), DeployError> {
        for (i, link) in self.links.iter().enumerate() {
            if self.alive[i] {
                if let Some(link) = link {
                    link.send(FrameKind::EpochEnd, &epoch.to_le_bytes());
                }
            }
        }
        self.epochs_sent += 1;
        // The liveness clock starts at the boundary: dispatch time (which
        // produces no return traffic) never counts against a node.
        self.reset_liveness();
        self.await_acks(epoch)
    }

    /// Blocks until every live node acked `epoch`, sending heartbeats,
    /// surfacing writer/reader failures, and enforcing the liveness
    /// deadline on silent nodes.
    ///
    /// Event-driven: sleeps on the events channel bounded by the earliest
    /// armed [`DeadlineQueue`] key — the next heartbeat or a pending
    /// node's liveness deadline — instead of polling a fixed interval.
    fn await_acks(&mut self, epoch: u64) -> Result<(), DeployError> {
        let mut timers: DeadlineQueue<WakeKey> = DeadlineQueue::new();
        let now = Instant::now();
        timers.arm(WakeKey::Heartbeat, now + HEARTBEAT_EVERY);
        for i in 0..self.alive.len() {
            if self.pending_ack(i, epoch) {
                timers.arm(
                    WakeKey::Liveness(i as u32),
                    self.last_heard[i] + self.liveness_timeout,
                );
            }
        }
        loop {
            for (node, reason) in self.broken_links() {
                self.handle_loss(node, epoch, &reason)?;
            }
            if self.acked_all(epoch) {
                return Ok(());
            }
            let now = Instant::now();
            for key in timers.due(now) {
                match key {
                    WakeKey::Heartbeat => {
                        for (i, link) in self.links.iter().enumerate() {
                            if self.alive[i] {
                                if let Some(link) = link {
                                    link.send(FrameKind::Ping, &[]);
                                    self.heartbeats_sent += 1;
                                }
                            }
                        }
                        timers.arm(WakeKey::Heartbeat, now + HEARTBEAT_EVERY);
                    }
                    WakeKey::Liveness(node) => {
                        let i = node as usize;
                        if !self.pending_ack(i, epoch) {
                            // Acked, lost, or degraded meanwhile: stale
                            // timer, drop it.
                            continue;
                        }
                        if now > self.last_heard[i] + self.liveness_timeout {
                            let reason = format!(
                                "no epoch ack within the liveness deadline ({} ms)",
                                self.liveness_timeout.as_millis()
                            );
                            self.handle_loss(node, epoch, &reason)?;
                        }
                        // Re-arm when the node still owes an ack: traffic
                        // moved the deadline, or a reconnect reset the
                        // clock and the node must ack again.
                        if self.pending_ack(i, epoch) {
                            timers.arm(
                                WakeKey::Liveness(node),
                                self.last_heard[i] + self.liveness_timeout,
                            );
                        }
                    }
                }
            }
            if self.acked_all(epoch) {
                return Ok(());
            }
            let wake = timers
                .next_deadline()
                .expect("the heartbeat timer stays armed");
            let got = self.events.lock().recv_deadline(wake);
            // On timeout/disconnect, loop around to fire due timers
            // (`self.ev_tx` keeps the channel open, so only timeout occurs).
            if let Ok(ev) = got {
                self.on_midrun_event(ev, epoch)?;
            }
        }
    }

    /// True while `node` is alive and still owes an ack for `epoch`.
    fn pending_ack(&self, i: usize, epoch: u64) -> bool {
        self.alive[i] && self.acked_epoch[i].is_none_or(|a| a < epoch)
    }

    /// True when every live node has acked `epoch` (vacuously true when
    /// no node is left alive — a fully degraded run still completes).
    fn acked_all(&self, epoch: u64) -> bool {
        self.alive
            .iter()
            .zip(&self.acked_epoch)
            .all(|(alive, acked)| !alive || acked.is_some_and(|a| a >= epoch))
    }

    /// Live links whose writer thread hit a transport error.
    fn broken_links(&self) -> Vec<(u32, String)> {
        self.links
            .iter()
            .enumerate()
            .filter_map(|(i, link)| {
                let link = link.as_ref()?;
                if self.alive[i] && link.is_broken() {
                    let reason = link
                        .error()
                        .map_or_else(|| "writer failed".to_string(), |e| e.to_string());
                    Some((i as u32, reason))
                } else {
                    None
                }
            })
            .collect()
    }

    /// Restarts every live node's liveness clock (after a boundary or a
    /// recovery stall, so time spent elsewhere is not charged to them).
    fn reset_liveness(&mut self) {
        let now = Instant::now();
        for (i, heard) in self.last_heard.iter_mut().enumerate() {
            if self.alive[i] {
                *heard = now;
            }
        }
    }

    /// Processes one reader event between epochs. Only `Progress`, `Pong`,
    /// and `Ckpt` frames are legal here; anything else is a node failure.
    fn on_midrun_event(&mut self, ev: NodeEvent, epoch: u64) -> Result<(), DeployError> {
        match ev {
            NodeEvent::Frame {
                node,
                gen,
                kind,
                body,
            } => {
                let i = node as usize;
                if gen != self.gens[i] || !self.alive[i] {
                    return Ok(());
                }
                self.last_heard[i] = Instant::now();
                match kind {
                    FrameKind::Progress => self.on_progress(node, &body, epoch),
                    FrameKind::Pong => Ok(()),
                    FrameKind::Ckpt => {
                        self.staged[i].push(body);
                        Ok(())
                    }
                    other => self.handle_loss(
                        node,
                        epoch,
                        &format!("unexpected {other:?} frame mid-run"),
                    ),
                }
            }
            NodeEvent::Broken { node, gen, error } => {
                let i = node as usize;
                if gen != self.gens[i] || !self.alive[i] {
                    return Ok(());
                }
                self.handle_loss(node, epoch, &error)
            }
        }
    }

    /// Records a `Progress` ack (idempotent under recovery's re-sent
    /// boundaries) and commits any checkpoint riding on it.
    fn on_progress(&mut self, node: u32, body: &[u8], epoch: u64) -> Result<(), DeployError> {
        let i = node as usize;
        let p: Progress = match from_body(body) {
            Ok(p) => p,
            Err(e) => return self.handle_loss(node, epoch, &e),
        };
        if p.node_id != node {
            return self.handle_loss(node, epoch, &format!("progress claims node {}", p.node_id));
        }
        self.acked_epoch[i] = Some(self.acked_epoch[i].map_or(p.epoch, |a| a.max(p.epoch)));
        if let Some(ack) = p.checkpoint {
            if let Err(e) = self.commit_checkpoint(i, &ack) {
                return self.handle_loss(node, epoch, &e);
            }
        }
        Ok(())
    }

    /// Commits the staged `Ckpt` frames a `Progress` ack vouches for:
    /// replaces the stored snapshot for every acked shard and truncates the
    /// replay buffers to post-checkpoint traffic. A malformed staged frame
    /// is a node failure — never a silent truncation.
    fn commit_checkpoint(&mut self, node: usize, ack: &CheckpointAck) -> Result<(), String> {
        let staged = std::mem::take(&mut self.staged[node]);
        // Snapshots are full (cumulative), so the previous generation for
        // these shards is dead weight — drop it before installing the new
        // one, in case state shrank and some (source, rel) slot vanished.
        for c in &ack.shards {
            let stale: Vec<(u32, u32, u32)> = self
                .ckpt_state
                .range((c.shard, 0, 0)..=(c.shard, u32::MAX, u32::MAX))
                .map(|(k, _)| *k)
                .collect();
            for k in stale {
                self.ckpt_state.remove(&k);
            }
        }
        // Both envelope kinds are legal: operator state partials, plus the
        // already-collected output rows as a past-the-end batch. State
        // partials use `rel` < the suffix length and the collected batch
        // uses `rel` == the suffix length, so the keys never collide.
        for body in staged {
            let env = peek_envelope(&body)
                .ok_or_else(|| "checkpoint frame is not a shard envelope".to_string())?;
            self.ckpt_state
                .insert((env.shard, env.source, env.rel), body);
        }
        for c in &ack.shards {
            self.replay[c.shard as usize]
                .lock()
                .retain(|(e, _)| *e > ack.epoch);
            self.ckpt_counters.insert(c.shard, c.clone());
        }
        Ok(())
    }

    /// Handles a detected node loss: retire the link, hold the reconnect
    /// window, then apply the [`OnNodeLoss`] policy. Idempotent per node.
    fn handle_loss(&mut self, node: u32, epoch: u64, reason: &str) -> Result<(), DeployError> {
        let i = node as usize;
        if !self.alive[i] {
            return Ok(());
        }
        self.alive[i] = false;
        self.staged[i].clear();
        self.retire_link(i);
        let lost: Vec<u32> = (0..self.routes.len())
            .filter(|&s| self.routes[s] == Some(i))
            .map(|s| s as u32)
            .collect();

        if self.reconnect_grace > Duration::ZERO && self.await_reconnect(i) {
            let shipped = self.restore_shards(i, &lost, epoch);
            self.replay_bytes += shipped;
            self.incidents.push(FaultIncident {
                node,
                epoch,
                reason: reason.to_string(),
                action: "reconnected".to_string(),
                replay_bytes: shipped,
            });
            self.reset_liveness();
            return Ok(());
        }

        match self.on_node_loss {
            OnNodeLoss::Fail => {
                self.incidents.push(FaultIncident {
                    node,
                    epoch,
                    reason: reason.to_string(),
                    action: "failed".to_string(),
                    replay_bytes: 0,
                });
                Err(DeployError::NodeFailed {
                    node,
                    reason: reason.to_string(),
                })
            }
            OnNodeLoss::Reassign => {
                if self.finishing {
                    return Err(DeployError::NodeFailed {
                        node,
                        reason: format!(
                            "{reason} (lost during result collection; \
                             reassignment needs a running epoch loop)"
                        ),
                    });
                }
                let survivors: Vec<usize> =
                    (0..self.links.len()).filter(|&j| self.alive[j]).collect();
                if survivors.is_empty() {
                    return Err(DeployError::NodeFailed {
                        node,
                        reason: format!("{reason} (no surviving node to reassign to)"),
                    });
                }
                // Spread the lost slice over survivors with the same ring
                // function that placed it, so re-loss stays deterministic.
                let mut groups: BTreeMap<usize, Vec<u32>> = BTreeMap::new();
                for &s in &lost {
                    let t =
                        survivors[node_of_shard(s as usize, self.routes.len(), survivors.len())];
                    groups.entry(t).or_default().push(s);
                }
                let mut shipped = 0u64;
                for (target, shards) in groups {
                    shipped += self.restore_shards(target, &shards, epoch);
                }
                self.replay_bytes += shipped;
                self.incidents.push(FaultIncident {
                    node,
                    epoch,
                    reason: reason.to_string(),
                    action: "reassigned".to_string(),
                    replay_bytes: shipped,
                });
                self.reset_liveness();
                Ok(())
            }
            OnNodeLoss::Degrade => {
                let covered = self.acked_epoch[i].map_or(0, |a| a + 1);
                for &s in &lost {
                    self.routes[s as usize] = None;
                    self.degraded_covered.insert(s, covered);
                    self.replay[s as usize].lock().clear();
                    self.degraded_from[i].push(s);
                }
                self.incidents.push(FaultIncident {
                    node,
                    epoch,
                    reason: reason.to_string(),
                    action: "degraded".to_string(),
                    replay_bytes: 0,
                });
                self.reset_liveness();
                Ok(())
            }
        }
    }

    /// Tears down a lost node's connection: force-shutdown the socket (so
    /// a blocked reader/writer unblocks), close the link banking its TX
    /// bytes, and detach the reader thread (it exits on its own).
    fn retire_link(&mut self, i: usize) {
        if let Some(stream) = self.streams[i].take() {
            let _ = stream.shutdown(Shutdown::Both);
        }
        if let Some(mut link) = self.links[i].take() {
            link.close();
            self.retired_tx[i] += link.bytes_sent();
        }
        drop(self.readers[i].take());
    }

    /// Holds the reconnect window for a lost node: drain the acceptor's
    /// connection queue until the grace deadline, admitting only a
    /// `Register` with the shared token and the lost node's id. Returns
    /// true on success. Blocks on the accepts channel bounded by the
    /// grace deadline — no accept polling.
    fn await_reconnect(&mut self, node: usize) -> bool {
        let deadline = Instant::now() + self.reconnect_grace;
        loop {
            let stream = match self.accepts.lock().recv_deadline(deadline) {
                Ok(stream) => stream,
                // Grace lapsed (or the acceptor died): no reconnect.
                Err(_) => return false,
            };
            if self.readmit(stream, node) {
                return true;
            }
        }
    }

    /// Runs the reconnect handshake on one accepted connection. Anything
    /// that is not the lost node re-registering is rejected or dropped and
    /// the window keeps polling.
    fn readmit(&mut self, stream: TcpStream, node: usize) -> bool {
        if stream.set_nonblocking(false).is_err()
            || stream
                .set_read_timeout(Some(self.handshake_timeout))
                .is_err()
        {
            return false;
        }
        let _ = stream.set_nodelay(true);
        let Ok(reader_stream) = stream.try_clone() else {
            return false;
        };
        let Ok(shutdown) = stream.try_clone() else {
            return false;
        };
        let mut reader =
            FrameReader::with_counter(reader_stream, Arc::clone(&self.rx_counters[node]));
        let Ok((kind, body)) = reader.read_frame() else {
            return false;
        };
        if kind != FrameKind::Register {
            return false;
        }
        let Ok(reg) = from_body::<Register>(&body) else {
            return false;
        };
        if reg.token != self.auth_token || reg.node_id != Some(node as u32) {
            let _ = write_frame(
                &stream,
                FrameKind::Reject,
                &to_body(&Reject {
                    reason: format!("reconnect window is for node {node} only"),
                }),
            );
            return false;
        }
        let mut tx = 0u64;
        let Ok(sent) = write_frame(
            &stream,
            FrameKind::Admit,
            &to_body(&Admit {
                node_id: node as u32,
            }),
        ) else {
            return false;
        };
        tx += sent;
        let Ok(sent) = write_frame(
            &stream,
            FrameKind::Spec,
            &to_body(&self.node_spec(node as u32)),
        ) else {
            return false;
        };
        tx += sent;
        if !matches!(reader.read_frame(), Ok((FrameKind::Ready, _))) {
            return false;
        }
        if stream.set_read_timeout(None).is_err() {
            return false;
        }
        self.handshake_tx[node] += tx;
        self.gens[node] += 1;
        let gen = self.gens[node];
        // The reconnected executor rebuilt its engine — its dictionary
        // mirrors are empty. Resetting the link's versions makes the next
        // live frame re-seed them with full pages (replayed checkpoint
        // traffic is self-contained and needs no mirror state).
        self.dict_sync[node].lock().clear();
        self.streams[node] = Some(shutdown);
        self.links[node] = Some(Link::spawn_task(
            &self.link_rt.handle(),
            &self.link_timer,
            stream,
            Vec::new(),
            0,
        ));
        self.readers[node] = Some(spawn_reader(reader, node as u32, gen, self.ev_tx.clone()));
        self.alive[node] = true;
        self.acked_epoch[node] = None;
        self.last_heard[node] = Instant::now();
        true
    }

    /// The spec slice pushed to a (re)admitted node.
    fn node_spec(&self, node_id: u32) -> NodeSpec {
        NodeSpec {
            node_id,
            n_nodes: self.links.len() as u32,
            n_shards: self.routes.len() as u32,
            sources: self.sources,
            workload: self.workload.clone(),
            rules: self.rules.clone(),
            checkpoint_interval: self.checkpoint_interval,
        }
    }

    /// Re-seeds `shards` onto `target`: an [`AdoptMsg`] with counter bases
    /// from the last checkpoint, the stored checkpoint state, the buffered
    /// post-checkpoint traffic in original order, then a re-sent epoch
    /// boundary (and `Finish`, mid-collection) so the target's ack covers
    /// the adopted work. Returns the recovery bytes shipped.
    fn restore_shards(&mut self, target: usize, shards: &[u32], epoch: u64) -> u64 {
        let adopt = AdoptMsg {
            shards: shards
                .iter()
                .map(|&s| match self.ckpt_counters.get(&s) {
                    Some(c) => AdoptShard {
                        shard: s,
                        drained_records: c.drained_records,
                        usage_us: c.usage_us,
                    },
                    None => AdoptShard {
                        shard: s,
                        drained_records: 0,
                        usage_us: 0.0,
                    },
                })
                .collect(),
        };
        let link = self.links[target].as_ref().expect("restore target is live");
        link.send(FrameKind::Adopt, &to_body(&adopt));
        let mut shipped = 0u64;
        for &s in shards {
            for (_, body) in self.ckpt_state.range((s, 0, 0)..=(s, u32::MAX, u32::MAX)) {
                shipped += link.send(FrameKind::Shard, body);
            }
            for (_, body) in self.replay[s as usize].lock().iter() {
                shipped += link.send(FrameKind::Shard, body);
            }
        }
        if self.epochs_sent > 0 {
            link.send(FrameKind::EpochEnd, &epoch.to_le_bytes());
        }
        if self.finishing {
            link.send(FrameKind::Finish, &[]);
        }
        for &s in shards {
            self.routes[s as usize] = Some(target);
        }
        shipped
    }

    /// Sends `Finish` to every live node, collects results / stats /
    /// `Done` from all of them (bounded by the node timeout, recovering
    /// from losses along the way), reconciles epoch acks, and returns the
    /// merged rows plus per-link accounting.
    pub(crate) fn finish(mut self) -> Result<RemoteFinish, DeployError> {
        self.finishing = true;
        let last_epoch = self.epochs_sent.saturating_sub(1);
        for (i, link) in self.links.iter().enumerate() {
            if self.alive[i] {
                if let Some(link) = link {
                    link.send(FrameKind::Finish, &[]);
                }
            }
        }
        let n = self.links.len();
        let mut done = vec![false; n];
        let mut stats: Vec<Option<NodeStatsMsg>> = vec![None; n];
        // Results are kept per node so a node lost mid-collection can have
        // its partial rows discarded and re-collected (reconnect) or
        // dropped (degrade) without double-counting.
        let mut results_per_node: Vec<Vec<Record>> = vec![Vec::new(); n];
        let deadline = Instant::now() + self.node_timeout;
        self.reset_liveness();
        // Collection is event-driven like `await_acks`, with a periodic
        // broken-writer rescan (no pings are sent during finish: nodes
        // are already streaming results, their traffic is the liveness
        // signal).
        let mut timers: DeadlineQueue<WakeKey> = DeadlineQueue::new();
        timers.arm(WakeKey::Heartbeat, Instant::now() + HEARTBEAT_EVERY);
        while (0..n).any(|i| self.alive[i] && !done[i]) {
            let mut lost_now: Vec<(u32, String)> = self.broken_links();
            if Instant::now() >= deadline {
                return Err(DeployError::NodeTimeout {
                    waited_ms: self.node_timeout.as_millis() as u64,
                    registered: done.iter().filter(|d| **d).count() as u32,
                    expected: n as u32,
                });
            }
            let ev = if lost_now.is_empty() {
                let now = Instant::now();
                for key in timers.due(now) {
                    if key == WakeKey::Heartbeat {
                        timers.arm(WakeKey::Heartbeat, now + HEARTBEAT_EVERY);
                    }
                }
                let wake = timers
                    .next_deadline()
                    .expect("the rescan timer stays armed")
                    .min(deadline);
                match self.events.lock().recv_deadline(wake) {
                    Ok(ev) => Some(ev),
                    // Deadline hit: loop around to rescan broken links
                    // and re-check the overall node timeout.
                    Err(_) => continue,
                }
            } else {
                None
            };
            match ev {
                None => {}
                Some(NodeEvent::Frame {
                    node,
                    gen,
                    kind,
                    body,
                }) => {
                    let i = node as usize;
                    if gen != self.gens[i] || !self.alive[i] {
                        continue;
                    }
                    self.last_heard[i] = Instant::now();
                    match kind {
                        FrameKind::Progress => self.on_progress(node, &body, last_epoch)?,
                        FrameKind::Pong => {}
                        FrameKind::Ckpt => self.staged[i].push(body),
                        FrameKind::Results => {
                            let batch =
                                streamkit::encode::decode_batch(self.final_schema.clone(), body)
                                    .map_err(|e| DeployError::NodeFailed {
                                        node,
                                        reason: format!("results frame undecodable: {e}"),
                                    })?;
                            results_per_node[i].extend(batch.to_records());
                        }
                        FrameKind::NodeStats => {
                            let msg: NodeStatsMsg = from_body(&body)
                                .map_err(|e| DeployError::NodeFailed { node, reason: e })?;
                            if msg.node_id != node {
                                return Err(DeployError::NodeFailed {
                                    node,
                                    reason: format!("stats claim node {}", msg.node_id),
                                });
                            }
                            stats[i] = Some(msg);
                        }
                        FrameKind::Done => {
                            if stats[i].is_none() {
                                return Err(DeployError::NodeFailed {
                                    node,
                                    reason: "Done before NodeStats".to_string(),
                                });
                            }
                            done[i] = true;
                        }
                        other => {
                            lost_now
                                .push((node, format!("unexpected {other:?} frame during finish")));
                        }
                    }
                }
                Some(NodeEvent::Broken { node, gen, error }) => {
                    let i = node as usize;
                    if gen != self.gens[i] || !self.alive[i] {
                        continue;
                    }
                    lost_now.push((node, error));
                }
            }
            for (node, reason) in lost_now {
                let i = node as usize;
                if !self.alive[i] {
                    continue;
                }
                self.handle_loss(node, last_epoch, &reason)?;
                // Whatever the node delivered so far is void: a
                // reconnector re-finishes from its restored state, a
                // degraded node's rows are gone by policy.
                results_per_node[i].clear();
                stats[i] = None;
                done[i] = false;
            }
        }

        // Every surviving node must have acked every announced boundary —
        // the exactness guarantee that no epoch's traffic went missing.
        if self.epochs_sent > 0 {
            for i in 0..n {
                if self.alive[i] && self.acked_epoch[i] != Some(last_epoch) {
                    return Err(DeployError::NodeFailed {
                        node: i as u32,
                        reason: format!(
                            "acked through epoch {:?}, expected {last_epoch}",
                            self.acked_epoch[i]
                        ),
                    });
                }
            }
        }

        let stats = stats
            .into_iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                Some(msg) => msg,
                // Degraded (or reassigned-away) nodes report nothing; their
                // last checkpointed counters stand in for the lost shards.
                None => NodeStatsMsg {
                    node_id: i as u32,
                    shards: self.degraded_from[i]
                        .iter()
                        .filter_map(|s| self.ckpt_counters.get(s).cloned())
                        .collect(),
                },
            })
            .collect();

        let n_shards = self.routes.len();
        let mut shard_completeness = vec![1.0f64; n_shards];
        if self.epochs_sent > 0 {
            for (&s, &covered) in &self.degraded_covered {
                shard_completeness[s as usize] = covered as f64 / self.epochs_sent as f64;
            }
        }

        for i in 0..n {
            self.retire_link(i);
        }
        let node_wire_bytes = (0..n)
            .map(|i| {
                self.retired_tx[i]
                    + self.handshake_tx[i]
                    + self.rx_counters[i].load(Ordering::Relaxed)
            })
            .collect();
        Ok(RemoteFinish {
            results: results_per_node.into_iter().flatten().collect(),
            stats,
            node_wire_bytes,
            incidents: std::mem::take(&mut self.incidents),
            replay_bytes: self.replay_bytes,
            heartbeats_sent: self.heartbeats_sent,
            shard_completeness,
        })
    }
}

impl Drop for RemoteCluster {
    fn drop(&mut self) {
        for link in self.links.iter_mut().flatten() {
            link.close();
        }
        // Reader threads exit on their own once the peer sockets close;
        // detach rather than block an error path on a hung node.
        for reader in &mut self.readers {
            drop(reader.take());
        }
    }
}

/// Probes an admitted-but-idle connection for death without consuming
/// data: a zero-length peek or a hard error means the peer is gone.
fn peer_disconnected(stream: &TcpStream) -> Option<String> {
    if stream.set_nonblocking(true).is_err() {
        return Some("admitted socket unusable".to_string());
    }
    let mut probe = [0u8; 1];
    let verdict = match stream.peek(&mut probe) {
        Ok(0) => Some("connection closed during admission".to_string()),
        Ok(_) => None,
        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => None,
        Err(e) => Some(format!("connection errored during admission: {e}")),
    };
    let _ = stream.set_nonblocking(false);
    verdict
}

/// Runs the handshake on one accepted connection.
///
/// Returns `Ok(true)` when a node was admitted into a free slot,
/// `Ok(false)` when the connection was not speaking the protocol and was
/// dropped, and `Err` on protocol-level failures that abort the deployment.
fn admit(
    stream: TcpStream,
    peer: &str,
    spec: &DeploymentSpec,
    workload: &RemoteWorkload,
    n_shards: usize,
    n_nodes: usize,
    admitted: &mut [Option<AdmittedNode>],
) -> Result<bool, DeployError> {
    let fail = |reason: String| DeployError::HandshakeFailed {
        peer: peer.to_string(),
        reason,
    };
    let io_fail = |what: &str| {
        let what = what.to_string();
        move |e: std::io::Error| DeployError::HandshakeFailed {
            peer: peer.to_string(),
            reason: format!("{what}: {e}"),
        }
    };
    stream
        .set_nonblocking(false)
        .map_err(io_fail("set_nonblocking"))?;
    stream
        .set_read_timeout(Some(spec.handshake_timeout))
        .map_err(io_fail("set_read_timeout"))?;
    let _ = stream.set_nodelay(true);
    let clone = stream.try_clone().map_err(io_fail("clone stream"))?;
    let mut reader = FrameReader::new(clone);

    let (kind, body) = match reader.read_frame() {
        Ok(frame) => frame,
        Err(TransportError::VersionMismatch { got, want }) => {
            return Err(fail(format!(
                "protocol version mismatch: peer speaks v{got}, coordinator wants v{want}"
            )));
        }
        // Not our protocol (garbage, scanners, half-open probes): drop the
        // connection and keep admitting.
        Err(_) => return Ok(false),
    };
    if kind != FrameKind::Register {
        return Ok(false);
    }
    let reg: Register = from_body(&body).map_err(fail)?;
    let mut handshake_tx = 0u64;
    if reg.token != spec.auth_token {
        let _ = write_frame(
            &stream,
            FrameKind::Reject,
            &to_body(&Reject {
                reason: "authentication failed".to_string(),
            }),
        );
        return Err(fail("authentication failed (bad token)".to_string()));
    }
    let node_id = match reg.node_id {
        Some(id) if (id as usize) < n_nodes && admitted[id as usize].is_none() => id,
        Some(id) => {
            let reason = if (id as usize) >= n_nodes {
                format!("node id {id} out of range (cluster has {n_nodes} slots)")
            } else {
                format!("node id {id} already registered")
            };
            let _ = write_frame(
                &stream,
                FrameKind::Reject,
                &to_body(&Reject {
                    reason: reason.clone(),
                }),
            );
            return Err(fail(reason));
        }
        None => admitted
            .iter()
            .position(std::option::Option::is_none)
            .expect("admission loop only runs with free slots") as u32,
    };

    handshake_tx += write_frame(&stream, FrameKind::Admit, &to_body(&Admit { node_id }))
        .map_err(io_fail("send Admit"))?;
    let node_spec = NodeSpec {
        node_id,
        n_nodes: n_nodes as u32,
        n_shards: n_shards as u32,
        sources: spec.sources,
        workload: workload.clone(),
        rules: spec.rules.clone(),
        checkpoint_interval: spec.checkpoint_interval,
    };
    handshake_tx += write_frame(&stream, FrameKind::Spec, &to_body(&node_spec))
        .map_err(io_fail("send Spec"))?;

    // A registered node failing to come Ready is fatal: its shard slice
    // has nowhere else to go.
    match reader.read_frame() {
        Ok((FrameKind::Ready, _)) => {}
        Ok((other, _)) => return Err(fail(format!("expected Ready, got {other:?}"))),
        Err(e) => return Err(fail(format!("node {node_id} never came Ready: {e}"))),
    }
    stream
        .set_read_timeout(None)
        .map_err(io_fail("clear read timeout"))?;
    admitted[node_id as usize] = Some(AdmittedNode {
        stream,
        reader,
        handshake_tx,
    });
    Ok(true)
}

/// Writes one frame synchronously (handshake only — the run-time path goes
/// through [`Link`]'s writer thread). Returns the framed size.
fn write_frame(mut stream: &TcpStream, kind: FrameKind, body: &[u8]) -> std::io::Result<u64> {
    let frame = encode_frame(kind, body);
    stream.write_all(&frame)?;
    Ok(frame.len() as u64)
}
