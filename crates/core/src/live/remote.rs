//! Coordinator side of the TCP stream-processor tier.
//!
//! [`RemoteCluster`] replaces the in-process SP node threads of
//! [`super::session::LiveSession`] when a deployment selects
//! [`TransportKind::Tcp`](crate::deploy::TransportKind): it listens on the
//! configured endpoint, admits `jarvis-node` registrations (shared-token
//! auth, versioned handshake), pushes each node its [`NodeSpec`] slice, and
//! then carries the exact same [`NetPayload`] shard traffic the channel
//! transport carries — untouched `netwire` envelopes inside
//! [`FrameKind::Shard`] frames — so digests are bit-identical to the
//! in-process run. Per-link socket byte counters (TX from the writer
//! thread, RX from the frame reader) feed `RunReport.node_stats` with
//! *actual* wire traffic rather than modelled sizes.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::TryRecvError;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver};
use streamkit::record::Record;
use streamkit::schema::SchemaRef;

use crate::deploy::remote::{
    from_body, to_body, Admit, NodeSpec, NodeStatsMsg, Progress, Register, Reject,
};
use crate::deploy::{DeployError, DeploymentSpec};
use crate::engine::netwire::encode_shard_payload;
use crate::engine::transport::{encode_frame, FrameKind, FrameReader, Link, TransportError};
use crate::engine::NetPayload;

/// Poll interval while waiting on the nonblocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Poll interval while draining node events against a deadline.
const EVENT_POLL: Duration = Duration::from_millis(2);

/// Events-channel depth (progress frames are tiny; results frames are
/// chunked node-side).
const EVENT_QUEUE: usize = 4096;

/// One admitted node's connection state between handshake and link spawn.
struct AdmittedNode {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
    /// Handshake bytes written before the writer thread took over.
    handshake_tx: u64,
}

/// A frame (or failure) surfaced by a per-node reader thread.
enum NodeEvent {
    Frame {
        node: u32,
        kind: FrameKind,
        body: Bytes,
    },
    Broken {
        node: u32,
        error: String,
    },
}

/// Everything the session needs from the remote tier after `finish`.
pub(crate) struct RemoteFinish {
    /// Merged result rows from every node (order-independent digest).
    pub results: Vec<Record>,
    /// Final per-shard accounting, one message per node, node order.
    pub stats: Vec<NodeStatsMsg>,
    /// Actual socket traffic per node link, TX + RX bytes.
    pub node_wire_bytes: Vec<u64>,
}

/// The coordinator's handle on a fleet of admitted `jarvis-node` executors.
pub(crate) struct RemoteCluster {
    links: Vec<Link>,
    readers: Vec<JoinHandle<()>>,
    rx_counters: Vec<Arc<AtomicU64>>,
    handshake_tx: Vec<u64>,
    events: Receiver<NodeEvent>,
    /// Epochs announced via `epoch_end` (each node must ack every one).
    epochs_sent: u64,
    /// Per-node count of `Progress` acks seen so far.
    progress_seen: Vec<u64>,
    /// First transport failure observed per node, if any.
    broken: Vec<Option<String>>,
    node_timeout: Duration,
    final_schema: SchemaRef,
}

impl RemoteCluster {
    /// Binds the listen endpoint, admits `n_nodes` registrations, pushes
    /// each node its spec slice, and waits for every `Ready`.
    ///
    /// Connections that never speak the protocol (port scanners, garbage)
    /// are dropped and admission continues; protocol-level failures — wrong
    /// token, version mismatch, unusable node id — abort the deployment
    /// with a typed error.
    pub(crate) fn listen(
        spec: &DeploymentSpec,
        n_shards: usize,
        n_nodes: usize,
        final_schema: SchemaRef,
    ) -> Result<RemoteCluster, DeployError> {
        let addr = spec
            .listen_addr
            .expect("validated TCP spec carries a listen endpoint");
        let workload = spec
            .workload
            .remote_workload()
            .expect("validated TCP spec carries a remotable workload");
        let listener = TcpListener::bind(addr).map_err(|e| DeployError::InvalidEndpoint {
            got: format!("{addr}: bind failed: {e}"),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| DeployError::InvalidEndpoint {
                got: format!("{addr}: {e}"),
            })?;

        let deadline = Instant::now() + spec.node_timeout;
        let mut admitted: Vec<Option<AdmittedNode>> = (0..n_nodes).map(|_| None).collect();
        let mut registered = 0u32;
        while (registered as usize) < n_nodes {
            if Instant::now() >= deadline {
                return Err(DeployError::NodeTimeout {
                    waited_ms: spec.node_timeout.as_millis() as u64,
                    registered,
                    expected: n_nodes as u32,
                });
            }
            let (stream, peer) = match listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(e) => {
                    return Err(DeployError::HandshakeFailed {
                        peer: addr.to_string(),
                        reason: format!("accept failed: {e}"),
                    })
                }
            };
            let peer = peer.to_string();
            if admit(
                stream,
                &peer,
                spec,
                &workload,
                n_shards,
                n_nodes,
                &mut admitted,
            )? {
                registered += 1;
            }
        }

        // Every slot is filled: spawn the writer links and reader threads.
        let (ev_tx, events) = bounded::<NodeEvent>(EVENT_QUEUE);
        let mut links = Vec::with_capacity(n_nodes);
        let mut readers = Vec::with_capacity(n_nodes);
        let mut rx_counters = Vec::with_capacity(n_nodes);
        let mut handshake_tx = Vec::with_capacity(n_nodes);
        for (id, slot) in admitted.into_iter().enumerate() {
            let node = slot.expect("all slots admitted");
            rx_counters.push(node.reader.counter());
            handshake_tx.push(node.handshake_tx);
            links.push(Link::spawn(node.stream));
            let tx = ev_tx.clone();
            let mut reader = node.reader;
            readers.push(thread::spawn(move || loop {
                match reader.read_frame() {
                    Ok((kind, body)) => {
                        let done = kind == FrameKind::Done;
                        if tx
                            .send(NodeEvent::Frame {
                                node: id as u32,
                                kind,
                                body,
                            })
                            .is_err()
                        {
                            return;
                        }
                        if done {
                            return;
                        }
                    }
                    Err(e) => {
                        let _ = tx.send(NodeEvent::Broken {
                            node: id as u32,
                            error: e.to_string(),
                        });
                        return;
                    }
                }
            }));
        }
        drop(ev_tx);

        Ok(RemoteCluster {
            links,
            readers,
            rx_counters,
            handshake_tx,
            events,
            epochs_sent: 0,
            progress_seen: vec![0; n_nodes],
            broken: vec![None; n_nodes],
            node_timeout: spec.node_timeout,
            final_schema,
        })
    }

    /// The per-node writer links, node order (the dispatcher thread frames
    /// shard traffic onto these directly).
    pub(crate) fn links(&self) -> &[Link] {
        &self.links
    }

    /// Ships one shard payload to its owner node. Returns the framed wire
    /// size (what actually enters the socket, header included).
    pub(crate) fn send_shard(&self, owner: usize, payload: &NetPayload) -> u64 {
        let body = encode_shard_payload(payload);
        self.links[owner].send(FrameKind::Shard, &body)
    }

    /// Announces an epoch boundary to every node and drains any progress
    /// acks that have arrived so far (non-blocking; full reconciliation
    /// happens in [`RemoteCluster::finish`]).
    pub(crate) fn epoch_end(&mut self, epoch: u64) {
        for link in &self.links {
            link.send(FrameKind::EpochEnd, &epoch.to_le_bytes());
        }
        self.epochs_sent += 1;
        while let Ok(ev) = self.events.try_recv() {
            self.note_epoch_event(ev);
        }
    }

    /// Records an event observed between epochs. Only `Progress` frames are
    /// legal here; anything else marks the node broken.
    fn note_epoch_event(&mut self, ev: NodeEvent) {
        match ev {
            NodeEvent::Frame {
                node,
                kind: FrameKind::Progress,
                body,
            } => match from_body::<Progress>(&body) {
                Ok(p) if p.node_id == node => self.progress_seen[node as usize] += 1,
                Ok(p) => {
                    self.mark_broken(node, format!("progress claims node {}", p.node_id));
                }
                Err(e) => self.mark_broken(node, e),
            },
            NodeEvent::Frame { node, kind, .. } => {
                self.mark_broken(node, format!("unexpected {kind:?} frame mid-run"));
            }
            NodeEvent::Broken { node, error } => self.mark_broken(node, error),
        }
    }

    fn mark_broken(&mut self, node: u32, reason: String) {
        let slot = &mut self.broken[node as usize];
        if slot.is_none() {
            *slot = Some(reason);
        }
    }

    /// Sends `Finish` to every node, collects results / stats / `Done` from
    /// all of them (bounded by the node timeout), reconciles progress acks,
    /// and returns the merged rows plus per-link socket byte totals.
    pub(crate) fn finish(mut self) -> Result<RemoteFinish, DeployError> {
        for link in &self.links {
            link.send(FrameKind::Finish, &[]);
        }
        let n = self.links.len();
        let mut done = vec![false; n];
        let mut stats: Vec<Option<NodeStatsMsg>> = vec![None; n];
        let mut results = Vec::new();
        let deadline = Instant::now() + self.node_timeout;
        while done.iter().any(|d| !d) {
            if let Some((node, reason)) = self
                .broken
                .iter()
                .enumerate()
                .find_map(|(i, b)| b.as_ref().map(|r| (i, r.clone())))
            {
                return Err(DeployError::NodeFailed {
                    node: node as u32,
                    reason,
                });
            }
            if Instant::now() >= deadline {
                return Err(DeployError::NodeTimeout {
                    waited_ms: self.node_timeout.as_millis() as u64,
                    registered: done.iter().filter(|d| **d).count() as u32,
                    expected: n as u32,
                });
            }
            let ev = match self.events.try_recv() {
                Ok(ev) => ev,
                Err(TryRecvError::Empty) => {
                    thread::sleep(EVENT_POLL);
                    continue;
                }
                Err(TryRecvError::Disconnected) => {
                    let node = done.iter().position(|d| !d).unwrap_or(0) as u32;
                    return Err(DeployError::NodeFailed {
                        node,
                        reason: "link closed before Done".to_string(),
                    });
                }
            };
            match ev {
                NodeEvent::Frame {
                    node,
                    kind: FrameKind::Progress,
                    ..
                } => {
                    // Epoch acks still in flight when Finish went out.
                    self.progress_seen[node as usize] += 1;
                }
                NodeEvent::Frame {
                    node,
                    kind: FrameKind::Results,
                    body,
                } => {
                    let batch = streamkit::encode::decode_batch(self.final_schema.clone(), body)
                        .map_err(|e| DeployError::NodeFailed {
                            node,
                            reason: format!("results frame undecodable: {e}"),
                        })?;
                    results.extend(batch.to_records());
                }
                NodeEvent::Frame {
                    node,
                    kind: FrameKind::NodeStats,
                    body,
                } => {
                    let msg: NodeStatsMsg = from_body(&body)
                        .map_err(|e| DeployError::NodeFailed { node, reason: e })?;
                    if msg.node_id != node {
                        return Err(DeployError::NodeFailed {
                            node,
                            reason: format!("stats claim node {}", msg.node_id),
                        });
                    }
                    stats[node as usize] = Some(msg);
                }
                NodeEvent::Frame {
                    node,
                    kind: FrameKind::Done,
                    ..
                } => {
                    if stats[node as usize].is_none() {
                        return Err(DeployError::NodeFailed {
                            node,
                            reason: "Done before NodeStats".to_string(),
                        });
                    }
                    done[node as usize] = true;
                }
                NodeEvent::Frame { node, kind, .. } => {
                    return Err(DeployError::NodeFailed {
                        node,
                        reason: format!("unexpected {kind:?} frame during finish"),
                    });
                }
                NodeEvent::Broken { node, error } => {
                    return Err(DeployError::NodeFailed {
                        node,
                        reason: error,
                    });
                }
            }
        }

        // Every node must have acked every announced epoch boundary.
        for (node, seen) in self.progress_seen.iter().enumerate() {
            if *seen != self.epochs_sent {
                return Err(DeployError::NodeFailed {
                    node: node as u32,
                    reason: format!("acked {seen} of {} epoch boundaries", self.epochs_sent),
                });
            }
        }

        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
        let mut node_wire_bytes = Vec::with_capacity(n);
        for (i, link) in self.links.iter_mut().enumerate() {
            link.close();
            node_wire_bytes.push(
                link.bytes_sent()
                    + self.handshake_tx[i]
                    + self.rx_counters[i].load(Ordering::Relaxed),
            );
        }
        Ok(RemoteFinish {
            results,
            stats: stats
                .into_iter()
                .map(|s| s.expect("done implies stats"))
                .collect(),
            node_wire_bytes,
        })
    }
}

impl Drop for RemoteCluster {
    fn drop(&mut self) {
        for link in &mut self.links {
            link.close();
        }
        // Reader threads exit on their own once the peer sockets close;
        // detach rather than block an error path on a hung node.
        self.readers.drain(..).for_each(drop);
    }
}

/// Runs the handshake on one accepted connection.
///
/// Returns `Ok(true)` when a node was admitted into a free slot,
/// `Ok(false)` when the connection was not speaking the protocol and was
/// dropped, and `Err` on protocol-level failures that abort the deployment.
fn admit(
    stream: TcpStream,
    peer: &str,
    spec: &DeploymentSpec,
    workload: &crate::deploy::remote::RemoteWorkload,
    n_shards: usize,
    n_nodes: usize,
    admitted: &mut [Option<AdmittedNode>],
) -> Result<bool, DeployError> {
    let fail = |reason: String| DeployError::HandshakeFailed {
        peer: peer.to_string(),
        reason,
    };
    let io_fail = |what: &str| {
        let what = what.to_string();
        move |e: std::io::Error| DeployError::HandshakeFailed {
            peer: peer.to_string(),
            reason: format!("{what}: {e}"),
        }
    };
    stream
        .set_nonblocking(false)
        .map_err(io_fail("set_nonblocking"))?;
    stream
        .set_read_timeout(Some(spec.handshake_timeout))
        .map_err(io_fail("set_read_timeout"))?;
    let _ = stream.set_nodelay(true);
    let clone = stream.try_clone().map_err(io_fail("clone stream"))?;
    let mut reader = FrameReader::new(clone);

    let (kind, body) = match reader.read_frame() {
        Ok(frame) => frame,
        Err(TransportError::VersionMismatch { got, want }) => {
            return Err(fail(format!(
                "protocol version mismatch: peer speaks v{got}, coordinator wants v{want}"
            )));
        }
        // Not our protocol (garbage, scanners, half-open probes): drop the
        // connection and keep admitting.
        Err(_) => return Ok(false),
    };
    if kind != FrameKind::Register {
        return Ok(false);
    }
    let reg: Register = from_body(&body).map_err(fail)?;
    let mut handshake_tx = 0u64;
    if reg.token != spec.auth_token {
        let _ = write_frame(
            &stream,
            FrameKind::Reject,
            &to_body(&Reject {
                reason: "authentication failed".to_string(),
            }),
        );
        return Err(fail("authentication failed (bad token)".to_string()));
    }
    let node_id = match reg.node_id {
        Some(id) if (id as usize) < n_nodes && admitted[id as usize].is_none() => id,
        Some(id) => {
            let reason = if (id as usize) >= n_nodes {
                format!("node id {id} out of range (cluster has {n_nodes} slots)")
            } else {
                format!("node id {id} already registered")
            };
            let _ = write_frame(
                &stream,
                FrameKind::Reject,
                &to_body(&Reject {
                    reason: reason.clone(),
                }),
            );
            return Err(fail(reason));
        }
        None => admitted
            .iter()
            .position(std::option::Option::is_none)
            .expect("admission loop only runs with free slots") as u32,
    };

    handshake_tx += write_frame(&stream, FrameKind::Admit, &to_body(&Admit { node_id }))
        .map_err(io_fail("send Admit"))?;
    let node_spec = NodeSpec {
        node_id,
        n_nodes: n_nodes as u32,
        n_shards: n_shards as u32,
        sources: spec.sources,
        workload: workload.clone(),
        rules: spec.rules.clone(),
    };
    handshake_tx += write_frame(&stream, FrameKind::Spec, &to_body(&node_spec))
        .map_err(io_fail("send Spec"))?;

    // A registered node failing to come Ready is fatal: its shard slice
    // has nowhere else to go.
    match reader.read_frame() {
        Ok((FrameKind::Ready, _)) => {}
        Ok((other, _)) => return Err(fail(format!("expected Ready, got {other:?}"))),
        Err(e) => return Err(fail(format!("node {node_id} never came Ready: {e}"))),
    }
    stream
        .set_read_timeout(None)
        .map_err(io_fail("clear read timeout"))?;
    admitted[node_id as usize] = Some(AdmittedNode {
        stream,
        reader,
        handshake_tx,
    });
    Ok(true)
}

/// Writes one frame synchronously (handshake only — the run-time path goes
/// through [`Link`]'s writer thread). Returns the framed size.
fn write_frame(mut stream: &TcpStream, kind: FrameKind, body: &[u8]) -> std::io::Result<u64> {
    let frame = encode_frame(kind, body);
    stream.write_all(&frame)?;
    Ok(frame.len() as u64)
}
