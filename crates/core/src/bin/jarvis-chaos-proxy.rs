//! `jarvis-chaos-proxy` — a frame-aware TCP chaos proxy for fault drills.
//!
//! Sits between a `jarvis-node` executor and its coordinator and injects
//! one scheduled fault into the **coordinator → node** direction, the one
//! carrying shard traffic and epoch boundaries. The node dials the proxy;
//! the proxy dials the real coordinator. Node → coordinator bytes are
//! copied verbatim; coordinator → node bytes are re-framed so the fault
//! lands on an exact frame boundary — the same semantics as the
//! in-process fault schedule, so a drill against real processes and a
//! seeded test exercise identical code paths on both peers.
//!
//! ```text
//! jarvis-chaos-proxy --listen 127.0.0.1:47532 --upstream 127.0.0.1:47531 \
//!     --fault sever --at-epoch 3 [--conn 1] [--seed 7]
//! ```
//!
//! Faults: `sever` (shut the socket both ways), `drop` (discard the
//! frame), `corrupt` (flip one body byte — CRC-detectable downstream),
//! `delay:<ms>` (stall before forwarding). Triggers: `--at-frame <n>`
//! (before the n-th forwarded frame, 0-based) or `--at-epoch <k>` (before
//! the k-th `EpochEnd`, so the node acks exactly `k` epochs). `--conn`
//! picks which accepted connection is faulted (1-based, default 1); every
//! other connection is forwarded clean. The fault fires once.

use std::io::{self, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;
use std::thread;
use std::time::Duration;

use jarvis_core::engine::transport::{encode_frame, FrameKind, FrameReader, HEADER_LEN};
use jarvis_core::fault::{splitmix64, FaultKind, FaultTrigger};

fn usage() -> ! {
    eprintln!(
        "usage: jarvis-chaos-proxy --listen <host:port> --upstream <host:port> \
         --fault sever|drop|corrupt|delay:<ms> (--at-frame <n> | --at-epoch <k>) \
         [--conn <n>] [--seed <s>]"
    );
    std::process::exit(2);
}

struct ProxyConfig {
    listen: String,
    upstream: String,
    fault: FaultKind,
    trigger: FaultTrigger,
    /// Which accepted connection gets the fault, 1-based.
    conn: u64,
    seed: u64,
}

fn parse_fault(s: &str) -> FaultKind {
    match s {
        "sever" => FaultKind::Sever,
        "drop" => FaultKind::Drop,
        "corrupt" => FaultKind::Corrupt,
        other => match other.strip_prefix("delay:").map(str::parse::<u64>) {
            Some(Ok(ms)) => FaultKind::Delay(ms),
            _ => {
                eprintln!("--fault: unknown kind {other:?}");
                usage();
            }
        },
    }
}

fn parse_args() -> ProxyConfig {
    let mut listen = None;
    let mut upstream = None;
    let mut fault = None;
    let mut trigger = None;
    let mut conn = 1u64;
    let mut seed = 0u64;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        let parse_u64 = |flag: &str, v: String| {
            v.parse::<u64>().unwrap_or_else(|e| {
                eprintln!("{flag}: {e}");
                usage()
            })
        };
        match flag.as_str() {
            "--listen" => listen = Some(value("--listen")),
            "--upstream" => upstream = Some(value("--upstream")),
            "--fault" => fault = Some(parse_fault(&value("--fault"))),
            "--at-frame" => {
                let n = parse_u64("--at-frame", value("--at-frame"));
                trigger = Some(FaultTrigger::Frame(n));
            }
            "--at-epoch" => {
                let k = parse_u64("--at-epoch", value("--at-epoch"));
                trigger = Some(FaultTrigger::EpochEnd(k));
            }
            "--conn" => conn = parse_u64("--conn", value("--conn")),
            "--seed" => seed = parse_u64("--seed", value("--seed")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let (Some(listen), Some(upstream), Some(fault), Some(trigger)) =
        (listen, upstream, fault, trigger)
    else {
        usage()
    };
    ProxyConfig {
        listen,
        upstream,
        fault,
        trigger,
        conn,
        seed,
    }
}

fn main() -> ExitCode {
    let config = parse_args();
    let listener = match TcpListener::bind(&config.listen) {
        Ok(l) => l,
        Err(e) => {
            eprintln!(
                "jarvis-chaos-proxy: cannot listen on {}: {e}",
                config.listen
            );
            return ExitCode::FAILURE;
        }
    };
    println!(
        "jarvis-chaos-proxy: {} -> {} ({:?} at {:?} on conn {})",
        config.listen, config.upstream, config.fault, config.trigger, config.conn
    );
    let mut accepted = 0u64;
    loop {
        let (client, peer) = match listener.accept() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("jarvis-chaos-proxy: accept failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        // Only relayed connections count towards `--conn`: a node dialling
        // in before the coordinator listens must not consume the armed
        // slot (executors retry until the coordinator is up).
        let upstream = match TcpStream::connect(&config.upstream) {
            Ok(u) => u,
            Err(e) => {
                eprintln!(
                    "jarvis-chaos-proxy: upstream {} unreachable: {e}",
                    config.upstream
                );
                let _ = client.shutdown(Shutdown::Both);
                continue;
            }
        };
        accepted += 1;
        let armed = accepted == config.conn;
        println!(
            "jarvis-chaos-proxy: conn {accepted} from {peer}{}",
            if armed { " [fault armed]" } else { "" }
        );
        let fault = armed.then_some((config.trigger, config.fault));
        let seed = config.seed;
        thread::spawn(move || relay(accepted, client, upstream, fault, seed));
    }
}

/// Runs one proxied connection: a raw node → coordinator copy plus the
/// frame-aligned coordinator → node pump that applies the fault.
fn relay(
    conn: u64,
    client: TcpStream,
    upstream: TcpStream,
    fault: Option<(FaultTrigger, FaultKind)>,
    seed: u64,
) {
    let (Ok(client_r), Ok(upstream_r)) = (client.try_clone(), upstream.try_clone()) else {
        eprintln!("jarvis-chaos-proxy: conn {conn}: stream clone failed");
        return;
    };
    // Node → coordinator: verbatim. A failure on either side ends the
    // relay; the peers' own liveness machinery takes it from there.
    let uplink = thread::spawn(move || {
        let mut from = client_r;
        let mut to = upstream;
        let _ = io::copy(&mut from, &mut to);
        let _ = to.shutdown(Shutdown::Write);
    });
    pump_frames(conn, upstream_r, client, fault, seed);
    let _ = uplink.join();
}

/// Forwards coordinator → node frames one at a time, applying the armed
/// fault exactly once with the same trigger/kind semantics as the
/// in-process writer schedule (the fault fires *before* the matched
/// frame; `corrupt` flips a body byte so the CRC catches it downstream).
fn pump_frames(
    conn: u64,
    upstream: TcpStream,
    client: TcpStream,
    fault: Option<(FaultTrigger, FaultKind)>,
    seed: u64,
) {
    let upstream_half = upstream.try_clone();
    let mut reader = FrameReader::new(upstream);
    let mut out = client;
    let mut pending = fault;
    let mut frame_idx = 0u64;
    let mut epoch_idx = 0u64;
    while let Ok((kind, body)) = reader.read_frame() {
        let is_epoch_end = kind == FrameKind::EpochEnd;
        let fired = pending.is_some_and(|(trigger, _)| match trigger {
            FaultTrigger::Frame(n) => n == frame_idx,
            FaultTrigger::EpochEnd(k) => is_epoch_end && k == epoch_idx,
        });
        frame_idx += 1;
        if is_epoch_end {
            epoch_idx += 1;
        }
        let mut frame = encode_frame(kind, &body).to_vec();
        if fired {
            let (_, kind_fired) = pending.take().expect("fired implies pending");
            println!("jarvis-chaos-proxy: conn {conn}: {kind_fired:?} on {kind:?} frame");
            match kind_fired {
                FaultKind::Drop => continue,
                FaultKind::Delay(ms) => thread::sleep(Duration::from_millis(ms)),
                FaultKind::Corrupt => {
                    let roll = splitmix64(seed ^ frame_idx) as usize;
                    let pos = if frame.len() > HEADER_LEN {
                        HEADER_LEN + roll % (frame.len() - HEADER_LEN)
                    } else {
                        11 + roll % 4
                    };
                    frame[pos] ^= 0x01;
                }
                FaultKind::Sever => {
                    break;
                }
            }
        }
        if out.write_all(&frame).is_err() {
            break;
        }
    }
    // Tear both sides down so the raw uplink copy unblocks too.
    let _ = out.shutdown(Shutdown::Both);
    if let Ok(upstream) = upstream_half {
        let _ = upstream.shutdown(Shutdown::Both);
    }
}
