//! `jarvis-node` — a remote stream-processor executor.
//!
//! Dials a coordinator (a `Deployment` running the Live backend with
//! `TransportKind::Tcp`), authenticates with the shared token, executes the
//! shard slice it is assigned, and streams results back. Exits 0 once the
//! run completes, non-zero on any failure.
//!
//! ```text
//! jarvis-node --coordinator 127.0.0.1:47531 --token secret [--node-id 1]
//!             [--connect-timeout-secs 10] [--reconnect [--max-reconnects 5]]
//! ```
//!
//! With `--reconnect`, a transport failure mid-run re-dials the coordinator
//! (capped exponential backoff, per-node jitter) and re-registers under the
//! same node id; the coordinator re-seeds the node from its last checkpoint
//! and replays post-checkpoint traffic, so the run's results stay exact.

use std::process::ExitCode;
use std::time::Duration;

use jarvis_core::node::{run_node, NodeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: jarvis-node --coordinator <host:port> --token <token> \
         [--node-id <n>] [--connect-timeout-secs <s>] \
         [--reconnect] [--max-reconnects <n>]"
    );
    std::process::exit(2);
}

fn parse_args() -> NodeConfig {
    let mut coordinator = None;
    let mut token = None;
    let mut node_id = None;
    let mut connect_timeout = Duration::from_secs(10);
    let mut reconnect = false;
    let mut max_reconnects = 5u32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--coordinator" => coordinator = Some(value("--coordinator")),
            "--token" => token = Some(value("--token")),
            "--node-id" => match value("--node-id").parse::<u32>() {
                Ok(id) => node_id = Some(id),
                Err(e) => {
                    eprintln!("--node-id: {e}");
                    usage();
                }
            },
            "--connect-timeout-secs" => match value("--connect-timeout-secs").parse::<u64>() {
                Ok(s) => connect_timeout = Duration::from_secs(s),
                Err(e) => {
                    eprintln!("--connect-timeout-secs: {e}");
                    usage();
                }
            },
            "--reconnect" => reconnect = true,
            "--max-reconnects" => match value("--max-reconnects").parse::<u32>() {
                Ok(n) => max_reconnects = n,
                Err(e) => {
                    eprintln!("--max-reconnects: {e}");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(coordinator) = coordinator else {
        usage()
    };
    let Some(token) = token else { usage() };
    NodeConfig {
        coordinator,
        token,
        node_id,
        connect_timeout,
        reconnect,
        max_reconnects,
    }
}

fn main() -> ExitCode {
    let config = parse_args();
    match run_node(&config) {
        Ok(summary) => {
            println!(
                "jarvis-node {}: {} epochs, {} shard frames, {} result rows, {} reconnects",
                summary.node_id,
                summary.epochs,
                summary.shard_frames,
                summary.result_rows,
                summary.reconnects
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jarvis-node: {e}");
            ExitCode::FAILURE
        }
    }
}
