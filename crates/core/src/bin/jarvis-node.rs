//! `jarvis-node` — a remote stream-processor executor.
//!
//! Dials a coordinator (a `Deployment` running the Live backend with
//! `TransportKind::Tcp`), authenticates with the shared token, executes the
//! shard slice it is assigned, and streams results back. Exits 0 once the
//! run completes, non-zero on any failure.
//!
//! ```text
//! jarvis-node --coordinator 127.0.0.1:47531 --token secret [--node-id 1]
//!             [--connect-timeout-secs 10]
//! ```

use std::process::ExitCode;
use std::time::Duration;

use jarvis_core::node::{run_node, NodeConfig};

fn usage() -> ! {
    eprintln!(
        "usage: jarvis-node --coordinator <host:port> --token <token> \
         [--node-id <n>] [--connect-timeout-secs <s>]"
    );
    std::process::exit(2);
}

fn parse_args() -> NodeConfig {
    let mut coordinator = None;
    let mut token = None;
    let mut node_id = None;
    let mut connect_timeout = Duration::from_secs(10);
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value");
                usage()
            })
        };
        match flag.as_str() {
            "--coordinator" => coordinator = Some(value("--coordinator")),
            "--token" => token = Some(value("--token")),
            "--node-id" => match value("--node-id").parse::<u32>() {
                Ok(id) => node_id = Some(id),
                Err(e) => {
                    eprintln!("--node-id: {e}");
                    usage();
                }
            },
            "--connect-timeout-secs" => match value("--connect-timeout-secs").parse::<u64>() {
                Ok(s) => connect_timeout = Duration::from_secs(s),
                Err(e) => {
                    eprintln!("--connect-timeout-secs: {e}");
                    usage();
                }
            },
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    let Some(coordinator) = coordinator else {
        usage()
    };
    let Some(token) = token else { usage() };
    NodeConfig {
        coordinator,
        token,
        node_id,
        connect_timeout,
    }
}

fn main() -> ExitCode {
    let config = parse_args();
    match run_node(&config) {
        Ok(summary) => {
            println!(
                "jarvis-node {}: {} epochs, {} shard frames, {} result rows",
                summary.node_id, summary.epochs, summary.shard_frames, summary.result_rows
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("jarvis-node: {e}");
            ExitCode::FAILURE
        }
    }
}
