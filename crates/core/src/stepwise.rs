//! StepWise-Adapt (paper §IV-D).
//!
//! The hybrid adaptation algorithm at the heart of Jarvis:
//!
//! 1. **Model-based step** — solve the load-factor LP (Eq. 3) with the
//!    profiled per-operator costs and relay ratios to get near-optimal
//!    initial load factors.
//! 2. **Model-agnostic step** — observe the query state each epoch and
//!    fine-tune one load factor at a time: when *idle*, raise the
//!    highest-priority operator (lowest relay ratio — most data reduction
//!    per record, the FFD-inspired rule); when *congested*, lower the
//!    lowest-priority operator. Each adjustment runs a binary search over
//!    load factors discretised to [`crate::calibration::LOAD_FACTOR_GRANULARITY`].

use jarvis_lp::loadfactor::{solve_load_factors, LoadFactorProblem};
use serde::{Deserialize, Serialize};

use crate::proxy::QueryState;

/// Operator priority rule for fine-tuning (§IV-D leaves cost-aware priority
/// as future work; both are implemented for the ablation bench).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PriorityRule {
    /// Lower relay ratio ⇒ higher priority (the paper's rule).
    RelayRatio,
    /// Higher data reduction per unit compute ⇒ higher priority.
    CostAware,
}

/// How fine-tuning moves through the discretised load-factor space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SearchRule {
    /// Binary search over the remaining interval (the paper's choice,
    /// §IV-D: "a binary search over discretized load factor values to
    /// further improve convergence time").
    Binary,
    /// Fixed-size steps (the ablation baseline: O(1/step) epochs).
    Linear {
        /// Step size per epoch.
        step: f64,
    },
}

/// StepWise-Adapt configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StepWiseConfig {
    /// Use the LP to initialise load factors after profiling ("LP init").
    pub use_lp_init: bool,
    /// Iteratively fine-tune after initialisation.
    pub use_fine_tuning: bool,
    /// Discretisation step for the search.
    pub granularity: f64,
    /// Priority rule.
    pub priority: PriorityRule,
    /// Search rule (binary vs linear ablation).
    pub search: SearchRule,
}

impl Default for StepWiseConfig {
    fn default() -> Self {
        StepWiseConfig {
            use_lp_init: true,
            use_fine_tuning: true,
            granularity: crate::calibration::LOAD_FACTOR_GRANULARITY,
            priority: PriorityRule::RelayRatio,
            search: SearchRule::Binary,
        }
    }
}

impl StepWiseConfig {
    /// The paper's "LP only" ablation (§VI-C).
    pub fn lp_only() -> StepWiseConfig {
        StepWiseConfig {
            use_fine_tuning: false,
            ..Default::default()
        }
    }

    /// The paper's "w/o LP-init" ablation (§VI-C): pure model-agnostic
    /// fine-tuning from zero load factors.
    pub fn without_lp_init() -> StepWiseConfig {
        StepWiseConfig {
            use_lp_init: false,
            ..Default::default()
        }
    }
}

/// Estimates produced by a Profile epoch (paper §IV-C: operator compute cost,
/// stream-size reduction, and available compute budget).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileEstimates {
    /// Measured per-record cost per operator, µs.
    pub cost_us: Vec<f64>,
    /// Measured byte relay ratio per operator (output bytes / input bytes).
    pub relay_bytes: Vec<f64>,
    /// Measured record relay ratio per operator (output records / input).
    pub relay_count: Vec<f64>,
    /// Records entering the query per epoch.
    pub records_per_epoch: f64,
    /// Compute budget observed for the epoch, µs.
    pub budget_us: f64,
}

impl ProfileEstimates {
    /// Number of operators profiled.
    pub fn len(&self) -> usize {
        self.cost_us.len()
    }

    /// True when no operators were profiled.
    pub fn is_empty(&self) -> bool {
        self.cost_us.is_empty()
    }
}

/// An in-progress binary search on one operator's load factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Search {
    op: usize,
    lo: f64,
    hi: f64,
    /// True when raising (query was idle), false when lowering (congested).
    raising: bool,
}

/// The StepWise-Adapt engine.
#[derive(Debug, Clone)]
pub struct StepWiseAdapt {
    cfg: StepWiseConfig,
    /// Priority-ordered operator indices (highest priority first).
    priorities: Vec<usize>,
    search: Option<Search>,
    /// Count of fine-tuning steps taken since the last init (diagnostics).
    steps: u64,
}

impl StepWiseAdapt {
    /// Creates the adapter for a query of `ops` operators.
    pub fn new(cfg: StepWiseConfig, ops: usize) -> StepWiseAdapt {
        StepWiseAdapt {
            cfg,
            // Until profiled, assume downstream operators reduce most
            // (aggregations sit at the end of monitoring chains).
            priorities: (0..ops).rev().collect(),
            search: None,
            steps: 0,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &StepWiseConfig {
        &self.cfg
    }

    /// Fine-tuning steps since the last [`StepWiseAdapt::init_plan`].
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Current priority order (highest first).
    pub fn priorities(&self) -> &[usize] {
        &self.priorities
    }

    /// Recomputes operator priorities from estimates.
    pub fn set_priorities(&mut self, est: &ProfileEstimates) {
        let mut idx: Vec<usize> = (0..est.len()).collect();
        match self.cfg.priority {
            PriorityRule::RelayRatio => {
                idx.sort_by(|&a, &b| {
                    est.relay_bytes[a]
                        .partial_cmp(&est.relay_bytes[b])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            PriorityRule::CostAware => {
                let score = |i: usize| {
                    let reduction = 1.0 - est.relay_bytes[i].min(1.0);
                    reduction / est.cost_us[i].max(1e-6)
                };
                idx.sort_by(|&a, &b| {
                    score(b)
                        .partial_cmp(&score(a))
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            }
        }
        self.priorities = idx;
    }

    /// Computes the initial load factors for a fresh Adapt phase: the LP
    /// solution when `use_lp_init`, all-zero otherwise (the w/o-LP-init
    /// ablation starts from "everything drains").
    pub fn init_plan(&mut self, est: &ProfileEstimates) -> Vec<f64> {
        self.set_priorities(est);
        self.search = None;
        self.steps = 0;
        if !self.cfg.use_lp_init {
            return vec![0.0; est.len()];
        }
        let problem = LoadFactorProblem {
            relay: est.relay_bytes.clone(),
            cost_us: est.cost_us.clone(),
            records: est.records_per_epoch,
            budget_us: est.budget_us,
        };
        match solve_load_factors(&problem) {
            Ok(sol) => sol
                .load_factors
                .iter()
                .map(|p| quantize(*p, self.cfg.granularity))
                .collect(),
            Err(_) => vec![0.0; est.len()],
        }
    }

    /// One fine-tuning step. Mutates `p` in place and returns `true` when a
    /// load factor changed (the caller should keep adapting) or `false` when
    /// there is nothing further to adjust for the observed state.
    pub fn fine_tune(&mut self, p: &mut [f64], state: QueryState) -> bool {
        if !self.cfg.use_fine_tuning {
            return false;
        }
        match state {
            QueryState::Stable => {
                // Converged: settle any open search at its current value.
                self.search = None;
                false
            }
            QueryState::Idle => self.step(p, true),
            QueryState::Congested => self.step(p, false),
        }
    }

    fn step(&mut self, p: &mut [f64], raising: bool) -> bool {
        let g = self.cfg.granularity;
        // Continue or redirect the open search: an idle signal makes the
        // current value a feasible lower bound, a congested signal an upper
        // bound — regardless of which direction the search started in.
        if let Some(mut s) = self.search.take() {
            if raising {
                s.lo = p[s.op];
            } else {
                s.hi = p[s.op];
            }
            s.raising = raising;
            if s.hi - s.lo > g {
                let mid = match self.cfg.search {
                    SearchRule::Binary => quantize(0.5 * (s.lo + s.hi), g),
                    SearchRule::Linear { step } => {
                        if raising {
                            quantize((p[s.op] + step).min(s.hi), g)
                        } else {
                            quantize((p[s.op] - step).max(s.lo), g)
                        }
                    }
                };
                if (mid - p[s.op]).abs() > 1e-12 {
                    p[s.op] = mid;
                    self.steps += 1;
                    self.search = Some(s);
                    return true;
                }
            }
            // Interval exhausted: settle at a safe bound and fall through to
            // pick the next operator.
            let settled = if raising { s.lo } else { s.hi };
            if (p[s.op] - settled).abs() > 1e-12 {
                p[s.op] = settled;
                self.steps += 1;
                return true;
            }
        }

        // Pick the next operator to adjust: when idle, highest priority
        // (lowest relay) with headroom; when congested, lowest priority with
        // load to shed. Only *effective* operators qualify — ones whose
        // upstream proxies forward at least some records, since adjusting a
        // starved operator changes nothing observable.
        let effective = |op: usize, p: &[f64]| op == 0 || p[..op].iter().all(|&x| x > 1e-12);
        let candidates: Vec<usize> = if raising {
            self.priorities.clone()
        } else {
            self.priorities.iter().rev().copied().collect()
        };
        for op in candidates {
            if op >= p.len() || !effective(op, p) {
                continue;
            }
            if raising && p[op] < 1.0 - 1e-12 {
                return self.start_search(p, op, true);
            }
            if !raising && p[op] > 1e-12 {
                return self.start_search(p, op, false);
            }
        }
        // All priority candidates are starved behind a closed proxy: when
        // raising, open the first closed gate in pipeline order so data can
        // reach the high-priority reducers at all.
        if raising {
            if let Some(op) = (0..p.len()).find(|&i| p[i] <= 1e-12) {
                return self.start_search(p, op, true);
            }
        }
        false
    }

    fn start_search(&mut self, p: &mut [f64], op: usize, raising: bool) -> bool {
        let g = self.cfg.granularity;
        let s = if raising {
            Search {
                op,
                lo: p[op],
                hi: 1.0,
                raising: true,
            }
        } else {
            Search {
                op,
                lo: 0.0,
                hi: p[op],
                raising: false,
            }
        };
        let target = match self.cfg.search {
            SearchRule::Binary => quantize(0.5 * (s.lo + s.hi), g),
            SearchRule::Linear { step } => {
                if raising {
                    quantize(p[op] + step, g)
                } else {
                    quantize(p[op] - step, g)
                }
            }
        };
        let mid = if raising {
            target.max(s.lo + g).min(1.0)
        } else {
            target.min(s.hi - g).max(0.0)
        };
        p[op] = mid;
        self.steps += 1;
        self.search = Some(s);
        true
    }
}

/// Rounds to the nearest multiple of `granularity`, clamped to `[0, 1]`.
fn quantize(p: f64, granularity: f64) -> f64 {
    ((p / granularity).round() * granularity).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimates() -> ProfileEstimates {
        ProfileEstimates {
            cost_us: vec![0.25, 3.25, 23.0],
            relay_bytes: vec![1.0, 0.86, 0.3],
            relay_count: vec![1.0, 0.86, 0.5],
            records_per_epoch: 40_000.0,
            budget_us: 800_000.0,
        }
    }

    #[test]
    fn lp_init_produces_feasible_quantised_plan() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        let p = a.init_plan(&estimates());
        assert_eq!(p.len(), 3);
        for v in &p {
            assert!((0.0..=1.0).contains(v));
            let steps = v / crate::calibration::LOAD_FACTOR_GRANULARITY;
            assert!((steps - steps.round()).abs() < 1e-6, "quantised: {v}");
        }
    }

    #[test]
    fn without_lp_init_starts_from_zero() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::without_lp_init(), 3);
        let p = a.init_plan(&estimates());
        assert_eq!(p, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn priorities_follow_relay_ratio() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        a.set_priorities(&estimates());
        // G+R (relay 0.3) first, then F (0.86), then W (1.0).
        assert_eq!(a.priorities(), &[2, 1, 0]);
    }

    #[test]
    fn cost_aware_priority_prefers_cheap_reducers() {
        let mut est = estimates();
        // Make F reduce a lot for almost nothing: it should outrank G+R.
        est.relay_bytes = vec![1.0, 0.3, 0.25];
        est.cost_us = vec![0.25, 0.5, 40.0];
        let mut a = StepWiseAdapt::new(
            StepWiseConfig {
                priority: PriorityRule::CostAware,
                ..Default::default()
            },
            3,
        );
        a.set_priorities(&est);
        assert_eq!(a.priorities()[0], 1);
    }

    #[test]
    fn idle_from_cold_start_opens_the_pipeline_gate() {
        // From all-zero factors the high-priority G+R receives no records,
        // so the adapter must open the first closed proxy instead.
        let mut a = StepWiseAdapt::new(StepWiseConfig::without_lp_init(), 3);
        let mut p = a.init_plan(&estimates());
        assert!(a.fine_tune(&mut p, QueryState::Idle));
        assert!(p[0] > 0.0, "{p:?}");
        assert_eq!(p[1], 0.0);
        assert_eq!(p[2], 0.0);
    }

    #[test]
    fn idle_raises_highest_priority_first_when_flowing() {
        // With the pipeline open, priority order applies: G+R (lowest relay)
        // moves first.
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        a.set_priorities(&estimates());
        let mut p = vec![1.0, 1.0, 0.25];
        assert!(a.fine_tune(&mut p, QueryState::Idle));
        assert!(p[2] > 0.25, "{p:?}");
        assert_eq!(p[0], 1.0);
        assert_eq!(p[1], 1.0);
    }

    #[test]
    fn congested_lowers_lowest_priority_first() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        a.set_priorities(&estimates());
        let mut p = vec![1.0, 1.0, 1.0];
        assert!(a.fine_tune(&mut p, QueryState::Congested));
        // Lowest priority is op 0 (W, relay 1.0): shed there first.
        assert!(p[0] < 1.0, "{p:?}");
        assert_eq!(p[1], 1.0);
        assert_eq!(p[2], 1.0);
    }

    #[test]
    fn stable_settles_and_reports_no_change() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 3);
        a.set_priorities(&estimates());
        let mut p = vec![1.0, 1.0, 0.5];
        assert!(!a.fine_tune(&mut p, QueryState::Stable));
        assert_eq!(p, vec![1.0, 1.0, 0.5]);
    }

    #[test]
    fn binary_search_converges_in_log_steps() {
        // Simulate an environment where the query is stable iff p[2] ≤ 0.75
        // and idle below that. Count epochs to stabilise.
        let mut a = StepWiseAdapt::new(StepWiseConfig::without_lp_init(), 3);
        let mut p = a.init_plan(&estimates());
        let mut epochs = 0;
        loop {
            let state = if p[2] > 0.75 + 1e-9 {
                QueryState::Congested
            } else if p.iter().all(|&x| x >= 1.0 - 1e-9) || (p[2] - 0.75).abs() < 0.02 {
                QueryState::Stable
            } else {
                QueryState::Idle
            };
            if state == QueryState::Stable {
                break;
            }
            let changed = a.fine_tune(&mut p, state);
            assert!(changed, "adapter gave up at {p:?} in state {state:?}");
            epochs += 1;
            assert!(epochs < 40, "did not converge: p = {p:?}");
        }
        assert!(epochs <= 15, "converged in {epochs} epochs");
        assert!((p[2] - 0.75).abs() <= 0.05, "{p:?}");
    }

    #[test]
    fn idle_with_everything_at_one_is_a_noop() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 2);
        let mut p = vec![1.0, 1.0];
        assert!(!a.fine_tune(&mut p, QueryState::Idle));
    }

    #[test]
    fn congested_with_everything_at_zero_is_a_noop() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::default(), 2);
        let mut p = vec![0.0, 0.0];
        assert!(!a.fine_tune(&mut p, QueryState::Congested));
    }

    #[test]
    fn lp_only_never_fine_tunes() {
        let mut a = StepWiseAdapt::new(StepWiseConfig::lp_only(), 3);
        let mut p = a.init_plan(&estimates());
        let before = p.clone();
        assert!(!a.fine_tune(&mut p, QueryState::Congested));
        assert_eq!(p, before);
    }
}
