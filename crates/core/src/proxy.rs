//! Control proxies (paper §IV-A, §IV-C).
//!
//! A control proxy is the light-weight routing logic in front of each query
//! operator. Per record it decides *forward locally* vs *drain to the
//! stream-processor replica* according to its load factor `p`; per epoch it
//! classifies its operator as Congested / Idle / Stable using the
//! `DrainedThres` and `IdleThres` oscillation guards.
//!
//! Routing is deterministic (error-diffusion on the load factor) so runs are
//! reproducible and the forwarded fraction converges to `p` exactly.

use serde::{Deserialize, Serialize};

/// Per-operator state observed by the runtime (paper §IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProxyState {
    /// More than `DrainedThres` of the epoch's records were pending /
    /// overflow-drained: the operator is oversubscribed.
    Congested,
    /// The operator sat starved beyond `IdleThres` while compute remained:
    /// the node is undersubscribed.
    Idle,
    /// Neither congested nor idle.
    Stable,
}

/// Whole-query classification (paper §IV-C: "non-stable if all operators are
/// idle or at least one operator is congested").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryState {
    /// At least one operator congested.
    Congested,
    /// Every operator idle.
    Idle,
    /// Otherwise.
    Stable,
}

/// Combines per-proxy states into the query state.
pub fn classify_query(states: &[ProxyState]) -> QueryState {
    if states.contains(&ProxyState::Congested) {
        QueryState::Congested
    } else if !states.is_empty() && states.iter().all(|s| *s == ProxyState::Idle) {
        QueryState::Idle
    } else {
        QueryState::Stable
    }
}

/// Routing decision for one record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Enqueue for the local downstream operator.
    Forward,
    /// Ship to the replica operator on the stream processor.
    Drain,
}

/// Per-epoch proxy counters.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ProxyEpoch {
    /// Records that arrived at the proxy.
    pub arrived: u64,
    /// Records forwarded to the local operator.
    pub forwarded: u64,
    /// Records drained by the load-factor routing decision.
    pub drained_routing: u64,
    /// Records drained at epoch end because the operator could not keep up.
    pub drained_overflow: u64,
    /// Records left pending in the operator queue at epoch end.
    pub pending_end: u64,
    /// Whether the operator's queue was empty with node budget left over.
    pub starved: bool,
}

/// The control proxy.
#[derive(Debug, Clone)]
pub struct ControlProxy {
    load_factor: f64,
    /// Error-diffusion accumulator for deterministic routing.
    acc: f64,
    drained_thres: f64,
    idle_thres: f64,
    epoch: ProxyEpoch,
    total_arrived: u64,
    total_drained: u64,
}

impl ControlProxy {
    /// Creates a proxy with an initial load factor and the oscillation-guard
    /// thresholds.
    pub fn new(load_factor: f64, drained_thres: f64, idle_thres: f64) -> ControlProxy {
        assert!((0.0..=1.0).contains(&load_factor), "load factor in [0,1]");
        ControlProxy {
            load_factor,
            acc: 0.0,
            drained_thres,
            idle_thres,
            epoch: ProxyEpoch::default(),
            total_arrived: 0,
            total_drained: 0,
        }
    }

    /// Current load factor.
    pub fn load_factor(&self) -> f64 {
        self.load_factor
    }

    /// Reconfigures the load factor (runtime adaptation).
    pub fn set_load_factor(&mut self, p: f64) {
        self.load_factor = p.clamp(0.0, 1.0);
        self.acc = 0.0;
    }

    /// Routes one arriving record.
    pub fn route(&mut self) -> Route {
        self.epoch.arrived += 1;
        self.total_arrived += 1;
        self.acc += self.load_factor;
        if self.acc >= 1.0 - 1e-12 {
            self.acc -= 1.0;
            self.epoch.forwarded += 1;
            Route::Forward
        } else {
            self.epoch.drained_routing += 1;
            self.total_drained += 1;
            Route::Drain
        }
    }

    /// Routes a whole batch: each row is routed individually (preserving
    /// deterministic error-diffusion and per-row counters), then the batch
    /// is split once into `(forwarded, drained)` with
    /// [`streamkit::batch::Batch::select`].
    /// This is the single batch-routing implementation shared by the
    /// emulated engine and the live runtime.
    pub fn split_batch(
        &mut self,
        batch: streamkit::batch::Batch,
    ) -> (
        Option<streamkit::batch::Batch>,
        Option<streamkit::batch::Batch>,
    ) {
        let n = batch.len();
        if n == 0 {
            return (None, None);
        }
        let mut mask = Vec::with_capacity(n);
        let mut forwarded = 0usize;
        for _ in 0..n {
            let fwd = self.route() == Route::Forward;
            forwarded += usize::from(fwd);
            mask.push(fwd);
        }
        if forwarded == n {
            (Some(batch), None)
        } else if forwarded == 0 {
            (None, Some(batch))
        } else {
            let drain_mask: Vec<bool> = mask.iter().map(|b| !b).collect();
            let drained = batch.select(&drain_mask);
            let kept = batch.select(&mask);
            (Some(kept), Some(drained))
        }
    }

    /// Records `n` overflow-drained records (end-of-epoch shedding of a
    /// backlogged queue).
    pub fn note_overflow(&mut self, n: u64) {
        self.epoch.drained_overflow += n;
        self.total_drained += n;
    }

    /// Records the queue length left pending at epoch end (queue-mode
    /// strategies that do not shed).
    pub fn note_pending(&mut self, n: u64) {
        self.epoch.pending_end = n;
    }

    /// Marks whether the operator starved (empty queue, budget left).
    pub fn note_starved(&mut self, starved: bool) {
        self.epoch.starved = starved;
    }

    /// This epoch's counters.
    pub fn epoch_counters(&self) -> ProxyEpoch {
        self.epoch
    }

    /// Lifetime drained fraction.
    pub fn drained_fraction(&self) -> f64 {
        if self.total_arrived == 0 {
            0.0
        } else {
            self.total_drained as f64 / self.total_arrived as f64
        }
    }

    /// Classifies the operator for this epoch (paper §IV-C). `node_idle_frac`
    /// is the fraction of the node's epoch budget left unused.
    pub fn classify(&self, node_idle_frac: f64) -> ProxyState {
        let backlog = self.epoch.drained_overflow + self.epoch.pending_end;
        let denom = self.epoch.forwarded + backlog;
        if denom > 0 {
            let backlog_frac = backlog as f64 / denom as f64;
            if backlog_frac > self.drained_thres {
                return ProxyState::Congested;
            }
        }
        if self.epoch.starved && node_idle_frac > self.idle_thres {
            return ProxyState::Idle;
        }
        ProxyState::Stable
    }

    /// Resets the per-epoch counters (call at every epoch boundary).
    pub fn begin_epoch(&mut self) {
        self.epoch = ProxyEpoch::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn proxy(p: f64) -> ControlProxy {
        ControlProxy::new(p, 0.05, 0.25)
    }

    #[test]
    fn routing_fraction_converges_to_load_factor() {
        for &p in &[0.0, 0.17, 0.5, 0.83, 1.0] {
            let mut cp = proxy(p);
            let n = 10_000;
            let forwarded = (0..n).filter(|_| cp.route() == Route::Forward).count();
            let frac = forwarded as f64 / n as f64;
            assert!((frac - p).abs() < 1e-3, "p={p} frac={frac}");
        }
    }

    #[test]
    fn routing_is_error_diffused_not_bursty() {
        // With p = 0.5 the pattern must alternate, never two drains in a row.
        let mut cp = proxy(0.5);
        let routes: Vec<Route> = (0..100).map(|_| cp.route()).collect();
        for w in routes.windows(2) {
            assert!(
                w[0] == Route::Forward || w[1] == Route::Forward,
                "two consecutive drains at p=0.5"
            );
        }
    }

    #[test]
    fn conservation_forwarded_plus_drained_equals_arrived() {
        let mut cp = proxy(0.3);
        for _ in 0..5_000 {
            cp.route();
        }
        let e = cp.epoch_counters();
        assert_eq!(e.forwarded + e.drained_routing, e.arrived);
    }

    #[test]
    fn congestion_requires_exceeding_drained_thres() {
        let mut cp = proxy(1.0);
        for _ in 0..100 {
            cp.route();
        }
        // 4 of 100 pending: within the 5% guard → stable.
        cp.note_overflow(4);
        assert_eq!(cp.classify(0.0), ProxyState::Stable);
        cp.note_overflow(7);
        assert_eq!(cp.classify(0.0), ProxyState::Congested);
    }

    #[test]
    fn idle_requires_starvation_and_spare_budget() {
        let mut cp = proxy(0.2);
        for _ in 0..100 {
            cp.route();
        }
        cp.note_starved(true);
        assert_eq!(cp.classify(0.5), ProxyState::Idle);
        assert_eq!(
            cp.classify(0.1),
            ProxyState::Stable,
            "busy node is not idle"
        );
        cp.note_starved(false);
        assert_eq!(cp.classify(0.5), ProxyState::Stable);
    }

    #[test]
    fn query_classification_rules() {
        use ProxyState::*;
        assert_eq!(
            classify_query(&[Stable, Congested, Idle]),
            QueryState::Congested
        );
        assert_eq!(classify_query(&[Idle, Idle, Idle]), QueryState::Idle);
        assert_eq!(classify_query(&[Idle, Stable, Idle]), QueryState::Stable);
        assert_eq!(classify_query(&[]), QueryState::Stable);
    }

    #[test]
    fn epoch_reset_clears_counters() {
        let mut cp = proxy(1.0);
        cp.route();
        cp.note_overflow(10);
        cp.begin_epoch();
        let e = cp.epoch_counters();
        assert_eq!(e.arrived, 0);
        assert_eq!(e.drained_overflow, 0);
        // Lifetime counters survive.
        assert!(cp.drained_fraction() > 0.0);
    }

    #[test]
    #[should_panic(expected = "load factor in [0,1]")]
    fn invalid_load_factor_panics() {
        ControlProxy::new(1.5, 0.05, 0.25);
    }
}
