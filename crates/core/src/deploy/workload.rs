//! Workload plug-in point for deployments.
//!
//! A [`SourceAdapter`] bundles everything a backend needs to run a monitoring
//! query against a fleet of data sources: the declarative query plan, a
//! calibrated per-operator cost profile, and per-source record generators.
//! The paper's three workloads ([`crate::experiment::ScenarioSpec`]) are
//! adapters; new scenarios implement this trait and plug into
//! [`crate::deploy::Deployment`] without touching the experiment harness.

use std::sync::Mutex;

use streamkit::logical::LogicalPlan;
use streamkit::physical::CostProfile;

use crate::engine::block::EpochSource;
use crate::experiment::ScenarioSpec;

/// A deployable workload: query plan + calibrated costs + generators.
pub trait SourceAdapter: Send + Sync {
    /// Workload name (reports, traces).
    fn name(&self) -> String;

    /// The declarative query to deploy.
    fn logical_plan(&self) -> LogicalPlan;

    /// Calibrated per-operator cost models.
    fn costs(&self) -> CostProfile;

    /// The record generator for source `i` of `n`. Generators must be
    /// deterministic per `(i, n)` so different backends see identical
    /// streams (the basis of backend-parity exactness checks).
    fn generator(&self, i: u32, n: u32) -> Box<dyn EpochSource>;

    /// Nominal per-source input rate, paper-Mbps.
    fn input_mbps(&self) -> f64;

    /// A wire-serializable descriptor a remote `jarvis-node` can rebuild
    /// this workload's plan and costs from, or `None` when the workload
    /// cannot be described (closures, ad-hoc generators). TCP deployments
    /// require `Some`.
    fn remote_workload(&self) -> Option<crate::deploy::remote::RemoteWorkload> {
        None
    }
}

impl SourceAdapter for ScenarioSpec {
    fn name(&self) -> String {
        ScenarioSpec::name(self).to_string()
    }

    fn logical_plan(&self) -> LogicalPlan {
        ScenarioSpec::logical_plan(self)
    }

    fn costs(&self) -> CostProfile {
        ScenarioSpec::costs(self)
    }

    fn generator(&self, i: u32, n: u32) -> Box<dyn EpochSource> {
        ScenarioSpec::generator(self, i, n)
    }

    fn input_mbps(&self) -> f64 {
        ScenarioSpec::input_mbps(self)
    }

    fn remote_workload(&self) -> Option<crate::deploy::remote::RemoteWorkload> {
        Some(crate::deploy::remote::RemoteWorkload::of_scenario(self))
    }
}

/// An ad-hoc workload: any query plan with caller-supplied generators.
///
/// This is the migration path for code that used to hand the (removed)
/// `Runner` shim a
/// `LogicalPlan` plus a vector of boxed generators, and the plug-in point
/// for scenarios outside the paper's three (custom queries, injected
/// anomalies, trace replay). Generators are taken once per source, so one
/// `CustomWorkload` drives exactly one deployment.
pub struct CustomWorkload {
    name: String,
    plan: LogicalPlan,
    costs: CostProfile,
    input_mbps: f64,
    generators: Mutex<Vec<Option<Box<dyn EpochSource>>>>,
}

impl CustomWorkload {
    /// Creates a workload from a plan, calibrated costs, and one generator
    /// per source.
    pub fn new(
        name: impl Into<String>,
        plan: LogicalPlan,
        costs: CostProfile,
        generators: Vec<Box<dyn EpochSource>>,
    ) -> CustomWorkload {
        CustomWorkload {
            name: name.into(),
            plan,
            costs,
            input_mbps: 0.0,
            generators: Mutex::new(generators.into_iter().map(Some).collect()),
        }
    }

    /// Sets the nominal input rate reported alongside results.
    pub fn with_input_mbps(mut self, mbps: f64) -> CustomWorkload {
        self.input_mbps = mbps;
        self
    }

    /// Number of generators supplied.
    pub fn generator_count(&self) -> usize {
        self.generators
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }
}

impl SourceAdapter for CustomWorkload {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn logical_plan(&self) -> LogicalPlan {
        self.plan.clone()
    }

    fn costs(&self) -> CostProfile {
        self.costs.clone()
    }

    fn generator(&self, i: u32, _n: u32) -> Box<dyn EpochSource> {
        self.generators
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get_mut(i as usize)
            .and_then(Option::take)
            .unwrap_or_else(|| {
                panic!(
                    "CustomWorkload '{}' has no generator for source {i}: each workload \
                     drives exactly one deployment",
                    self.name
                )
            })
    }

    fn input_mbps(&self) -> f64 {
        self.input_mbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;

    #[test]
    fn scenario_specs_are_adapters() {
        let w: Box<dyn SourceAdapter> = Box::new(ScenarioSpec::pingmesh_s2s(Scale::X1));
        assert_eq!(w.name(), "S2SProbe");
        assert!(w.input_mbps() > 0.0);
        assert_eq!(w.logical_plan().ops.len(), 3);
    }

    #[test]
    fn adapter_generators_are_deterministic() {
        let w = ScenarioSpec::log_analytics(Scale::X1);
        let a = SourceAdapter::generator(&w, 0, 2).generate_epoch_batch(0, 1.0);
        let b = SourceAdapter::generator(&w, 0, 2).generate_epoch_batch(0, 1.0);
        assert_eq!(a, b, "same source index must replay the same stream");
    }
}
