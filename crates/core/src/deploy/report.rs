//! The unified run report.
//!
//! [`RunReport`] subsumes the per-front-door report types the repo once
//! accumulated (`ScenarioReport` and `RunnerReport` are gone with their
//! shims; `LiveReport` remains on the low-level fixed-factor path): every
//! [`crate::deploy::ExecBackend`] fills the fields it can measure and leaves
//! the rest at their empty defaults. Reports serialize to JSON so the bench
//! harness's output stays machine-readable.

use serde::{Deserialize, Serialize};
use streamkit::record::Record;

use crate::runtime::EpochTrace;
use crate::strategy::StrategyKind;

/// An order-independent fingerprint of a result-row multiset.
///
/// Rows are canonicalised (floats rounded to 7 significant digits so that
/// re-association across different record splits washes out), sorted, and
/// FNV-1a hashed. Two backends executing the same deployment losslessly must
/// produce equal digests — the paper's exactness property (§VI-D).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactnessDigest {
    /// Number of result rows.
    pub rows: u64,
    /// Hex FNV-1a 64 over the sorted canonical rows.
    pub digest: String,
}

impl ExactnessDigest {
    /// Digests a result-row multiset.
    pub fn of_rows(rows: &[Record]) -> ExactnessDigest {
        let mut canon: Vec<String> = rows.iter().map(canonical_row).collect();
        canon.sort_unstable();
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for row in &canon {
            for b in row.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            // Row separator so concatenation boundaries hash distinctly.
            h ^= 0x1e;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ExactnessDigest {
            rows: rows.len() as u64,
            digest: format!("{h:016x}"),
        }
    }
}

fn canonical_row(rec: &Record) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{}|", rec.ts);
    for v in &rec.values {
        match v {
            streamkit::value::Value::F64(f) => {
                let _ = write!(s, "f{f:.6e};");
            }
            other => {
                let _ = write!(s, "{other:?};");
            }
        }
    }
    s
}

/// Per-shard drain/usage/wire counters of a sharded SP runtime.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ShardStat {
    /// Input rows routed into the shard by the key-hash partitioner.
    pub drained_records: u64,
    /// Compute charged to the shard's pipeline, µs (modelled on the
    /// emulated backend, counterfactual on the live backend).
    pub usage_us: f64,
    /// Wire bytes shipped across SP nodes toward this shard (zero on a
    /// single-node SP — local shard traffic never touches a link).
    pub wire_bytes_out: u64,
    /// Fraction of the run's epochs whose traffic this shard's results
    /// cover. 1.0 everywhere on a fault-free run; under
    /// [`crate::deploy::OnNodeLoss::Degrade`] a shard lost at epoch `k` of
    /// `N` reports `k / N`.
    pub completeness: f64,
}

// Hand-written so JSON predating the `completeness` field (the vendored
// serde_derive has no `#[serde(default)]`) still loads as fully complete.
impl serde::Deserialize for ShardStat {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let m = c
            .as_map()
            .ok_or_else(|| serde::DeError::expected("object", "ShardStat"))?;
        Ok(ShardStat {
            drained_records: serde::Deserialize::from_content(serde::content::field(
                m,
                "drained_records",
            ))?,
            usage_us: serde::Deserialize::from_content(serde::content::field(m, "usage_us"))?,
            wire_bytes_out: serde::Deserialize::from_content(serde::content::field(
                m,
                "wire_bytes_out",
            ))?,
            completeness: match serde::content::field(m, "completeness") {
                serde::Content::Null => 1.0,
                other => serde::Deserialize::from_content(other)?,
            },
        })
    }
}

/// One node-loss (or recovery) event of a fault-tolerant run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultIncident {
    /// The node that was lost.
    pub node: u32,
    /// Coordinator epoch at which the loss was detected.
    pub epoch: u64,
    /// What the transport reported (typed error rendered to text).
    pub reason: String,
    /// How the run recovered: `"reconnected"`, `"reassigned"`,
    /// `"degraded"`, or `"failed"`.
    pub action: String,
    /// Checkpoint + post-checkpoint bytes re-shipped for recovery.
    pub replay_bytes: u64,
}

/// Per-node drain/usage/wire counters of a multi-node SP tier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStat {
    /// Input rows routed into the node's owned shards.
    pub drained_records: u64,
    /// Compute charged to the node's keyed pipelines, µs.
    pub usage_us: f64,
    /// Wire bytes the node shipped to other nodes (remote-shard traffic,
    /// from the `batch::layout` accounting).
    pub wire_bytes_out: u64,
}

/// Result of executing a [`crate::deploy::DeploymentSpec`] on a backend.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Backend that produced the report (`"emulated"`, `"live"`,
    /// `"convergence"`).
    pub backend: String,
    /// Workload name.
    pub workload: String,
    /// Partitioning strategy.
    pub strategy: StrategyKind,
    /// Epochs executed (including warm-up).
    pub epochs: u64,
    /// Aggregate on-time throughput, paper-Mbps (emulated backend).
    pub throughput_mbps: f64,
    /// Aggregate offered network rate, paper-Mbps (emulated backend).
    pub network_mbps: f64,
    /// State/result-stream share of the network rate, paper-Mbps (the
    /// Fig. 3 result stream; emulated backend).
    pub state_mbps: f64,
    /// Aggregate input rate, paper-Mbps.
    pub input_mbps: f64,
    /// Median processing latency, seconds (emulated backend, source 0).
    pub latency_median_s: Option<f64>,
    /// Max processing latency, seconds (emulated backend, source 0).
    pub latency_max_s: Option<f64>,
    /// Records drained to the stream processor.
    pub drained_records: u64,
    /// Drained record bytes (the drain share of the network volume).
    pub drained_bytes: f64,
    /// Partial-state deltas shipped.
    pub state_deltas: u64,
    /// Result rows emitted by the stream processor.
    pub results_emitted: u64,
    /// Order-independent fingerprint of the merged result rows, when the
    /// deployment collected them (`collect_results`).
    pub exactness: Option<ExactnessDigest>,
    /// Per-epoch runtime trace of source 0 (Fig. 8 series).
    pub trace: Vec<EpochTrace>,
    /// Adaptation episodes of source 0 as `(trigger, stable)` epochs.
    pub episodes: Vec<(u64, u64)>,
    /// Final load factors of source 0.
    pub load_factors: Vec<f64>,
    /// Adaptation overhead as a fraction of one core.
    pub overhead_core_frac: f64,
    /// The deployed operator chain, e.g. `W -> F -> G+R`.
    pub deployed_chain: String,
    /// Operators eligible to run on the data sources.
    pub source_ops: usize,
    /// Virtual shards on the SP tier's fixed hash ring (1 = unsharded).
    pub sp_shards: u64,
    /// SP nodes the ring was divided over (1 = single-node SP).
    pub sp_nodes: u64,
    /// Per-shard drain/usage/wire stats of the sharded SP runtime (emulated
    /// and live backends).
    pub shard_stats: Vec<ShardStat>,
    /// Per-node drain/usage/wire stats of the SP tier (emulated and live
    /// backends).
    pub node_stats: Vec<NodeStat>,
    /// Epochs StepWise-Adapt needed to stabilise (convergence backend).
    pub converged_epochs: Option<u32>,
    /// Warning-severity diagnostics from the static plan analysis that ran
    /// at build time (errors refuse the build; see [`crate::plancheck`]).
    pub plan_warnings: Vec<crate::plancheck::Diagnostic>,
    /// Node-loss/recovery events of the run (empty when fault-free).
    pub incidents: Vec<FaultIncident>,
    /// Checkpoint + buffered traffic bytes re-shipped for recovery.
    pub replay_bytes: u64,
    /// Heartbeat pings the coordinator sent while awaiting epoch acks.
    pub heartbeats_sent: u64,
    /// Effective executor worker threads of the session's task runtime
    /// (0 for backends that do not run on it).
    pub rt_workers: u32,
    /// Effective capacity of the session's async channels (0 for backends
    /// that do not run on them).
    pub channel_capacity: u32,
}

impl RunReport {
    /// An empty report skeleton for a backend to fill in.
    pub fn skeleton(backend: &str, workload: String, strategy: StrategyKind) -> RunReport {
        RunReport {
            backend: backend.to_string(),
            workload,
            strategy,
            epochs: 0,
            throughput_mbps: 0.0,
            network_mbps: 0.0,
            state_mbps: 0.0,
            input_mbps: 0.0,
            latency_median_s: None,
            latency_max_s: None,
            drained_records: 0,
            drained_bytes: 0.0,
            state_deltas: 0,
            results_emitted: 0,
            exactness: None,
            trace: Vec::new(),
            episodes: Vec::new(),
            load_factors: Vec::new(),
            overhead_core_frac: 0.0,
            deployed_chain: String::new(),
            source_ops: 0,
            sp_shards: 1,
            sp_nodes: 1,
            shard_stats: Vec::new(),
            node_stats: Vec::new(),
            converged_epochs: None,
            plan_warnings: Vec::new(),
            incidents: Vec::new(),
            replay_bytes: 0,
            heartbeats_sent: 0,
            rt_workers: 0,
            channel_capacity: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::value::Value;

    fn row(ts: i64, vals: Vec<Value>) -> Record {
        Record::new(ts, vals)
    }

    #[test]
    fn digest_is_order_independent() {
        let a = vec![
            row(1, vec![Value::U64(1), Value::F64(2.0)]),
            row(2, vec![Value::U64(2), Value::F64(3.0)]),
        ];
        let b: Vec<Record> = a.iter().rev().cloned().collect();
        assert_eq!(ExactnessDigest::of_rows(&a), ExactnessDigest::of_rows(&b));
    }

    #[test]
    fn digest_tolerates_float_reassociation() {
        // Sums accumulated in different orders differ by ulps; the canonical
        // 7-significant-digit form must wash that out.
        let x: f64 = 0.1 + 0.2 + 0.3;
        let y: f64 = 0.3 + 0.2 + 0.1;
        assert_ne!(x.to_bits(), y.to_bits(), "premise: the orders differ");
        let a = vec![row(0, vec![Value::F64(x)])];
        let b = vec![row(0, vec![Value::F64(y)])];
        assert_eq!(ExactnessDigest::of_rows(&a), ExactnessDigest::of_rows(&b));
    }

    #[test]
    fn digest_distinguishes_different_results() {
        let a = vec![row(1, vec![Value::U64(1)])];
        let b = vec![row(1, vec![Value::U64(2)])];
        assert_ne!(ExactnessDigest::of_rows(&a), ExactnessDigest::of_rows(&b));
    }

    #[test]
    fn pre_fault_tolerance_shard_stats_deserialize_complete() {
        // JSON written before the fault-tolerance fields existed must load
        // with completeness 1.0 and empty incident accounting.
        let old = r#"{"drained_records":5,"usage_us":1.0,"wire_bytes_out":64}"#;
        let s: ShardStat = serde_json::from_str(old).unwrap();
        assert!((s.completeness - 1.0).abs() < f64::EPSILON);
        let mut r = RunReport::skeleton("live", "S2SProbe".into(), StrategyKind::Jarvis);
        r.incidents.push(FaultIncident {
            node: 1,
            epoch: 4,
            reason: "peer closed the connection".into(),
            action: "reassigned".into(),
            replay_bytes: 1024,
        });
        r.replay_bytes = 1024;
        r.heartbeats_sent = 3;
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.incidents, r.incidents);
        assert_eq!(back.replay_bytes, 1024);
        assert_eq!(back.heartbeats_sent, 3);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut r = RunReport::skeleton("emulated", "S2SProbe".into(), StrategyKind::Jarvis);
        r.throughput_mbps = 12.5;
        r.load_factors = vec![1.0, 0.5];
        r.exactness = Some(ExactnessDigest {
            rows: 3,
            digest: "abc".into(),
        });
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.throughput_mbps, r.throughput_mbps);
        assert_eq!(back.load_factors, r.load_factors);
        assert_eq!(back.exactness, r.exactness);
        assert_eq!(back.strategy, StrategyKind::Jarvis);
    }
}
