//! Execution backends: one [`DeploymentSpec`], three places to run it.

use crate::calibration;
use crate::convergence_sim::{epochs_to_converge, SimConfig};
use crate::deploy::report::{ExactnessDigest, RunReport};
use crate::deploy::{DeployError, DeploymentSpec};
use crate::engine::block::{BuildingBlock, BuildingBlockConfig, EpochSource};
use crate::engine::source::SourceConfig;
use crate::live::session::LiveSession;
use crate::planner::PlannedQuery;

/// Executes validated deployment specs.
pub trait ExecBackend {
    /// Backend name, matching [`RunReport::backend`].
    fn name(&self) -> &'static str;

    /// Runs `epochs` epochs of the spec and reports. Each call starts a
    /// fresh run.
    fn run(&mut self, spec: &DeploymentSpec, epochs: u64) -> Result<RunReport, DeployError>;
}

/// Builds the emulated building block a spec describes.
pub(crate) fn build_block(
    spec: &DeploymentSpec,
) -> Result<(PlannedQuery, BuildingBlock), DeployError> {
    let planned = spec.planned.clone();
    let costs = spec.workload.costs();
    let cfgs: Vec<SourceConfig> = (0..spec.sources)
        .map(|i| {
            let mut c = SourceConfig::new(i + 1, spec.cpu_budget, spec.strategy);
            c.seed = spec.seed.wrapping_add(u64::from(i));
            c
        })
        .collect();
    let generators: Vec<Box<dyn EpochSource>> = (0..spec.sources)
        .map(|i| spec.workload.generator(i, spec.sources))
        .collect();
    let mut block = BuildingBlock::new(
        &planned,
        &costs,
        cfgs,
        generators,
        BuildingBlockConfig {
            network: spec.network,
            sp_shards: spec.sp_shards as usize,
            sp_nodes: spec.sp_nodes as usize,
            ..Default::default()
        },
        spec.warmup_epochs,
    );
    if let Some(factors) = &spec.fixed_load_factors {
        for i in 0..block.source_count() {
            block.source_mut(i).set_load_factors(factors);
        }
    }
    block.set_collect_results(spec.collect_results);
    Ok((planned, block))
}

/// The deterministic calibrated emulator (`engine::block`): models CPU
/// budgets, uplink bandwidth, latency bounds, and sheds like a real agent —
/// the backend behind every figure reproduction.
#[derive(Default)]
pub struct EmulatedBackend {
    prepared: Option<(PlannedQuery, BuildingBlock)>,
}

impl EmulatedBackend {
    /// Builds the block without running (stepping / fault injection).
    pub fn prepare(&mut self, spec: &DeploymentSpec) -> Result<(), DeployError> {
        self.prepared = Some(build_block(spec)?);
        Ok(())
    }

    /// The underlying block, once prepared.
    pub fn block_mut(&mut self) -> Option<&mut BuildingBlock> {
        self.prepared.as_mut().map(|(_, b)| b)
    }

    /// Advances one epoch, applying any [`DeploymentSpec::events`] scheduled
    /// for it first.
    pub fn step(&mut self, spec: &DeploymentSpec) {
        let (_, block) = self.prepared.as_mut().expect("prepare before step");
        let epoch = block.epoch();
        for ev in spec.events.iter().filter(|e| e.epoch == epoch) {
            if let Some(cpu) = ev.cpu_budget {
                for i in 0..block.source_count() {
                    block.source_mut(i).set_cpu_budget(cpu);
                }
            }
            if let Some(size) = ev.table_size {
                block.swap_join_tables(size);
            }
        }
        block.run_epoch();
    }

    /// Builds the report for the current block state.
    pub fn report(&mut self, spec: &DeploymentSpec) -> RunReport {
        let (planned, block) = self.prepared.as_mut().expect("prepare before report");
        if spec.collect_results {
            block.finalize_results();
        }
        let secs = block.measured_secs();
        let metrics = block.metrics();
        let mut report = RunReport::skeleton("emulated", spec.workload.name(), spec.strategy);
        report.epochs = block.epoch();
        report.throughput_mbps = block.aggregate_throughput_mbps();
        report.network_mbps = block.aggregate_network_mbps();
        report.state_mbps = metrics.iter().map(|m| m.state_mbps(secs)).sum();
        report.input_mbps = metrics.iter().map(|m| m.input_mbps(secs)).sum();
        report.latency_median_s = metrics.first().and_then(|m| m.latency.median());
        report.latency_max_s = metrics.first().and_then(|m| m.latency.max());
        report.drained_records = metrics.iter().map(|m| m.drained_records).sum();
        report.drained_bytes = metrics
            .iter()
            .map(|m| (m.net_bytes - m.state_bytes).max(0.0))
            .sum();
        report.results_emitted = block.sp().results_emitted();
        report.exactness = block
            .sp()
            .collected_results()
            .map(|rows| ExactnessDigest::of_rows(&rows));
        report.trace = block.source(0).runtime().trace().to_vec();
        report.episodes = block.source(0).runtime().episodes().to_vec();
        report.load_factors = block.source(0).load_factors();
        report.overhead_core_frac = {
            let rt = block.source(0).runtime();
            rt.overhead_us() / (rt.trace().len().max(1) as f64 * 1e6)
        };
        report.deployed_chain = planned.plan.display_chain();
        report.source_ops = planned.source_ops;
        report.sp_shards = block.sp().n_shards() as u64;
        report.sp_nodes = block.sp().n_nodes() as u64;
        report.shard_stats = block
            .sp()
            .shard_stats()
            .iter()
            .map(|s| crate::deploy::report::ShardStat {
                drained_records: s.drained_records,
                usage_us: s.usage_us,
                wire_bytes_out: s.wire_bytes_out,
                completeness: 1.0,
            })
            .collect();
        report.node_stats = block
            .sp()
            .node_stats()
            .iter()
            .map(|n| crate::deploy::report::NodeStat {
                drained_records: n.drained_records,
                usage_us: n.usage_us,
                wire_bytes_out: n.wire_bytes_out,
            })
            .collect();
        report
    }
}

impl ExecBackend for EmulatedBackend {
    fn name(&self) -> &'static str {
        "emulated"
    }

    fn run(&mut self, spec: &DeploymentSpec, epochs: u64) -> Result<RunReport, DeployError> {
        // A fresh block every call: a finalized (windows flushed) block must
        // not leak into a second run.
        self.prepare(spec)?;
        for _ in 0..epochs {
            self.step(spec);
        }
        Ok(self.report(spec))
    }
}

/// Threaded execution over real channels (`live::session`), driving the
/// Jarvis runtime state machine per epoch. Execution is lossless — its
/// purpose is proving exactness and concurrency-safety, not modelling
/// throughput — so the reported throughput equals the input rate and
/// latency fields stay empty.
#[derive(Default)]
pub struct LiveBackend {}

impl ExecBackend for LiveBackend {
    fn name(&self) -> &'static str {
        "live"
    }

    fn run(&mut self, spec: &DeploymentSpec, epochs: u64) -> Result<RunReport, DeployError> {
        let mut session = LiveSession::new(spec)?;
        session.run_epochs(epochs)?;
        let mut report = RunReport::skeleton("live", spec.workload.name(), spec.strategy);
        report.epochs = session.epoch();
        report.rt_workers = session.rt_workers();
        report.channel_capacity = session.channel_capacity();
        report.deployed_chain = session.planned().plan.display_chain();
        report.source_ops = session.planned().source_ops;
        report.sp_shards = session.n_shards() as u64;
        report.sp_nodes = session.n_nodes() as u64;
        report.trace = session.runtime(0).trace().to_vec();
        report.episodes = session.runtime(0).episodes().to_vec();
        report.load_factors = session.load_factors(0);
        report.overhead_core_frac = {
            let rt = session.runtime(0);
            rt.overhead_us() / (rt.trace().len().max(1) as f64 * 1e6)
        };
        let outcome = session.try_finish()?;
        let secs = (outcome.epochs as f64 * calibration::EPOCH_SECS).max(f64::MIN_POSITIVE);
        report.input_mbps = outcome.input_bytes * 8.0 / secs / calibration::MBPS;
        // Live execution is lossless: every input record completes.
        report.throughput_mbps = report.input_mbps;
        report.network_mbps = outcome.drained_bytes * 8.0 / secs / calibration::MBPS;
        report.drained_records = outcome.drained_records;
        report.drained_bytes = outcome.drained_bytes;
        report.state_deltas = outcome.state_deltas;
        report.results_emitted = outcome.results.len() as u64;
        report.shard_stats = outcome
            .shard_drained_records
            .iter()
            .zip(&outcome.shard_usage_us)
            .zip(
                outcome
                    .shard_wire_bytes
                    .iter()
                    .zip(&outcome.shard_completeness),
            )
            .map(
                |((&drained_records, &usage_us), (&wire_bytes_out, &completeness))| {
                    crate::deploy::report::ShardStat {
                        drained_records,
                        usage_us,
                        wire_bytes_out,
                        completeness,
                    }
                },
            )
            .collect();
        report.node_stats = outcome
            .node_drained_records
            .iter()
            .zip(&outcome.node_usage_us)
            .zip(&outcome.node_wire_bytes)
            .map(|((&drained_records, &usage_us), &wire_bytes_out)| {
                crate::deploy::report::NodeStat {
                    drained_records,
                    usage_us,
                    wire_bytes_out,
                }
            })
            .collect();
        report.incidents = outcome.incidents;
        report.replay_bytes = outcome.replay_bytes;
        report.heartbeats_sent = outcome.heartbeats_sent;
        if spec.collect_results {
            report.exactness = Some(ExactnessDigest::of_rows(&outcome.results));
        }
        Ok(report)
    }
}

/// The §VI-C abstract convergence-cost simulator: classifies plans against
/// an idealised budget and counts the epochs StepWise-Adapt needs to
/// stabilise from zero load factors. Reports only adaptation metrics.
#[derive(Default)]
pub struct ConvergenceBackend {}

impl ExecBackend for ConvergenceBackend {
    fn name(&self) -> &'static str {
        "convergence"
    }

    fn run(&mut self, spec: &DeploymentSpec, epochs: u64) -> Result<RunReport, DeployError> {
        if !spec.strategy.is_stepwise() {
            return Err(DeployError::StrategyBackendMismatch {
                strategy: spec.strategy,
                backend: super::BackendKind::Convergence,
            });
        }
        if !spec.events.is_empty() {
            return Err(DeployError::EventsUnsupported {
                backend: super::BackendKind::Convergence,
            });
        }
        let planned = &spec.planned;
        let costs = spec.workload.costs();
        // Calibrate the abstract configuration on one generated epoch,
        // through the same scratch-profiling pass the live backend uses.
        let sample = spec
            .workload
            .generator(0, spec.sources)
            .generate_epoch_batch(0, 1.0);
        let budget_us = spec.cpu_budget * calibration::EPOCH_SECS * 1e6;
        let est = crate::live::session::profile_on_scratch(
            &planned.plan,
            &costs,
            planned.source_ops,
            &sample,
            budget_us,
        );
        let cfg = SimConfig {
            cost_us: est.cost_us,
            relay: est.relay_count.iter().map(|r| r.min(1.0)).collect(),
            records: est.records_per_epoch,
            budget_us,
            idle_tolerance: calibration::IDLE_THRES,
        };
        let sw = spec.strategy.runtime_config().stepwise;
        let converged = epochs_to_converge(&cfg, sw, epochs.min(u64::from(u32::MAX)) as u32);

        let mut report = RunReport::skeleton("convergence", spec.workload.name(), spec.strategy);
        report.epochs = epochs;
        report.input_mbps = spec.workload.input_mbps();
        report.deployed_chain = planned.plan.display_chain();
        report.source_ops = planned.source_ops;
        report.converged_epochs = converged;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::deploy::{BackendKind, Deployment};
    use crate::experiment::ScenarioSpec;
    use crate::strategy::StrategyKind;

    #[test]
    fn emulated_backend_matches_the_listing_1_flow() {
        let report = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
            .strategy(StrategyKind::Jarvis)
            .cpu_budget(0.6)
            .backend(BackendKind::Emulated)
            .build()
            .unwrap()
            .run(40)
            .unwrap();
        assert_eq!(report.backend, "emulated");
        assert_eq!(report.deployed_chain, "W -> F -> G+R");
        assert_eq!(report.source_ops, 3);
        assert!(report.throughput_mbps > 0.0);
        assert!(report.results_emitted > 0);
    }

    #[test]
    fn live_backend_runs_the_same_spec() {
        let report = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(StrategyKind::Jarvis)
            .cpu_budget(0.8)
            .backend(BackendKind::Live)
            .collect_results(true)
            .build()
            .unwrap()
            .run(10)
            .unwrap();
        assert_eq!(report.backend, "live");
        assert!(report.results_emitted > 0);
        assert!(report.exactness.is_some());
        assert!(report.input_mbps > 0.0);
    }

    #[test]
    fn convergence_backend_reports_stabilisation() {
        let report = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
            .strategy(StrategyKind::JarvisNoLpInit)
            .cpu_budget(0.6)
            .backend(BackendKind::Convergence)
            .build()
            .unwrap()
            .run(200)
            .unwrap();
        let epochs = report.converged_epochs.expect("must converge");
        assert!(epochs > 0 && epochs < 60, "epochs = {epochs}");
    }

    #[test]
    fn emulated_supports_stepping_and_fault_injection() {
        let spec = Deployment::builder()
            .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
            .strategy(StrategyKind::AllSrc)
            .cpu_budget(1.0)
            .spec()
            .unwrap();
        let mut be = EmulatedBackend::default();
        be.prepare(&spec).unwrap();
        for _ in 0..5 {
            be.step(&spec);
        }
        let block = be.block_mut().unwrap();
        assert_eq!(block.epoch(), 5);
        let ckpt = block.fail_source(0);
        assert!(block.is_failed(0));
        block.recover_source(0, &ckpt);
        assert!(!block.is_failed(0));
    }
}
