//! The unified deployment API (the repo's single front door).
//!
//! The paper's user contract is Listing 1's three lines — configure, then
//! `run(query)`. This module is that contract for every execution mode the
//! repro supports: one [`DeploymentBuilder`] validates a workload +
//! strategy + resources into a typed [`DeploymentSpec`], and a pluggable
//! [`ExecBackend`] executes it.
//!
//! * [`EmulatedBackend`] — the deterministic calibrated emulator
//!   (`engine::block`), modelling CPU budgets, uplinks, and latency bounds.
//! * [`LiveBackend`] — real threads and channels (`live::session`), driving
//!   the Jarvis runtime state machine each epoch and proving exactness.
//! * [`ConvergenceBackend`] — the §VI-C abstract convergence-cost simulator.
//!
//! All three consume the same spec and produce the same [`RunReport`], which
//! is what lets tests assert backend parity and future PRs add sharded or
//! distributed backends without another parallel code path.
//!
//! ```
//! use jarvis_core::calibration::Scale;
//! use jarvis_core::deploy::{BackendKind, Deployment};
//! use jarvis_core::experiment::ScenarioSpec;
//! use jarvis_core::strategy::StrategyKind;
//!
//! let report = Deployment::builder()
//!     .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
//!     .strategy(StrategyKind::Jarvis)
//!     .sources(1)
//!     .cpu_budget(0.6)
//!     .backend(BackendKind::Emulated)
//!     .build()
//!     .unwrap()
//!     .run(25)
//!     .unwrap();
//! assert!(report.throughput_mbps > 0.0);
//! ```

mod backend;
pub mod remote;
mod report;
mod workload;

// Used by crate-internal tests (checkpoint fault-injection blocks).
#[cfg_attr(not(test), allow(unused_imports))]
pub(crate) use backend::build_block;

use std::fmt;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

pub use backend::{ConvergenceBackend, EmulatedBackend, ExecBackend, LiveBackend};
pub use report::{ExactnessDigest, FaultIncident, NodeStat, RunReport, ShardStat};
pub use workload::{CustomWorkload, SourceAdapter};

use crate::calibration;
use crate::engine::block::NetworkModel;
use crate::experiment::ResourceEvent;
use crate::fault::FaultPlan;
use crate::planner::RuleConfig;
use crate::strategy::StrategyKind;

/// Largest supported `sp_shards` value: beyond this, per-shard channel and
/// pipeline overhead dwarfs any realistic SP parallelism.
pub const MAX_SP_SHARDS: u32 = 64;

/// Largest supported `rt_workers` value: beyond any real host's core count,
/// a larger pool only adds idle parked threads.
pub const MAX_RT_WORKERS: u32 = 1024;

/// Largest supported `channel_capacity`: a wider channel than this buffers
/// whole epochs and defeats backpressure entirely.
pub const MAX_CHANNEL_CAPACITY: u32 = 1 << 20;

/// Which built-in backend executes the deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Deterministic calibrated emulation (throughput/latency modelling).
    Emulated,
    /// Threaded execution over real channels (exactness under concurrency).
    Live,
    /// Abstract convergence-cost simulation (adaptation analysis only).
    Convergence,
}

impl BackendKind {
    /// Display name, matching [`RunReport::backend`].
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::Emulated => "emulated",
            BackendKind::Live => "live",
            BackendKind::Convergence => "convergence",
        }
    }
}

/// How the live backend's SP tier is wired together.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// Bounded in-process channels emulating the node links (the PR-5
    /// runtime; single process).
    #[default]
    InProcess,
    /// Real framed TCP sockets to remote `jarvis-node` executors that
    /// registered against [`DeploymentBuilder::listen_addr`].
    Tcp,
}

impl TransportKind {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            TransportKind::InProcess => "in-process",
            TransportKind::Tcp => "tcp",
        }
    }
}

/// Handshake/read-timeout default for TCP deployments.
const DEFAULT_HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);
/// Registration/collection deadline default for TCP deployments.
const DEFAULT_NODE_TIMEOUT: Duration = Duration::from_secs(60);
/// Default epoch-acknowledgement (liveness) deadline for TCP deployments.
const DEFAULT_LIVENESS_TIMEOUT: Duration = Duration::from_secs(30);

/// What the coordinator does when a remote SP node is lost mid-run (its
/// link breaks, or it misses the liveness deadline) and no reconnect
/// arrives within [`DeploymentBuilder::reconnect_grace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnNodeLoss {
    /// Fail the run with [`DeployError::NodeFailed`] (the pre-fault
    /// behaviour; safest default).
    #[default]
    Fail,
    /// Re-ship the lost shards' last acked checkpoint plus replayed
    /// post-checkpoint traffic to surviving nodes via the consistent-hash
    /// ring — the run completes with bit-identical results.
    Reassign,
    /// Carry on without the lost shards: their contribution is marked
    /// absent via per-shard [`ShardStat::completeness`] and the run's
    /// [`RunReport::incidents`], never silently dropped.
    Degrade,
}

impl OnNodeLoss {
    /// Display name (incident reports, policy tables).
    pub fn label(self) -> &'static str {
        match self {
            OnNodeLoss::Fail => "fail",
            OnNodeLoss::Reassign => "reassign",
            OnNodeLoss::Degrade => "degrade",
        }
    }
}

/// Why a builder rejected its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum DeployError {
    /// No workload supplied.
    MissingWorkload,
    /// `sources` was zero.
    NoSources,
    /// CPU budget not a positive finite core fraction.
    InvalidCpuBudget {
        /// The rejected value.
        got: f64,
    },
    /// `sp_shards` outside the supported range.
    InvalidShardCount {
        /// The rejected value.
        got: u32,
        /// Largest supported shard count.
        max: u32,
    },
    /// `sp_nodes` outside `1..=sp_shards`: nodes own contiguous slices of
    /// the fixed shard ring, so a cluster wider than the ring has idle
    /// nodes by construction.
    InvalidNodeCount {
        /// The rejected value.
        got: u32,
        /// The ring width it must divide into non-empty slices.
        shards: u32,
    },
    /// The static plan analyzer found error-severity diagnostics: the
    /// deployment would be incorrect (key-provenance or mergeability
    /// violations) or cannot run (infeasible shard/node/transport knobs).
    PlanCheck(
        /// The error diagnostics, sorted by operator index.
        Vec<crate::plancheck::Diagnostic>,
    ),
    /// A pinned load factor outside `[0, 1]`.
    InvalidLoadFactor {
        /// Index in the supplied vector.
        index: usize,
        /// The rejected value.
        value: f64,
    },
    /// Pinned load-factor count does not match the source-eligible prefix.
    LoadFactorArity {
        /// Source-side operators in the planned query.
        expected: usize,
        /// Supplied factor count.
        got: usize,
    },
    /// Pinned load factors combined with a strategy that adapts them.
    FixedFactorsWithAdaptiveStrategy {
        /// The adaptive strategy.
        strategy: StrategyKind,
    },
    /// The strategy cannot run on the chosen backend.
    StrategyBackendMismatch {
        /// The strategy.
        strategy: StrategyKind,
        /// The backend.
        backend: BackendKind,
    },
    /// Scheduled resource events on a backend that cannot apply them.
    EventsUnsupported {
        /// The backend.
        backend: BackendKind,
    },
    /// Query planning failed (invalid plan, rule violation).
    Plan(String),
    /// A TCP deployment without a parseable `listen_addr`.
    InvalidEndpoint {
        /// The rejected endpoint (or `"(none)"`).
        got: String,
    },
    /// A peer connected but failed the versioned handshake (wrong protocol
    /// version, bad auth token, or a malformed registration).
    HandshakeFailed {
        /// The peer's address.
        peer: String,
        /// What went wrong.
        reason: String,
    },
    /// Too few nodes registered (or reported back) before the deadline.
    NodeTimeout {
        /// How long the coordinator waited.
        waited_ms: u64,
        /// Nodes that made it.
        registered: u32,
        /// Nodes the spec requires.
        expected: u32,
    },
    /// A registered node died or misbehaved mid-run.
    NodeFailed {
        /// The node id.
        node: u32,
        /// What happened.
        reason: String,
    },
    /// A node registered, then its connection died before the deployment
    /// was fully admitted (pre-`Ready`), so the run can never start.
    NodeLost {
        /// The node id.
        node: u32,
        /// What happened to the connection.
        reason: String,
    },
    /// `rt_workers` zero or beyond [`MAX_RT_WORKERS`].
    InvalidRtWorkers {
        /// The rejected value.
        got: u32,
        /// Largest supported worker count.
        max: u32,
    },
    /// `channel_capacity` zero or beyond [`MAX_CHANNEL_CAPACITY`].
    InvalidChannelCapacity {
        /// The rejected value.
        got: u32,
        /// Largest supported capacity.
        max: u32,
    },
}

impl fmt::Display for DeployError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeployError::MissingWorkload => write!(f, "deployment needs a workload"),
            DeployError::NoSources => write!(f, "deployment needs at least one data source"),
            DeployError::InvalidCpuBudget { got } => {
                write!(
                    f,
                    "CPU budget must be a positive finite core fraction, got {got}"
                )
            }
            DeployError::InvalidShardCount { got, max } => {
                write!(f, "sp_shards must be in 1..={max}, got {got}")
            }
            DeployError::InvalidNodeCount { got, shards } => {
                write!(
                    f,
                    "sp_nodes must be in 1..=sp_shards (= {shards}), got {got}"
                )
            }
            DeployError::PlanCheck(diags) => {
                write!(
                    f,
                    "plan check failed with {} error(s):\n{}",
                    diags.len(),
                    crate::plancheck::render(diags)
                )
            }
            DeployError::InvalidLoadFactor { index, value } => {
                write!(f, "load factor {value} at index {index} is outside [0, 1]")
            }
            DeployError::LoadFactorArity { expected, got } => {
                write!(
                    f,
                    "{got} load factors supplied for {expected} source operators"
                )
            }
            DeployError::FixedFactorsWithAdaptiveStrategy { strategy } => write!(
                f,
                "{} adapts load factors at runtime; pinned factors require a fixed strategy",
                strategy.label()
            ),
            DeployError::StrategyBackendMismatch { strategy, backend } => write!(
                f,
                "strategy {} cannot run on the {} backend",
                strategy.label(),
                backend.label()
            ),
            DeployError::EventsUnsupported { backend } => write!(
                f,
                "the {} backend cannot apply scheduled resource events",
                backend.label()
            ),
            DeployError::Plan(msg) => write!(f, "query planning failed: {msg}"),
            DeployError::InvalidEndpoint { got } => {
                write!(f, "TCP transport needs a bindable listen_addr, got {got}")
            }
            DeployError::HandshakeFailed { peer, reason } => {
                write!(f, "handshake with {peer} failed: {reason}")
            }
            DeployError::NodeTimeout {
                waited_ms,
                registered,
                expected,
            } => write!(
                f,
                "{registered}/{expected} nodes checked in within {waited_ms} ms"
            ),
            DeployError::NodeFailed { node, reason } => {
                write!(f, "node {node} failed: {reason}")
            }
            DeployError::NodeLost { node, reason } => {
                write!(
                    f,
                    "node {node} was lost before the deployment started: {reason}"
                )
            }
            DeployError::InvalidRtWorkers { got, max } => {
                write!(f, "rt_workers must be in 1..={max}, got {got}")
            }
            DeployError::InvalidChannelCapacity { got, max } => {
                write!(f, "channel_capacity must be in 1..={max}, got {got}")
            }
        }
    }
}

impl std::error::Error for DeployError {}

impl From<streamkit::error::Error> for DeployError {
    fn from(e: streamkit::error::Error) -> DeployError {
        DeployError::Plan(e.to_string())
    }
}

/// A validated deployment: what to run, where, with which resources.
#[derive(Clone)]
pub struct DeploymentSpec {
    /// The workload (query + generators + costs).
    pub workload: Arc<dyn SourceAdapter>,
    /// Partitioning strategy.
    pub strategy: StrategyKind,
    /// Number of data sources.
    pub sources: u32,
    /// CPU available to the query on each source, core fraction.
    pub cpu_budget: f64,
    /// Virtual shards on the SP tier's fixed hash ring (1 = the unsharded
    /// chain).
    pub sp_shards: u32,
    /// SP nodes dividing the ring into contiguous slices (1 = single node).
    pub sp_nodes: u32,
    /// Uplink topology between sources and the stream processor.
    pub network: NetworkModel,
    /// Operator-eligibility rules (R-1..R-4).
    pub rules: RuleConfig,
    /// The query planned under those rules (done once, at validation).
    pub planned: crate::planner::PlannedQuery,
    /// Warning-severity plancheck diagnostics (errors refuse the build);
    /// copied into [`RunReport::plan_warnings`] by [`Deployment::run`].
    pub plan_warnings: Vec<crate::plancheck::Diagnostic>,
    /// Warm-up epochs excluded from measurement.
    pub warmup_epochs: u64,
    /// Base RNG seed for per-source engines.
    pub seed: u64,
    /// Pinned per-proxy load factors (fixed-allocation deployments only).
    pub fixed_load_factors: Option<Vec<f64>>,
    /// Scheduled resource changes (convergence experiments).
    pub events: Vec<ResourceEvent>,
    /// Retain merged result rows and fingerprint them (exactness checks).
    pub collect_results: bool,
    /// How the live SP tier is wired (in-process channels or real TCP).
    pub transport: TransportKind,
    /// Coordinator listen endpoint (TCP transport only; validated).
    pub listen_addr: Option<SocketAddr>,
    /// Shared-secret token nodes must present (empty disables auth).
    pub auth_token: String,
    /// Per-connection handshake/read deadline (TCP transport only).
    pub handshake_timeout: Duration,
    /// Registration and result-collection deadline (TCP transport only).
    pub node_timeout: Duration,
    /// Policy when a remote node is lost mid-run (TCP transport only).
    pub on_node_loss: OnNodeLoss,
    /// Epoch-acknowledgement deadline: a node that neither acks the epoch
    /// nor answers heartbeats within this window is declared down.
    pub liveness_timeout: Duration,
    /// Checkpoint every N epochs (0 disables SP-tier checkpointing; lost
    /// shards are then replayed from epoch 0).
    pub checkpoint_interval: u64,
    /// How long the coordinator holds a lost node's shards for the same
    /// node id to re-register before applying [`OnNodeLoss`]
    /// (zero disables reconnect recovery).
    pub reconnect_grace: Duration,
    /// Deterministic fault-injection schedule (tests/chaos runs only).
    pub fault_plan: Option<FaultPlan>,
    /// Executor worker threads of the live session's task runtime
    /// (`None` sizes to the host's available parallelism).
    pub rt_workers: Option<u32>,
    /// Capacity of the session's async channels (source → dispatcher and
    /// dispatcher → node).
    pub channel_capacity: u32,
}

impl fmt::Debug for DeploymentSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeploymentSpec")
            .field("workload", &self.workload.name())
            .field("strategy", &self.strategy)
            .field("sources", &self.sources)
            .field("cpu_budget", &self.cpu_budget)
            .field("sp_shards", &self.sp_shards)
            .field("sp_nodes", &self.sp_nodes)
            .field("network", &self.network)
            .field("warmup_epochs", &self.warmup_epochs)
            .field("fixed_load_factors", &self.fixed_load_factors)
            .field("events", &self.events)
            .field("collect_results", &self.collect_results)
            .field("transport", &self.transport)
            .field("listen_addr", &self.listen_addr)
            .field("on_node_loss", &self.on_node_loss)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("reconnect_grace", &self.reconnect_grace)
            .field("rt_workers", &self.rt_workers)
            .field("channel_capacity", &self.channel_capacity)
            .field("fault_plan", &self.fault_plan)
            .finish()
    }
}

/// Builder for [`Deployment`] (and bare [`DeploymentSpec`]s).
pub struct DeploymentBuilder {
    workload: Option<Arc<dyn SourceAdapter>>,
    strategy: StrategyKind,
    sources: u32,
    cpu_budget: f64,
    sp_shards: u32,
    sp_nodes: u32,
    network: Option<NetworkModel>,
    rules: RuleConfig,
    warmup_epochs: u64,
    seed: u64,
    fixed_load_factors: Option<Vec<f64>>,
    events: Vec<ResourceEvent>,
    collect_results: bool,
    backend: BackendKind,
    transport: TransportKind,
    listen_addr: Option<String>,
    auth_token: String,
    handshake_timeout: Duration,
    node_timeout: Duration,
    on_node_loss: OnNodeLoss,
    liveness_timeout: Duration,
    checkpoint_interval: u64,
    reconnect_grace: Duration,
    fault_plan: Option<FaultPlan>,
    rt_workers: Option<u32>,
    channel_capacity: u32,
}

impl Default for DeploymentBuilder {
    fn default() -> Self {
        DeploymentBuilder {
            workload: None,
            strategy: StrategyKind::Jarvis,
            sources: 1,
            cpu_budget: 0.5,
            sp_shards: 1,
            sp_nodes: 1,
            network: None,
            rules: RuleConfig::default(),
            warmup_epochs: crate::experiment::DEFAULT_WARMUP_EPOCHS,
            seed: 17,
            fixed_load_factors: None,
            events: Vec::new(),
            collect_results: false,
            backend: BackendKind::Emulated,
            transport: TransportKind::InProcess,
            listen_addr: None,
            auth_token: String::new(),
            handshake_timeout: DEFAULT_HANDSHAKE_TIMEOUT,
            node_timeout: DEFAULT_NODE_TIMEOUT,
            on_node_loss: OnNodeLoss::Fail,
            liveness_timeout: DEFAULT_LIVENESS_TIMEOUT,
            checkpoint_interval: 0,
            reconnect_grace: Duration::ZERO,
            fault_plan: None,
            rt_workers: None,
            channel_capacity: crate::rt::DEFAULT_CHANNEL_CAPACITY,
        }
    }
}

impl DeploymentBuilder {
    /// Sets the workload.
    pub fn workload(mut self, workload: impl SourceAdapter + 'static) -> Self {
        self.workload = Some(Arc::new(workload));
        self
    }

    /// Sets a shared workload handle (avoids re-wrapping).
    pub fn workload_arc(mut self, workload: Arc<dyn SourceAdapter>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Sets the partitioning strategy (default [`StrategyKind::Jarvis`]).
    pub fn strategy(mut self, strategy: StrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the number of data sources (default 1).
    pub fn sources(mut self, sources: u32) -> Self {
        self.sources = sources;
        self
    }

    /// Sets the per-source CPU budget in core fractions (default 0.5).
    pub fn cpu_budget(mut self, fraction: f64) -> Self {
        self.cpu_budget = fraction;
        self
    }

    /// Sets the number of virtual shards on the SP tier's fixed hash ring
    /// (default 1 = the unsharded chain). Sharded runs partition every
    /// batch by the plan's group keys at its stateful boundary and stay
    /// exact; see `tests/shard_parity.rs`.
    pub fn sp_shards(mut self, shards: u32) -> Self {
        self.sp_shards = shards;
        self
    }

    /// Sets the number of SP nodes the hash ring is divided over (default
    /// 1 = a single-node SP). Each node owns a contiguous slice of the
    /// `sp_shards` ring; remote-shard traffic crosses nodes as
    /// `NetPayload::ShardBatch` / `ShardState` payloads. The key → shard
    /// mapping is node-count-independent, so results are bit-identical at
    /// any node count; see `tests/node_parity.rs`.
    pub fn sp_nodes(mut self, nodes: u32) -> Self {
        self.sp_nodes = nodes;
        self
    }

    /// Sets the uplink topology (default: the paper's dedicated
    /// per-source-per-query 20.48 Mbps share).
    pub fn network(mut self, network: NetworkModel) -> Self {
        self.network = Some(network);
        self
    }

    /// Sets the operator-eligibility rules.
    pub fn rules(mut self, rules: RuleConfig) -> Self {
        self.rules = rules;
        self
    }

    /// Sets warm-up epochs excluded from measurement.
    pub fn warmup_epochs(mut self, epochs: u64) -> Self {
        self.warmup_epochs = epochs;
        self
    }

    /// Sets the base RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pins per-proxy load factors (only valid with non-adaptive
    /// strategies; adaptive runtimes would immediately override them).
    pub fn load_factors(mut self, factors: Vec<f64>) -> Self {
        self.fixed_load_factors = Some(factors);
        self
    }

    /// Schedules resource-condition changes (Fig. 8 experiments).
    pub fn events(mut self, events: &[ResourceEvent]) -> Self {
        self.events = events.to_vec();
        self
    }

    /// Retains merged result rows and fingerprints them (exactness checks).
    pub fn collect_results(mut self, collect: bool) -> Self {
        self.collect_results = collect;
        self
    }

    /// Selects the execution backend (default [`BackendKind::Emulated`]).
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Selects the live SP transport (default
    /// [`TransportKind::InProcess`]). [`TransportKind::Tcp`] makes the live
    /// backend listen on [`DeploymentBuilder::listen_addr`] and dispatch
    /// shard traffic to registered remote `jarvis-node` executors instead
    /// of in-process node threads.
    pub fn transport(mut self, transport: TransportKind) -> Self {
        self.transport = transport;
        self
    }

    /// Sets the coordinator's listen endpoint for TCP deployments, e.g.
    /// `"127.0.0.1:7441"`. Required when the transport is
    /// [`TransportKind::Tcp`].
    pub fn listen_addr(mut self, addr: impl Into<String>) -> Self {
        self.listen_addr = Some(addr.into());
        self
    }

    /// Sets the shared-secret token remote nodes must present at
    /// registration (default empty = auth disabled).
    pub fn auth_token(mut self, token: impl Into<String>) -> Self {
        self.auth_token = token.into();
        self
    }

    /// Sets the per-connection handshake/read deadline (default 10 s).
    pub fn handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = timeout;
        self
    }

    /// Sets the deadline for all `sp_nodes` registrations (and later for
    /// final result collection; default 60 s).
    pub fn node_timeout(mut self, timeout: Duration) -> Self {
        self.node_timeout = timeout;
        self
    }

    /// Sets the policy applied when a remote SP node is lost mid-run and no
    /// reconnect arrives (default [`OnNodeLoss::Fail`]).
    pub fn on_node_loss(mut self, policy: OnNodeLoss) -> Self {
        self.on_node_loss = policy;
        self
    }

    /// Sets the epoch-acknowledgement (liveness) deadline: how long the
    /// coordinator waits for an epoch's `Progress` acks — sending heartbeat
    /// pings while it waits — before declaring silent nodes down
    /// (default 30 s).
    pub fn liveness_timeout(mut self, timeout: Duration) -> Self {
        self.liveness_timeout = timeout;
        self
    }

    /// Checkpoints each remote node's shard state every `interval` epochs
    /// (default 0 = off). Checkpoints bound how much post-checkpoint
    /// traffic the coordinator must buffer and replay on recovery — the
    /// §IV-E frequency-vs-traffic trade-off; without them recovery replays
    /// from epoch 0.
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.checkpoint_interval = interval;
        self
    }

    /// Holds a lost node's shards for the same node id to re-register
    /// (same token, capped-backoff retry on the node side) before applying
    /// the [`OnNodeLoss`] policy (default 0 = reconnects disabled).
    pub fn reconnect_grace(mut self, grace: Duration) -> Self {
        self.reconnect_grace = grace;
        self
    }

    /// Arms a deterministic fault-injection schedule on the coordinator's
    /// links (tests and chaos runs; default none).
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Pins the live session's executor to `workers` worker threads
    /// (default: the host's available parallelism). Validated into
    /// `1..=`[`MAX_RT_WORKERS`].
    pub fn rt_workers(mut self, workers: u32) -> Self {
        self.rt_workers = Some(workers);
        self
    }

    /// Sets the capacity of the session's async channels (source →
    /// dispatcher and dispatcher → node; default
    /// [`crate::rt::DEFAULT_CHANNEL_CAPACITY`]). Validated into
    /// `1..=`[`MAX_CHANNEL_CAPACITY`].
    pub fn channel_capacity(mut self, capacity: u32) -> Self {
        self.channel_capacity = capacity;
        self
    }

    /// Validates into a bare [`DeploymentSpec`] (advanced use: driving a
    /// backend by hand, e.g. fault-injection tests stepping the emulator).
    pub fn spec(&self) -> Result<DeploymentSpec, DeployError> {
        let workload = self.workload.clone().ok_or(DeployError::MissingWorkload)?;
        if self.sources == 0 {
            return Err(DeployError::NoSources);
        }
        if !(self.cpu_budget.is_finite() && self.cpu_budget > 0.0) {
            return Err(DeployError::InvalidCpuBudget {
                got: self.cpu_budget,
            });
        }
        if !(1..=MAX_SP_SHARDS).contains(&self.sp_shards) {
            return Err(DeployError::InvalidShardCount {
                got: self.sp_shards,
                max: MAX_SP_SHARDS,
            });
        }
        if !(1..=self.sp_shards).contains(&self.sp_nodes) {
            return Err(DeployError::InvalidNodeCount {
                got: self.sp_nodes,
                shards: self.sp_shards,
            });
        }
        if let Some(workers) = self.rt_workers {
            if !(1..=MAX_RT_WORKERS).contains(&workers) {
                return Err(DeployError::InvalidRtWorkers {
                    got: workers,
                    max: MAX_RT_WORKERS,
                });
            }
        }
        if !(1..=MAX_CHANNEL_CAPACITY).contains(&self.channel_capacity) {
            return Err(DeployError::InvalidChannelCapacity {
                got: self.channel_capacity,
                max: MAX_CHANNEL_CAPACITY,
            });
        }
        // Planning validates the query and fixes the source-eligible prefix.
        let planned = crate::planner::plan_query(workload.logical_plan(), &self.rules)?;
        // Static plan analysis: key provenance across the shard boundary,
        // state mergeability under the chosen strategy, and shard/node/
        // transport feasibility. Errors refuse the build; warnings ride
        // along into the run report.
        let ctx = crate::plancheck::CheckContext {
            sp_shards: self.sp_shards,
            sp_nodes: self.sp_nodes,
            strategy: self.strategy,
            backend: self.backend,
            tcp: self.transport == TransportKind::Tcp,
            has_events: !self.events.is_empty(),
            remote_describable: workload.remote_workload().is_some(),
            workload: workload.name().to_string(),
            on_node_loss: self.on_node_loss,
            checkpointing: self.checkpoint_interval > 0,
            sources: self.sources,
            rt_workers: crate::rt::effective_workers(self.rt_workers) as u32,
            channel_capacity: self.channel_capacity,
        };
        let diagnostics = crate::plancheck::check(&planned, &self.rules, &ctx);
        if crate::plancheck::has_errors(&diagnostics) {
            return Err(DeployError::PlanCheck(
                diagnostics
                    .into_iter()
                    .filter(|d| d.severity == crate::plancheck::Severity::Error)
                    .collect(),
            ));
        }
        let plan_warnings: Vec<crate::plancheck::Diagnostic> = diagnostics
            .into_iter()
            .filter(|d| d.severity == crate::plancheck::Severity::Warning)
            .collect();
        if let Some(factors) = &self.fixed_load_factors {
            if self.strategy.is_adaptive() {
                return Err(DeployError::FixedFactorsWithAdaptiveStrategy {
                    strategy: self.strategy,
                });
            }
            if factors.len() != planned.source_ops {
                return Err(DeployError::LoadFactorArity {
                    expected: planned.source_ops,
                    got: factors.len(),
                });
            }
            for (index, &value) in factors.iter().enumerate() {
                if !(0.0..=1.0).contains(&value) || value.is_nan() {
                    return Err(DeployError::InvalidLoadFactor { index, value });
                }
            }
        }
        if self.backend == BackendKind::Convergence && !self.strategy.is_stepwise() {
            return Err(DeployError::StrategyBackendMismatch {
                strategy: self.strategy,
                backend: self.backend,
            });
        }
        if self.backend == BackendKind::Convergence && !self.events.is_empty() {
            return Err(DeployError::EventsUnsupported {
                backend: self.backend,
            });
        }
        let mut listen_addr = None;
        if self.transport == TransportKind::Tcp {
            // Feature feasibility (live backend, no events, describable
            // workload) was checked by plancheck above; what remains is the
            // endpoint itself.
            let raw = self
                .listen_addr
                .clone()
                .ok_or(DeployError::InvalidEndpoint {
                    got: "(none)".to_string(),
                })?;
            listen_addr = Some(
                raw.parse::<SocketAddr>()
                    .map_err(|_| DeployError::InvalidEndpoint { got: raw.clone() })?,
            );
        }
        Ok(DeploymentSpec {
            workload,
            strategy: self.strategy,
            sources: self.sources,
            cpu_budget: self.cpu_budget,
            sp_shards: self.sp_shards,
            sp_nodes: self.sp_nodes,
            network: self.network.unwrap_or(NetworkModel::PerSource {
                bps: calibration::per_query_per_node_bps(),
            }),
            rules: self.rules.clone(),
            planned,
            plan_warnings,
            warmup_epochs: self.warmup_epochs,
            seed: self.seed,
            fixed_load_factors: self.fixed_load_factors.clone(),
            events: self.events.clone(),
            collect_results: self.collect_results,
            transport: self.transport,
            listen_addr,
            auth_token: self.auth_token.clone(),
            handshake_timeout: self.handshake_timeout,
            node_timeout: self.node_timeout,
            on_node_loss: self.on_node_loss,
            liveness_timeout: self.liveness_timeout,
            checkpoint_interval: self.checkpoint_interval,
            reconnect_grace: self.reconnect_grace,
            fault_plan: self.fault_plan.clone(),
            rt_workers: self.rt_workers,
            channel_capacity: self.channel_capacity,
        })
    }

    /// Validates and pairs the spec with its backend.
    pub fn build(self) -> Result<Deployment, DeployError> {
        let spec = self.spec()?;
        let backend: Box<dyn ExecBackend> = match self.backend {
            BackendKind::Emulated => Box::new(EmulatedBackend::default()),
            BackendKind::Live => Box::new(LiveBackend::default()),
            BackendKind::Convergence => Box::new(ConvergenceBackend::default()),
        };
        Ok(Deployment { spec, backend })
    }
}

/// A validated deployment bound to an execution backend.
pub struct Deployment {
    spec: DeploymentSpec,
    backend: Box<dyn ExecBackend>,
}

impl fmt::Debug for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deployment")
            .field("spec", &self.spec)
            .field("backend", &self.backend.name())
            .finish()
    }
}

impl Deployment {
    /// Starts a builder.
    pub fn builder() -> DeploymentBuilder {
        DeploymentBuilder::default()
    }

    /// The validated spec.
    pub fn spec(&self) -> &DeploymentSpec {
        &self.spec
    }

    /// The backend (stepping, inspection).
    pub fn backend_mut(&mut self) -> &mut dyn ExecBackend {
        self.backend.as_mut()
    }

    /// Executes `epochs` epochs on the bound backend.
    ///
    /// Every call is a **fresh run** of the spec — backends rebuild their
    /// execution state first, so repeated calls give independent runs rather
    /// than continuations. Note that [`CustomWorkload`] generators are
    /// one-shot: re-running a deployment whose generators were already taken
    /// panics. Use [`EmulatedBackend::step`] directly for incremental
    /// stepping.
    pub fn run(&mut self, epochs: u64) -> Result<RunReport, DeployError> {
        let mut report = self.backend.run(&self.spec, epochs)?;
        report.plan_warnings = self.spec.plan_warnings.clone();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::experiment::ScenarioSpec;

    fn builder() -> DeploymentBuilder {
        Deployment::builder().workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
    }

    #[test]
    fn missing_workload_is_rejected() {
        let err = Deployment::builder().build().unwrap_err();
        assert_eq!(err, DeployError::MissingWorkload);
    }

    #[test]
    fn zero_sources_is_rejected() {
        let err = builder().sources(0).build().unwrap_err();
        assert_eq!(err, DeployError::NoSources);
    }

    #[test]
    fn non_positive_budget_is_rejected() {
        assert!(matches!(
            builder().cpu_budget(0.0).build().unwrap_err(),
            DeployError::InvalidCpuBudget { .. }
        ));
        assert!(matches!(
            builder().cpu_budget(f64::NAN).build().unwrap_err(),
            DeployError::InvalidCpuBudget { .. }
        ));
    }

    #[test]
    fn shard_count_is_range_checked() {
        assert_eq!(
            builder().sp_shards(0).build().unwrap_err(),
            DeployError::InvalidShardCount {
                got: 0,
                max: MAX_SP_SHARDS
            }
        );
        assert_eq!(
            builder().sp_shards(MAX_SP_SHARDS + 1).build().unwrap_err(),
            DeployError::InvalidShardCount {
                got: MAX_SP_SHARDS + 1,
                max: MAX_SP_SHARDS
            }
        );
        let d = builder().sp_shards(4).build().unwrap();
        assert_eq!(d.spec().sp_shards, 4);
    }

    #[test]
    fn node_count_is_validated_against_the_ring() {
        assert_eq!(
            builder().sp_shards(4).sp_nodes(0).build().unwrap_err(),
            DeployError::InvalidNodeCount { got: 0, shards: 4 }
        );
        assert_eq!(
            builder().sp_shards(4).sp_nodes(5).build().unwrap_err(),
            DeployError::InvalidNodeCount { got: 5, shards: 4 }
        );
        // One node per shard is the widest meaningful cluster.
        let d = builder().sp_shards(4).sp_nodes(4).build().unwrap();
        assert_eq!(d.spec().sp_nodes, 4);
    }

    #[test]
    fn sharding_rejects_plans_with_a_second_keyed_operator() {
        // A second GroupAggregate past the shard boundary would see its key
        // space partitioned by the *first* operator's keys — the builder
        // must refuse rather than silently duplicate groups.
        use streamkit::agg::{AggKind, AggSpec};
        use streamkit::logical::LogicalOp;
        use streamkit::ops::EmitMode;

        let mut plan = telemetry::queries::s2s_probe();
        plan.ops.push(LogicalOp::GroupAggregate {
            keys: vec![1],
            aggs: vec![AggSpec::new(AggKind::Avg, 3, "avg_of_avg")],
            emit: EmitMode::OnWindowClose,
        });
        plan.parallel.push(1);
        plan.validate()
            .expect("two-stage aggregation is a valid plan");
        let workload = crate::deploy::CustomWorkload::new(
            "double-agg",
            plan,
            streamkit::physical::CostProfile::default(),
            vec![],
        );
        let err = Deployment::builder()
            .workload(workload)
            .sp_shards(2)
            .build()
            .unwrap_err();
        let DeployError::PlanCheck(diags) = err else {
            panic!("expected PlanCheck, got {err:?}");
        };
        assert!(
            diags
                .iter()
                .any(|d| d.code == crate::plancheck::code::RESHARD_UNSUPPORTED),
            "got {diags:?}"
        );
    }

    #[test]
    fn out_of_range_load_factor_is_rejected() {
        let err = builder()
            .strategy(StrategyKind::AllSrc)
            .load_factors(vec![1.0, 1.5, 0.0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::InvalidLoadFactor {
                index: 1,
                value: 1.5
            }
        );
    }

    #[test]
    fn load_factor_arity_must_match_the_plan() {
        let err = builder()
            .strategy(StrategyKind::AllSrc)
            .load_factors(vec![1.0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::LoadFactorArity {
                expected: 3,
                got: 1
            }
        );
    }

    #[test]
    fn pinned_factors_with_adaptive_strategy_are_rejected() {
        let err = builder()
            .load_factors(vec![1.0, 1.0, 1.0])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::FixedFactorsWithAdaptiveStrategy {
                strategy: StrategyKind::Jarvis
            }
        );
    }

    #[test]
    fn convergence_backend_requires_a_stepwise_strategy() {
        let err = builder()
            .strategy(StrategyKind::BestOp)
            .backend(BackendKind::Convergence)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::StrategyBackendMismatch {
                strategy: StrategyKind::BestOp,
                backend: BackendKind::Convergence,
            }
        );
    }

    #[test]
    fn convergence_backend_rejects_scheduled_events() {
        let err = builder()
            .backend(BackendKind::Convergence)
            .events(&[crate::experiment::ResourceEvent {
                epoch: 3,
                cpu_budget: Some(0.9),
                table_size: None,
            }])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::EventsUnsupported {
                backend: BackendKind::Convergence
            }
        );
    }

    #[test]
    fn repeated_runs_are_independent_and_identical() {
        let mut d = builder()
            .cpu_budget(0.8)
            .collect_results(true)
            .build()
            .unwrap();
        let a = d.run(12).unwrap();
        let b = d.run(12).unwrap();
        assert_eq!(a.exactness, b.exactness, "each run() call is a fresh run");
        assert_eq!(a.results_emitted, b.results_emitted);
    }

    #[test]
    fn tcp_transport_requires_an_endpoint() {
        let err = builder()
            .backend(BackendKind::Live)
            .transport(TransportKind::Tcp)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::InvalidEndpoint {
                got: "(none)".to_string()
            }
        );
    }

    #[test]
    fn tcp_transport_rejects_an_unparseable_endpoint() {
        let err = builder()
            .backend(BackendKind::Live)
            .transport(TransportKind::Tcp)
            .listen_addr("not-a-socket-addr")
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            DeployError::InvalidEndpoint {
                got: "not-a-socket-addr".to_string()
            }
        );
    }

    #[test]
    fn tcp_transport_requires_the_live_backend() {
        let err = builder()
            .transport(TransportKind::Tcp)
            .listen_addr("127.0.0.1:0")
            .build()
            .unwrap_err();
        assert_plancheck_code(&err, crate::plancheck::code::TCP_NEEDS_LIVE);
    }

    /// Asserts `err` is a `PlanCheck` carrying the given lint code.
    fn assert_plancheck_code(err: &DeployError, code: &str) {
        let DeployError::PlanCheck(diags) = err else {
            panic!("expected PlanCheck({code}), got {err:?}");
        };
        assert!(diags.iter().any(|d| d.code == code), "got {diags:?}");
    }

    #[test]
    fn tcp_transport_rejects_scheduled_events() {
        let err = builder()
            .backend(BackendKind::Live)
            .transport(TransportKind::Tcp)
            .listen_addr("127.0.0.1:0")
            .events(&[crate::experiment::ResourceEvent {
                epoch: 3,
                cpu_budget: Some(0.9),
                table_size: None,
            }])
            .build()
            .unwrap_err();
        assert_plancheck_code(&err, crate::plancheck::code::TCP_WITH_EVENTS);
    }

    #[test]
    fn tcp_transport_rejects_undescribable_workloads() {
        // CustomWorkloads carry closures; they cannot be replanned remotely.
        let workload = CustomWorkload::new(
            "ad-hoc",
            telemetry::queries::s2s_probe(),
            streamkit::physical::CostProfile::default(),
            vec![],
        );
        let err = Deployment::builder()
            .workload(workload)
            .backend(BackendKind::Live)
            .transport(TransportKind::Tcp)
            .listen_addr("127.0.0.1:0")
            .build()
            .unwrap_err();
        assert_plancheck_code(&err, crate::plancheck::code::TCP_UNDESCRIBABLE);
    }

    #[test]
    fn in_process_specs_ignore_remote_knobs() {
        // listen_addr/auth on the default transport is inert, not an error.
        let d = builder()
            .listen_addr("not-a-socket-addr")
            .auth_token("secret")
            .build()
            .unwrap();
        assert_eq!(d.spec().transport, TransportKind::InProcess);
        assert_eq!(d.spec().listen_addr, None);
    }

    #[test]
    fn valid_spec_carries_defaults() {
        let d = builder().cpu_budget(0.6).build().unwrap();
        assert_eq!(d.spec().sources, 1);
        assert_eq!(d.spec().sp_shards, 1, "unsharded by default");
        assert_eq!(d.spec().sp_nodes, 1, "single-node SP by default");
        assert_eq!(
            d.spec().warmup_epochs,
            crate::experiment::DEFAULT_WARMUP_EPOCHS
        );
        assert_eq!(d.spec().strategy, StrategyKind::Jarvis);
    }
}
