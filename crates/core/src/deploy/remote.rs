//! Control-plane messages between a deployment coordinator and remote
//! `jarvis-node` executors.
//!
//! All control traffic is JSON inside [`transport`](crate::engine::transport)
//! frames; bulk shard traffic stays binary (`FrameKind::Shard` frames whose
//! bodies are untouched [`netwire`](crate::engine::netwire) envelopes, and
//! `FrameKind::Results` frames in the batch wire format). A node cannot
//! receive a `LogicalPlan` or `CostProfile` directly — both carry closures
//! and shared tables — so the spec crosses the wire as a compact
//! [`RemoteWorkload`] descriptor naming one of the paper workloads plus the
//! planner's [`RuleConfig`]; the node replans locally, which is
//! deterministic, so both sides agree on the chain, the shard boundary, and
//! every edge schema.

use serde::{Deserialize, Serialize};

use crate::calibration::Scale;
use crate::experiment::{ScenarioSpec, Workload};
use crate::planner::RuleConfig;

/// A workload descriptor a node can rebuild locally: the paper scenarios,
/// by name and scale. Ad-hoc [`CustomWorkload`](crate::deploy::CustomWorkload)s
/// carry closures and cannot cross the wire — the builder rejects them for
/// TCP deployments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RemoteWorkload {
    /// S2SProbe on Pingmesh.
    PingmeshS2S {
        /// Input-rate scale.
        scale: Scale,
    },
    /// T2TProbe on Pingmesh.
    PingmeshT2T {
        /// Input-rate scale.
        scale: Scale,
        /// Static-table size.
        table_size: u32,
    },
    /// LogAnalytics on text logs.
    LogAnalytics {
        /// Input-rate scale.
        scale: Scale,
    },
}

impl RemoteWorkload {
    /// The descriptor for a [`ScenarioSpec`], if one exists.
    pub fn of_scenario(spec: &ScenarioSpec) -> RemoteWorkload {
        match spec.workload {
            Workload::PingmeshS2S { scale } => RemoteWorkload::PingmeshS2S { scale },
            Workload::PingmeshT2T { scale, table_size } => {
                RemoteWorkload::PingmeshT2T { scale, table_size }
            }
            Workload::LogAnalytics { scale } => RemoteWorkload::LogAnalytics { scale },
        }
    }

    /// Rebuilds the scenario on the node side. Generators never run
    /// remotely (sources live on the coordinator), so the default
    /// `rate_skew`/`seed` are irrelevant to the plan, costs, and schemas
    /// this is used for.
    pub fn to_scenario(&self) -> ScenarioSpec {
        match *self {
            RemoteWorkload::PingmeshS2S { scale } => ScenarioSpec::pingmesh_s2s(scale),
            RemoteWorkload::PingmeshT2T { scale, table_size } => {
                ScenarioSpec::pingmesh_t2t(scale, table_size)
            }
            RemoteWorkload::LogAnalytics { scale } => ScenarioSpec::log_analytics(scale),
        }
    }
}

/// Node → coordinator: the first frame on a connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Register {
    /// Shared-secret authentication token (empty when auth is disabled).
    pub token: String,
    /// Requested node id; `None` lets the coordinator assign the lowest
    /// free slot.
    pub node_id: Option<u32>,
}

/// Coordinator → node: registration accepted.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Admit {
    /// The node id this executor owns for the run.
    pub node_id: u32,
}

/// Coordinator → node: registration refused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reject {
    /// Human-readable refusal reason.
    pub reason: String,
}

/// Coordinator → node: the deployment slice this node executes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// This node's id (owns `shards_of_node(node_id, n_shards, n_nodes)`).
    pub node_id: u32,
    /// SP nodes in the cluster.
    pub n_nodes: u32,
    /// Virtual shards on the fixed ring.
    pub n_shards: u32,
    /// Data sources feeding the deployment (one replica pipeline each).
    pub sources: u32,
    /// The workload to replan locally.
    pub workload: RemoteWorkload,
    /// Planner rules — must match the coordinator's for identical chains.
    pub rules: RuleConfig,
    /// Snapshot owned-shard state every N epochs and ship it back as
    /// `Ckpt` frames (0 disables checkpointing).
    pub checkpoint_interval: u64,
}

/// Node → coordinator: cumulative counters after each epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Progress {
    /// Reporting node.
    pub node_id: u32,
    /// Epoch just finished (coordinator's epoch index).
    pub epoch: u64,
    /// Input rows routed into this node's owned shards so far.
    pub drained_records: u64,
    /// Counterfactual compute charged to the owned shards so far, µs.
    pub usage_us: f64,
    /// Present when the node checkpointed at this epoch boundary: commits
    /// the `Ckpt` frames that preceded this ack (per-link FIFO order).
    pub checkpoint: Option<CheckpointAck>,
}

/// The checkpoint acknowledgement riding on a [`Progress`] message. The
/// state itself travelled just before, as binary `Ckpt` frames (one
/// `netwire` shard-state envelope each); this ack tells the coordinator
/// the set is complete and which counters accompany it, so the replay
/// buffers can be truncated to post-checkpoint traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointAck {
    /// Epoch the snapshot covers (all state up to and including it).
    pub epoch: u64,
    /// Per-owned-shard counters frozen at the snapshot.
    pub shards: Vec<ShardCounters>,
}

/// Coordinator → node: take over shards lost with a failed peer (or, on a
/// reconnect, re-own your previous shards). Checkpoint state and replayed
/// traffic follow as ordinary `Shard` frames on the same link.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptMsg {
    /// The shards to adopt, with counter bases from the last checkpoint.
    pub shards: Vec<AdoptShard>,
}

/// One shard of an [`AdoptMsg`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdoptShard {
    /// Ring-absolute shard index.
    pub shard: u32,
    /// Drained-record base carried over from the checkpoint.
    pub drained_records: u64,
    /// Compute-usage base carried over from the checkpoint, µs.
    pub usage_us: f64,
}

/// One owned shard's final counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardCounters {
    /// Ring-absolute shard index.
    pub shard: u32,
    /// Input rows routed into the shard.
    pub drained_records: u64,
    /// Counterfactual compute charged, µs.
    pub usage_us: f64,
}

/// Node → coordinator: final per-shard accounting, sent before `Done`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeStatsMsg {
    /// Reporting node.
    pub node_id: u32,
    /// One entry per owned shard, in ring order.
    pub shards: Vec<ShardCounters>,
}

/// Serializes a control message to a JSON frame body.
pub fn to_body<T: serde::Serialize>(msg: &T) -> Vec<u8> {
    serde_json::to_string(msg)
        .expect("control messages serialize")
        .into_bytes()
}

/// Parses a JSON control-frame body.
pub fn from_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, String> {
    let text = std::str::from_utf8(body).map_err(|e| format!("control frame not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("control frame malformed: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn control_messages_round_trip_as_json() {
        let spec = NodeSpec {
            node_id: 1,
            n_nodes: 2,
            n_shards: 4,
            sources: 2,
            workload: RemoteWorkload::PingmeshT2T {
                scale: Scale::X5,
                table_size: 500,
            },
            rules: RuleConfig::default(),
            checkpoint_interval: 2,
        };
        let body = to_body(&spec);
        let back: NodeSpec = from_body(&body).unwrap();
        assert_eq!(back, spec);

        let ack = Progress {
            node_id: 0,
            epoch: 3,
            drained_records: 10,
            usage_us: 1.5,
            checkpoint: Some(CheckpointAck {
                epoch: 3,
                shards: vec![ShardCounters {
                    shard: 2,
                    drained_records: 10,
                    usage_us: 1.5,
                }],
            }),
        };
        let back: Progress = from_body(&to_body(&ack)).unwrap();
        assert_eq!(back, ack);

        let adopt = AdoptMsg {
            shards: vec![AdoptShard {
                shard: 3,
                drained_records: 7,
                usage_us: 0.25,
            }],
        };
        let back: AdoptMsg = from_body(&to_body(&adopt)).unwrap();
        assert_eq!(back, adopt);

        let reg = Register {
            token: "secret".into(),
            node_id: None,
        };
        let back: Register = from_body(&to_body(&reg)).unwrap();
        assert_eq!(back, reg);
        assert!(from_body::<Register>(b"{not json").is_err());
    }

    #[test]
    fn remote_workloads_rebuild_identical_plans() {
        for spec in [
            ScenarioSpec::pingmesh_s2s(Scale::X1),
            ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
            ScenarioSpec::log_analytics(Scale::X10),
        ] {
            let remote = RemoteWorkload::of_scenario(&spec);
            let rebuilt = remote.to_scenario();
            assert_eq!(
                rebuilt.logical_plan().display_chain(),
                spec.logical_plan().display_chain()
            );
            assert_eq!(rebuilt.name(), spec.name());
        }
    }
}
