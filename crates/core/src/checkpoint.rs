//! Checkpointing of intermediate state (paper §IV-E, "Fault tolerance").
//!
//! The data source periodically checkpoints the mergeable state its stateful
//! operators have accumulated for the current window (plus the control-proxy
//! load factors). After a source failure, the stream processor merges the
//! checkpoint and processes the remaining data for the window; after a
//! restart, the source resumes with its adapted load factors instead of
//! re-converging from scratch.
//!
//! This module covers the **source side**. The distributed SP tier has its
//! own epoch-aligned checkpoint path: each `jarvis-node` executor cuts a
//! cumulative snapshot at checkpoint boundaries — every stateful operator
//! via the non-destructive `Operator::checkpoint_state` (which, unlike
//! [`take_state_delta`](streamkit::ops::Operator::take_state_delta), also
//! covers final-role aggregations) plus the result rows already collected
//! past the chain — and ships it back as `Ckpt` frames. The coordinator
//! keeps the last acked snapshot per shard and a replay buffer of
//! post-checkpoint traffic, which recovery re-ships to a reconnecting
//! executor or to survivors adopting the lost shards (see
//! [`crate::deploy::OnNodeLoss`]). The same §IV-E trade-off applies: a
//! shorter interval spends steady-state checkpoint bytes to shrink the
//! replay a failure has to pay for.

use serde::{Deserialize, Serialize};
use streamkit::ops::StatePartial;

use crate::engine::source::SourceEngine;

/// A source-side checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Stateful-operator snapshots as `(stage index, state)`.
    pub states: Vec<(usize, StatePartial)>,
    /// Control-proxy load factors at checkpoint time.
    pub load_factors: Vec<f64>,
}

impl Checkpoint {
    /// Total checkpoint payload size in bytes (network-cost accounting —
    /// §IV-E notes checkpointing frequency trades off against traffic).
    pub fn wire_bytes(&self) -> usize {
        self.states
            .iter()
            .map(|(_, s)| s.wire_bytes())
            .sum::<usize>()
            + self.load_factors.len() * 8
    }
}

/// Captures a checkpoint without disturbing live state: partial state is
/// drained from each stateful operator and immediately merged back.
pub fn snapshot(engine: &mut SourceEngine) -> Checkpoint {
    let load_factors = engine.load_factors();
    let mut states = Vec::new();
    for stage in 0..load_factors.len() {
        let op = engine.op_mut(stage);
        if !op.is_stateful() {
            continue;
        }
        if let Some(delta) = op.take_state_delta() {
            op.merge_state(delta.clone());
            states.push((stage, delta));
        }
    }
    Checkpoint {
        states,
        load_factors,
    }
}

/// Restores a checkpoint into a (fresh) source engine: merges the state back
/// and reinstalls the load factors.
pub fn restore(engine: &mut SourceEngine, ckpt: &Checkpoint) {
    for (stage, state) in &ckpt.states {
        engine.op_mut(*stage).merge_state(state.clone());
    }
    engine.set_load_factors(&ckpt.load_factors);
}

/// Applies a failed source's checkpoint directly at the stream processor:
/// the source's ingress node merges the state (splitting entries to the
/// shards — and nodes — owning their keys) so the current window completes
/// from the drain path (returns the merged byte volume for traffic
/// accounting).
pub fn apply_at_sp(
    sp: &mut crate::engine::cluster::SpCluster,
    source: usize,
    ckpt: &Checkpoint,
    arrival_secs: f64,
) -> usize {
    let mut bytes = 0;
    for (stage, state) in &ckpt.states {
        bytes += state.wire_bytes();
        sp.deliver(
            source,
            crate::engine::NetPayload::StateDelta {
                stage: *stage,
                delta: state.clone(),
            },
            arrival_secs,
        );
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::Scale;
    use crate::engine::block::BuildingBlock;
    use crate::experiment::ScenarioSpec;
    use crate::strategy::StrategyKind;

    fn block(spec: ScenarioSpec, strategy: StrategyKind) -> BuildingBlock {
        let dspec = crate::deploy::Deployment::builder()
            .workload(spec)
            .strategy(strategy)
            .cpu_budget(1.0)
            .spec()
            .unwrap();
        crate::deploy::build_block(&dspec).unwrap().1
    }

    #[test]
    fn snapshot_preserves_live_state() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
        let mut s = block(spec, StrategyKind::AllSrc);
        // Run a few epochs so the G+R accumulates state (ship interval is 2,
        // so run one epoch past a ship to leave residue).
        for _ in 0..3 {
            s.run_epoch();
        }
        let engine = s.source_mut(0);
        let before = engine.load_factors();
        let ckpt = snapshot(engine);
        assert_eq!(ckpt.load_factors, before);
        // Snapshotting must not clear the operator state: a second snapshot
        // sees the same entries.
        let ckpt2 = snapshot(s.source_mut(0));
        let count = |c: &Checkpoint| c.states.iter().map(|(_, s)| s.entry_count()).sum::<usize>();
        assert_eq!(count(&ckpt), count(&ckpt2));
        assert!(ckpt.wire_bytes() > 0 || count(&ckpt) == 0);
    }

    #[test]
    fn restore_reinstalls_state_and_factors() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
        let mut s = block(spec.clone(), StrategyKind::AllSrc);
        for _ in 0..3 {
            s.run_epoch();
        }
        let ckpt = snapshot(s.source_mut(0));

        // "Restart": a fresh engine for the same query.
        let mut fresh = block(spec, StrategyKind::AllSp);
        restore(fresh.source_mut(0), &ckpt);
        assert_eq!(fresh.source(0).load_factors(), ckpt.load_factors);
        let again = snapshot(fresh.source_mut(0));
        let count = |c: &Checkpoint| c.states.iter().map(|(_, s)| s.entry_count()).sum::<usize>();
        assert_eq!(count(&again), count(&ckpt), "restored state round-trips");
    }

    #[test]
    fn failover_to_sp_merges_checkpoint() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
        let mut s = block(spec.clone(), StrategyKind::AllSrc);
        for _ in 0..3 {
            s.run_epoch();
        }
        let ckpt = snapshot(s.source_mut(0));
        let planned = spec.plan();
        let mut sp =
            crate::engine::cluster::SpCluster::new(&planned, &spec.costs(), 1, 64.0, 1.0, 4, 2);
        let bytes = apply_at_sp(&mut sp, 0, &ckpt, 3.0);
        assert_eq!(
            bytes,
            ckpt.states
                .iter()
                .map(|(_, s)| s.wire_bytes())
                .sum::<usize>()
        );
        // The merged window closes and emits results at the SP.
        sp.run_epoch(20_000_000);
        assert!(
            sp.results_emitted() > 0,
            "checkpointed window must complete at SP"
        );
    }
}
