//! `jarvis-core` — the paper's contribution: adaptive data-level query
//! partitioning for server monitoring.
//!
//! The crate layers the Jarvis design of §IV on the substrates:
//!
//! * [`proxy`] — the **control proxy**, a light-weight router between
//!   adjacent operators that forwards a load-factor fraction of records to
//!   the local operator and drains the rest to the stream-processor replica,
//!   and classifies its operator as Idle / Congested / Stable each epoch.
//! * [`runtime`] — the **Jarvis runtime** state machine
//!   (Startup → Probe → Profile → Adapt) with the 3-epoch change debounce.
//! * [`stepwise`] — **StepWise-Adapt**: LP-based initial load factors
//!   (via `jarvis-lp`) plus model-agnostic fine-tuning (relay-ratio
//!   priorities, binary search over discretised load factors).
//! * [`planner`] — control-proxy insertion and the operator-eligibility
//!   rules R-1..R-4 of §IV-B.
//! * [`plancheck`] — static plan analysis: the R-1..R-4 rule engine plus
//!   key-provenance, state-mergeability, and deployment cross-checks as
//!   structured `JPxxx` diagnostics, run by the deployment builder before
//!   anything executes.
//! * [`strategy`] — Jarvis and the five baselines of §VI-A (All-SP, All-Src,
//!   Filter-Src, Best-OP, LB-DP) plus the two ablation variants of §VI-C
//!   (LP-only, w/o LP-init), all expressed as load-factor policies.
//! * [`engine`] — the per-node execution engines that charge operator costs
//!   to `simnet` CPU budgets and route drained data over links, including
//!   the multi-node SP cluster dispatching shard traffic over `NetPayload`.
//! * [`experiment`] — scenario harnesses regenerating the paper's figures.
//! * [`convergence_sim`] — the §VI-C exhaustive convergence-cost simulator.
//! * [`multiquery`] — multiple queries on one data source (§VI-F).
//! * [`checkpoint`] — intermediate-state checkpointing (§IV-E).
//! * [`fault`] — deterministic fault injection driving the §IV-E recovery
//!   parity suites and the chaos-proxy CI job.
//! * [`rt`] — the cooperative task runtime (work-stealing executor,
//!   bounded async channels, timer wheel) the live session schedules its
//!   source / dispatcher / node tasks on.
//! * [`live`] — the task-runtime live session running the same pipelines
//!   under real concurrency (one task per source, 10k sources on
//!   `num_cpus` workers).
//! * [`node`] — the remote stream-processor executor behind the
//!   `jarvis-node` binary (TCP transport).

pub mod calibration;
pub mod checkpoint;
pub mod convergence_sim;
pub mod deploy;
pub mod engine;
pub mod experiment;
pub mod fault;
pub mod live;
pub mod multiquery;
pub mod node;
pub mod plancheck;
pub mod planner;
pub mod proxy;
pub mod rt;
pub mod runtime;
pub mod stepwise;
pub mod strategy;

pub use deploy::{
    BackendKind, DeployError, Deployment, DeploymentBuilder, DeploymentSpec, ExecBackend,
    RunReport, SourceAdapter, TransportKind,
};
pub use plancheck::{CheckContext, Diagnostic, Severity};
pub use proxy::{ControlProxy, ProxyState, QueryState};
pub use runtime::{JarvisRuntime, Phase, RuntimeConfig};
pub use stepwise::{PriorityRule, StepWiseAdapt, StepWiseConfig};
pub use strategy::StrategyKind;
