//! Query-plan generation for Jarvis (paper §IV-B).
//!
//! Takes a user query (logical plan), applies the standard logical
//! optimisations, then determines the *source-eligible prefix* — the chain of
//! operators that may execute on data sources — using the paper's rules:
//!
//! * **R-1** — aggregations that are not incrementally updatable (e.g. exact
//!   quantiles) cannot run near data; their approximate, mergeable versions
//!   can.
//! * **R-2** — operators downstream of a stateful operation that requires
//!   aggregation across data sources are SP-only: the prefix ends at (and
//!   includes) the first grouped aggregation, which runs in Partial role.
//! * **R-3** — stateful stream-stream joins are SP-only (the engine's
//!   stream-table joins are fine).
//! * **R-4** — multiple physical operators per logical operator are not used
//!   on data sources (no intra-operator parallelism under a constrained
//!   budget); intermediate SPs may parallelise.
//!
//! The rules live in a [`RuleConfig`] and can be extended, mirroring the
//! paper's "rules are described in a configuration file".

use serde::{Deserialize, Serialize};
use streamkit::agg::AggKind;
use streamkit::error::Result;
use streamkit::logical::{LogicalOp, LogicalPlan};
use streamkit::optimizer::optimize;

/// Why an operator was excluded from the source-eligible prefix.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exclusion {
    /// R-1: non-incrementally-updatable aggregation.
    NonIncrementalAggregate,
    /// R-2: downstream of a cross-source stateful operator.
    AfterStatefulBoundary,
    /// R-3: stateful stream-stream join.
    StreamJoin,
    /// R-4: parallel physical operators requested.
    ParallelOperator,
}

/// The eligibility rule configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RuleConfig {
    /// R-1 enabled.
    pub forbid_non_incremental: bool,
    /// Treat approximate quantiles as exact (forces R-1 to fire on them;
    /// used to demonstrate the rule, default false — the paper notes
    /// approximate quantiles *do* benefit from Jarvis).
    pub quantiles_are_exact: bool,
    /// R-2 enabled.
    pub forbid_after_stateful: bool,
    /// Maximum physical operators per logical operator on a source (R-4).
    pub max_source_parallelism: u32,
}

impl Default for RuleConfig {
    fn default() -> Self {
        RuleConfig {
            forbid_non_incremental: true,
            quantiles_are_exact: false,
            forbid_after_stateful: true,
            max_source_parallelism: 1,
        }
    }
}

impl RuleConfig {
    /// Whether an aggregate kind is incrementally updatable (and hence a
    /// commutative mergeable partial) under these rules.
    pub fn agg_is_incremental(&self, kind: &AggKind) -> bool {
        match kind {
            AggKind::Count | AggKind::Sum | AggKind::Min | AggKind::Max | AggKind::Avg => true,
            AggKind::ApproxQuantile { .. } => !self.quantiles_are_exact,
        }
    }
}

/// A query prepared for Jarvis deployment.
#[derive(Debug, Clone)]
pub struct PlannedQuery {
    /// The optimised logical plan (deployed on both sides).
    pub plan: LogicalPlan,
    /// Number of leading operators eligible to run on data sources; each
    /// gets a control proxy. Operators beyond the prefix run SP-only.
    pub source_ops: usize,
    /// Exclusion reasons, aligned to `plan.ops[source_ops..]` where known.
    pub exclusions: Vec<(usize, Exclusion)>,
}

impl PlannedQuery {
    /// Index of the first grouped aggregation within the source prefix, if
    /// any (the Partial-role operator).
    pub fn partial_agg_index(&self) -> Option<usize> {
        self.plan.ops[..self.source_ops]
            .iter()
            .position(|op| matches!(op, LogicalOp::GroupAggregate { .. }))
    }
}

/// Optimises the plan and computes the source-eligible prefix.
///
/// Rule evaluation lives in [`crate::plancheck::source_eligibility`] — the
/// same engine the static analyzer surfaces as `JP001`–`JP004` diagnostics —
/// so planner exclusions and lint output can never disagree.
pub fn plan_query(plan: LogicalPlan, rules: &RuleConfig) -> Result<PlannedQuery> {
    plan.validate()?;
    let plan = optimize(plan);
    plan.validate()?;
    let eligibility = crate::plancheck::source_eligibility(&plan, rules);
    Ok(PlannedQuery {
        plan,
        source_ops: eligibility.source_ops,
        exclusions: eligibility.exclusions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamkit::agg::AggKind;
    use streamkit::expr::Expr;
    use streamkit::query::Query;
    use streamkit::schema::{DataType, Field, Schema, SchemaRef};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("k", DataType::U32),
            Field::new("v", DataType::U32),
            Field::new("err", DataType::U32),
        ])
    }

    #[test]
    fn full_chain_is_eligible_when_agg_is_last() {
        let plan = Query::stream("q", schema())
            .window_secs(10.0)
            .filter_named("err", |c| c.eq(Expr::lit(0u64)))
            .group_by(&["k"])
            .aggregate(&[(AggKind::Avg, "v", "avg_v")])
            .build()
            .unwrap();
        let planned = plan_query(plan, &RuleConfig::default()).unwrap();
        assert_eq!(planned.source_ops, 3);
        assert!(planned.exclusions.is_empty());
        assert_eq!(planned.partial_agg_index(), Some(2));
    }

    #[test]
    fn r2_excludes_ops_after_the_aggregate() {
        // W -> G+R -> F(avg > 100): the trailing filter needs merged state.
        let plan = Query::stream("q", schema())
            .window_secs(10.0)
            .group_by(&["k"])
            .aggregate(&[(AggKind::Avg, "v", "avg_v")])
            .filter_named("avg_v", |c| c.gt(Expr::lit(100.0)))
            .build()
            .unwrap();
        let planned = plan_query(plan, &RuleConfig::default()).unwrap();
        assert_eq!(planned.source_ops, 2, "prefix = W, G+R");
        assert_eq!(
            planned.exclusions,
            vec![(2, Exclusion::AfterStatefulBoundary)]
        );
    }

    #[test]
    fn r1_fires_when_quantiles_are_treated_exact() {
        let plan = Query::stream("q", schema())
            .window_secs(10.0)
            .group_by(&["k"])
            .aggregate(&[(
                AggKind::ApproxQuantile {
                    q: 0.99,
                    lo: 0.0,
                    hi: 1e6,
                },
                "v",
                "p99",
            )])
            .build()
            .unwrap();
        let rules_ok = RuleConfig::default();
        let planned = plan_query(plan.clone(), &rules_ok).unwrap();
        assert_eq!(planned.source_ops, 2, "approximate quantiles are eligible");

        let rules_exact = RuleConfig {
            quantiles_are_exact: true,
            ..Default::default()
        };
        let planned = plan_query(plan, &rules_exact).unwrap();
        assert_eq!(
            planned.source_ops, 1,
            "exact quantiles stop the prefix at W"
        );
        assert!(planned
            .exclusions
            .contains(&(1, Exclusion::NonIncrementalAggregate)));
    }

    #[test]
    fn r3_fires_on_a_streaming_join() {
        use std::sync::Arc;
        use streamkit::ops::{JoinMiss, StaticTable};
        use streamkit::value::Value;

        let snapshot = Arc::new(StaticTable::new(
            vec![streamkit::schema::Field::new("peer", DataType::U32)],
            (0u64..8).map(|k| (Value::U64(k), vec![Value::U64(k + 1)])),
        ));
        let plan = Query::stream("sj", schema())
            .window_secs(10.0)
            .join_stream(snapshot, "k", JoinMiss::Drop)
            .group_by(&["k"])
            .aggregate(&[(AggKind::Count, "v", "n")])
            .build()
            .unwrap();
        let planned = plan_query(plan, &RuleConfig::default()).unwrap();
        assert_eq!(planned.source_ops, 1, "prefix stops before the stream join");
        assert!(planned.exclusions.contains(&(1, Exclusion::StreamJoin)));
    }

    #[test]
    fn r4_fires_on_a_parallel_operator() {
        let plan = Query::stream("q", schema())
            .window_secs(10.0)
            .filter_named("err", |c| c.eq(Expr::lit(0u64)))
            .parallel(4)
            .group_by(&["k"])
            .aggregate(&[(AggKind::Avg, "v", "avg_v")])
            .build()
            .unwrap();
        let planned = plan_query(plan.clone(), &RuleConfig::default()).unwrap();
        assert_eq!(planned.source_ops, 1, "prefix stops at the parallel filter");
        assert!(planned
            .exclusions
            .contains(&(1, Exclusion::ParallelOperator)));

        // Raising the source budget re-admits the operator.
        let wide = RuleConfig {
            max_source_parallelism: 4,
            ..Default::default()
        };
        let planned = plan_query(plan, &wide).unwrap();
        assert_eq!(planned.source_ops, 3);
        assert!(planned.exclusions.is_empty());
    }

    #[test]
    fn planner_runs_the_optimizer() {
        // A constant-true filter disappears during planning.
        let plan = Query::stream("q", schema())
            .window_secs(10.0)
            .filter(Expr::lit(1i64).lt(Expr::lit(2i64)))
            .group_by(&["k"])
            .aggregate(&[(AggKind::Count, "v", "n")])
            .build()
            .unwrap();
        let planned = plan_query(plan, &RuleConfig::default()).unwrap();
        assert_eq!(planned.plan.display_chain(), "W -> G+R");
    }

    #[test]
    fn paper_queries_are_fully_eligible() {
        let planned = plan_query(telemetry::queries::s2s_probe(), &RuleConfig::default()).unwrap();
        assert_eq!(planned.source_ops, 3);
        let planned =
            plan_query(telemetry::queries::log_analytics(), &RuleConfig::default()).unwrap();
        assert_eq!(planned.source_ops, planned.plan.ops.len());
        let (src, dst) = telemetry::queries::t2t_tables(500, 40, &[1]);
        let planned = plan_query(
            telemetry::queries::t2t_probe(src, dst),
            &RuleConfig::default(),
        )
        .unwrap();
        assert_eq!(
            planned.source_ops, 6,
            "joins with static tables are eligible"
        );
    }
}
