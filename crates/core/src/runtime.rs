//! The Jarvis runtime state machine (paper §IV-C, Fig. 6).
//!
//! One runtime instance lives on each data source per query, fully
//! decentralised: it probes the control proxies at every epoch boundary
//! (`ProbeCP()`), debounces non-stable observations over
//! [`RuntimeConfig::detect_epochs`] epochs, then runs a Profile epoch to
//! estimate operator costs/relay ratios and an Adapt phase that installs
//! initial load factors and fine-tunes until the query is stable again.

use serde::{Deserialize, Serialize};

use crate::proxy::QueryState;
use crate::stepwise::{ProfileEstimates, StepWiseAdapt, StepWiseConfig};

/// An adaptation policy plugged into the runtime's Adapt phase. Jarvis uses
/// [`StepWiseAdapt`]; the Best-OP and LB-DP baselines provide their own
/// policies (operator-level boundary solving, proportional load balancing).
pub trait AdaptPolicy: Send {
    /// Computes initial load factors from profile estimates.
    fn init_plan(&mut self, est: &ProfileEstimates) -> Vec<f64>;
    /// One fine-tuning step; returns true when a load factor changed.
    fn fine_tune(&mut self, p: &mut [f64], state: QueryState) -> bool;
    /// Whether this policy iteratively fine-tunes after `init_plan` (the
    /// runtime then enters the Adapt phase even when the initial plan equals
    /// the running one).
    fn fine_tunes(&self) -> bool {
        false
    }
    /// Policy name for traces.
    fn name(&self) -> &'static str;
}

impl AdaptPolicy for StepWiseAdapt {
    fn init_plan(&mut self, est: &ProfileEstimates) -> Vec<f64> {
        StepWiseAdapt::init_plan(self, est)
    }

    fn fine_tune(&mut self, p: &mut [f64], state: QueryState) -> bool {
        StepWiseAdapt::fine_tune(self, p, state)
    }

    fn fine_tunes(&self) -> bool {
        self.config().use_fine_tuning
    }

    fn name(&self) -> &'static str {
        "stepwise-adapt"
    }
}

/// Operational phase (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Initialisation: all load factors zero, everything drains to the SP.
    Startup,
    /// Normal operation; watching proxy states.
    Probe,
    /// Diagnosis epoch: measure operator costs, relay ratios, budget.
    Profile,
    /// Installing/fine-tuning a new data-level partitioning plan.
    Adapt,
}

/// Category traced per epoch for the Fig. 8 convergence plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceState {
    /// Query stable.
    Stable,
    /// Non-stable observed, debounce still counting.
    Detect,
    /// Query idle (undersubscribed).
    Idle,
    /// Profiling epoch.
    Profile,
    /// Query congested (oversubscribed).
    Congested,
}

/// Runtime configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Consecutive non-stable epochs before adaptation triggers.
    pub detect_epochs: u32,
    /// Whether this runtime adapts at all (fixed baselines set false).
    pub adaptive: bool,
    /// StepWise-Adapt configuration.
    pub stepwise: StepWiseConfig,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            detect_epochs: crate::calibration::DETECT_EPOCHS,
            adaptive: true,
            stepwise: StepWiseConfig::default(),
        }
    }
}

/// What the engine must do next epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDecision {
    /// Phase the runtime will be in next epoch.
    pub phase: Phase,
    /// New load factors to install, if any.
    pub set_load_factors: Option<Vec<f64>>,
    /// Run the next epoch in profiling mode.
    pub run_profile: bool,
}

/// One trace entry per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochTrace {
    /// Epoch index.
    pub epoch: u64,
    /// Phase the runtime was in during the epoch.
    pub phase: Phase,
    /// Observed query state.
    pub state: QueryState,
    /// Fig. 8 category.
    pub trace: TraceState,
}

/// Epochs of idle-signal suppression after an adaptation concluded nothing
/// better exists (congestion always interrupts the hold-off).
pub const IDLE_HOLDOFF_EPOCHS: u32 = 30;

/// Cost charged to the node for running ProbeCP each epoch, µs. Together
/// with profile/adapt costs this stays well under 1 % of a core (§VI-B).
pub const PROBE_COST_US: f64 = 50.0;
/// Cost of solving the LP + installing a plan, µs.
pub const ADAPT_COST_US: f64 = 500.0;
/// Extra measurement overhead during a profile epoch, µs.
pub const PROFILE_COST_US: f64 = 2_000.0;

/// The per-source, per-query Jarvis runtime.
pub struct JarvisRuntime {
    cfg: RuntimeConfig,
    phase: Phase,
    nonstable_streak: u32,
    adapter: Box<dyn AdaptPolicy>,
    estimates: Option<ProfileEstimates>,
    trace: Vec<EpochTrace>,
    epoch: u64,
    /// Epoch at which the current adaptation episode started (for
    /// convergence measurements).
    episode_start: Option<u64>,
    /// Completed adaptation episodes as (start_epoch, stable_epoch).
    episodes: Vec<(u64, u64)>,
    /// Total adaptation compute charged, µs.
    overhead_us: f64,
    /// Epochs during which *idle* observations are ignored (set after an
    /// adaptation found nothing better, to avoid profile churn; congestion
    /// always interrupts).
    idle_holdoff: u32,
}

impl JarvisRuntime {
    /// Creates a runtime for a query with `ops` source-side operators, using
    /// StepWise-Adapt as configured.
    pub fn new(cfg: RuntimeConfig, ops: usize) -> JarvisRuntime {
        let adapter = Box::new(StepWiseAdapt::new(cfg.stepwise, ops));
        JarvisRuntime::with_policy(cfg, adapter)
    }

    /// Creates a runtime with a custom adaptation policy (Best-OP, LB-DP).
    pub fn with_policy(cfg: RuntimeConfig, adapter: Box<dyn AdaptPolicy>) -> JarvisRuntime {
        JarvisRuntime {
            adapter,
            cfg,
            phase: Phase::Startup,
            nonstable_streak: 0,
            estimates: None,
            trace: Vec::new(),
            epoch: 0,
            episode_start: None,
            episodes: Vec::new(),
            overhead_us: 0.0,
            idle_holdoff: 0,
        }
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// The per-epoch trace (Fig. 8 series).
    pub fn trace(&self) -> &[EpochTrace] {
        &self.trace
    }

    /// Completed adaptation episodes as `(trigger_epoch, stable_epoch)`.
    pub fn episodes(&self) -> &[(u64, u64)] {
        &self.episodes
    }

    /// Total adaptation compute charged so far, µs.
    pub fn overhead_us(&self) -> f64 {
        self.overhead_us
    }

    /// Latest profile estimates, if any.
    pub fn estimates(&self) -> Option<&ProfileEstimates> {
        self.estimates.as_ref()
    }

    /// The adaptation policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.adapter.name()
    }

    /// Epoch-boundary hook. `state` is the ProbeCP result for the finished
    /// epoch; `profile` carries estimates when the finished epoch ran in
    /// profiling mode; `current_p` are the live load factors.
    pub fn on_epoch_end(
        &mut self,
        state: QueryState,
        profile: Option<ProfileEstimates>,
        current_p: &[f64],
    ) -> EpochDecision {
        let phase_during_epoch = self.phase;
        self.overhead_us += PROBE_COST_US;
        // Fresh estimates are stored regardless of phase: profiling can also
        // be initiated externally (tests, manual diagnosis).
        if let Some(est) = profile {
            self.estimates = Some(est);
        }

        let mut decision = EpochDecision {
            phase: self.phase,
            set_load_factors: None,
            run_profile: false,
        };

        match self.phase {
            Phase::Startup => {
                // Paper: adaptive runtimes start with everything draining to
                // the SP, then let the Probe→Profile→Adapt loop pull work
                // local. Fixed strategies keep their configured factors.
                if self.cfg.adaptive {
                    decision.set_load_factors = Some(vec![0.0; current_p.len()]);
                }
                self.phase = Phase::Probe;
            }
            Phase::Probe => {
                if state == QueryState::Stable {
                    // Close any adaptation episode that ended via a
                    // no-further-moves Adapt exit.
                    if let Some(start) = self.episode_start.take() {
                        self.episodes.push((start, self.epoch));
                    }
                }
                if !self.cfg.adaptive {
                    // Fixed strategies never adapt.
                } else if state == QueryState::Stable {
                    // Decay rather than reset: workloads whose congestion
                    // alternates with the state-ship cadence (e.g. a grown
                    // join table) must still accumulate towards detection,
                    // while isolated noisy epochs still wash out.
                    self.nonstable_streak = self.nonstable_streak.saturating_sub(1);
                } else if state == QueryState::Idle && self.idle_holdoff > 0 {
                    // A recent adaptation concluded there is nothing better
                    // to pull local; don't churn on the residual idleness.
                    self.idle_holdoff -= 1;
                    self.nonstable_streak = 0;
                } else {
                    self.nonstable_streak += 1;
                    if self.nonstable_streak >= self.cfg.detect_epochs {
                        self.nonstable_streak = 0;
                        self.phase = Phase::Profile;
                        self.episode_start = Some(self.epoch);
                        decision.run_profile = true;
                    }
                }
            }
            Phase::Profile => {
                self.overhead_us += PROFILE_COST_US;
                if let Some(est) = &self.estimates {
                    self.overhead_us += ADAPT_COST_US;
                    let plan = self.adapter.init_plan(est);
                    let unchanged = plan.len() == current_p.len()
                        && plan
                            .iter()
                            .zip(current_p)
                            .all(|(a, b)| (a - b).abs() < 1e-9);
                    if unchanged && !self.adapter.fine_tunes() {
                        // A one-shot policy proposes exactly the running
                        // plan: hold off idle-triggered re-profiling.
                        self.idle_holdoff = IDLE_HOLDOFF_EPOCHS;
                        self.phase = Phase::Probe;
                    } else {
                        if !unchanged {
                            decision.set_load_factors = Some(plan);
                        }
                        self.phase = Phase::Adapt;
                    }
                } else {
                    // Profiling failed to produce estimates; retry.
                    decision.run_profile = true;
                }
            }
            Phase::Adapt => {
                if state == QueryState::Stable {
                    self.phase = Phase::Probe;
                    if let Some(start) = self.episode_start.take() {
                        self.episodes.push((start, self.epoch));
                    }
                } else {
                    let mut p = current_p.to_vec();
                    let changed = self.adapter.fine_tune(&mut p, state);
                    self.overhead_us += ADAPT_COST_US;
                    if changed {
                        decision.set_load_factors = Some(p);
                    } else {
                        // Nothing movable (LP-only, or the search space is
                        // exhausted): return to Probe. The episode stays
                        // open and closes only when stability is observed —
                        // so a non-converging LP-only run never records a
                        // convergence (paper Fig. 8: "the inaccurate
                        // profiling prevents LP only from stabilizing").
                        if state == QueryState::Idle {
                            self.idle_holdoff = IDLE_HOLDOFF_EPOCHS;
                        }
                        self.phase = Phase::Probe;
                    }
                }
            }
        }

        let trace_state = match (phase_during_epoch, state) {
            (Phase::Profile, _) => TraceState::Profile,
            (_, QueryState::Congested) => TraceState::Congested,
            (_, QueryState::Idle) => TraceState::Idle,
            _ if self.nonstable_streak > 0 => TraceState::Detect,
            _ => TraceState::Stable,
        };
        self.trace.push(EpochTrace {
            epoch: self.epoch,
            phase: phase_during_epoch,
            state,
            trace: trace_state,
        });
        self.epoch += 1;
        decision.phase = self.phase;
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn estimates() -> ProfileEstimates {
        ProfileEstimates {
            cost_us: vec![0.25, 3.25, 23.0],
            relay_bytes: vec![1.0, 0.86, 0.3],
            relay_count: vec![1.0, 0.86, 0.5],
            records_per_epoch: 40_000.0,
            budget_us: 800_000.0,
        }
    }

    #[test]
    fn startup_zeroes_load_factors_then_probes() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        let d = rt.on_epoch_end(QueryState::Stable, None, &[0.5, 0.5, 0.5]);
        assert_eq!(d.set_load_factors, Some(vec![0.0, 0.0, 0.0]));
        assert_eq!(rt.phase(), Phase::Probe);
    }

    #[test]
    fn debounce_requires_three_epochs() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]); // Startup
        for i in 0..2 {
            let d = rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
            assert!(!d.run_profile, "epoch {i} must not trigger yet");
            assert_eq!(rt.phase(), Phase::Probe);
        }
        let d = rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
        assert!(d.run_profile);
        assert_eq!(rt.phase(), Phase::Profile);
    }

    #[test]
    fn noise_resets_the_debounce() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]);
        rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
        rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]); // resets
        let d = rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
        assert!(!d.run_profile, "streak must restart after a stable epoch");
    }

    #[test]
    fn profile_installs_lp_plan_and_enters_adapt() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]);
        for _ in 0..3 {
            rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
        }
        assert_eq!(rt.phase(), Phase::Profile);
        let d = rt.on_epoch_end(QueryState::Idle, Some(estimates()), &[0.0; 3]);
        let p = d.set_load_factors.expect("plan installed");
        assert!(p.iter().any(|&v| v > 0.0), "LP must pull work local: {p:?}");
        assert_eq!(rt.phase(), Phase::Adapt);
    }

    #[test]
    fn adapt_returns_to_probe_on_stable_and_records_episode() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]);
        for _ in 0..3 {
            rt.on_epoch_end(QueryState::Idle, None, &[0.0; 3]);
        }
        let d = rt.on_epoch_end(QueryState::Idle, Some(estimates()), &[0.0; 3]);
        let p = d.set_load_factors.unwrap();
        rt.on_epoch_end(QueryState::Stable, None, &p);
        assert_eq!(rt.phase(), Phase::Probe);
        assert_eq!(rt.episodes().len(), 1);
        let (start, end) = rt.episodes()[0];
        assert!(end > start);
    }

    #[test]
    fn fixed_runtime_never_adapts() {
        let cfg = RuntimeConfig {
            adaptive: false,
            ..Default::default()
        };
        let mut rt = JarvisRuntime::new(cfg, 2);
        rt.on_epoch_end(QueryState::Stable, None, &[1.0, 1.0]);
        for _ in 0..10 {
            let d = rt.on_epoch_end(QueryState::Congested, None, &[1.0, 1.0]);
            assert!(d.set_load_factors.is_none());
            assert!(!d.run_profile);
        }
        assert_eq!(rt.phase(), Phase::Probe);
    }

    #[test]
    fn trace_categories_follow_fig8() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]);
        rt.on_epoch_end(QueryState::Congested, None, &[0.0; 3]);
        for _ in 0..2 {
            rt.on_epoch_end(QueryState::Congested, None, &[0.0; 3]);
        }
        rt.on_epoch_end(QueryState::Congested, Some(estimates()), &[0.0; 3]);
        let kinds: Vec<TraceState> = rt.trace().iter().map(|t| t.trace).collect();
        assert!(kinds.contains(&TraceState::Congested));
        assert!(kinds.contains(&TraceState::Profile));
    }

    #[test]
    fn overhead_stays_under_one_percent_of_a_core() {
        let mut rt = JarvisRuntime::new(RuntimeConfig::default(), 3);
        rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]);
        for _ in 0..100 {
            rt.on_epoch_end(QueryState::Stable, None, &[0.0; 3]);
        }
        // 100 probe epochs: overhead per epoch ≤ 1% of 1e6 µs.
        assert!(rt.overhead_us() / 100.0 < 10_000.0);
    }
}
