//! The user-facing `Runner` from the paper's Listing 1:
//!
//! ```text
//! /* 2. Execute the pipeline */
//! Runner r( /* config info */ );
//! r.run(query);
//! ```
//!
//! Deprecated front door: the unified
//! [`Deployment::builder`](crate::deploy::Deployment::builder) is the
//! Listing-1 contract for every backend now. `Runner` remains as a thin shim
//! that wraps the supplied query and generators in a
//! [`CustomWorkload`](crate::deploy::CustomWorkload) and runs it on the
//! emulated backend.

use streamkit::error::{Error, Result};
use streamkit::logical::LogicalPlan;
use streamkit::physical::CostProfile;

use crate::calibration;
use crate::deploy::{BackendKind, CustomWorkload, Deployment};
use crate::engine::block::{EpochSource, NetworkModel};
use crate::experiment::ScenarioReport;
use crate::planner::RuleConfig;
use crate::strategy::StrategyKind;

/// Runner configuration ("config info" from Listing 1).
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Partitioning strategy (default: Jarvis).
    pub strategy: StrategyKind,
    /// CPU available to the query on each data source, cores.
    pub cpu_budget: f64,
    /// Number of data sources.
    pub sources: u32,
    /// Per-source uplink bandwidth, bits/second.
    pub network_bps: f64,
    /// Operator-eligibility rules (R-1..R-4).
    pub rules: RuleConfig,
    /// Per-operator cost models; defaults by operator kind when `None`.
    pub costs: Option<CostProfile>,
    /// Warm-up epochs excluded from measurement.
    pub warmup_epochs: u64,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        RunnerConfig {
            strategy: StrategyKind::Jarvis,
            cpu_budget: 0.5,
            sources: 1,
            network_bps: calibration::per_query_per_node_bps(),
            rules: RuleConfig::default(),
            costs: None,
            warmup_epochs: crate::experiment::DEFAULT_WARMUP_EPOCHS,
        }
    }
}

/// Result of a [`Runner::run`] call.
#[derive(Debug, Clone)]
pub struct RunnerReport {
    /// The scenario-level report (throughput, latency, trace, factors).
    pub report: ScenarioReport,
    /// Result rows emitted by the stream processor's final operators.
    pub results_emitted: u64,
    /// The deployed chain, e.g. `W -> F -> G+R`.
    pub deployed_chain: String,
    /// Number of operators eligible to run on the data sources.
    pub source_ops: usize,
}

/// Plans and executes monitoring queries (Listing 1's `Runner`).
pub struct Runner {
    config: RunnerConfig,
}

impl Runner {
    /// Creates a runner.
    #[deprecated(
        since = "0.1.0",
        note = "use jarvis_core::deploy::Deployment::builder() — one builder, any backend"
    )]
    pub fn new(config: RunnerConfig) -> Runner {
        Runner { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RunnerConfig {
        &self.config
    }

    /// Plans `query`, deploys it on the emulated backend fed by the given
    /// per-source generators, runs `epochs` epochs, and reports.
    pub fn run(
        &self,
        query: LogicalPlan,
        generators: Vec<Box<dyn EpochSource>>,
        epochs: u64,
    ) -> Result<RunnerReport> {
        if generators.len() != self.config.sources as usize {
            return Err(Error::InvalidPlan(format!(
                "{} generators supplied for {} sources",
                generators.len(),
                self.config.sources
            )));
        }
        let costs = self.config.costs.clone().unwrap_or_default();
        let workload = CustomWorkload::new("runner", query, costs, generators);
        let report = Deployment::builder()
            .workload(workload)
            .strategy(self.config.strategy)
            .cpu_budget(self.config.cpu_budget)
            .sources(self.config.sources)
            .network(NetworkModel::PerSource {
                bps: self.config.network_bps,
            })
            .rules(self.config.rules.clone())
            .warmup_epochs(self.config.warmup_epochs)
            .backend(BackendKind::Emulated)
            .build()
            .map_err(|e| Error::InvalidPlan(e.to_string()))?
            .run(epochs)
            .map_err(|e| Error::InvalidPlan(e.to_string()))?;
        Ok(RunnerReport {
            results_emitted: report.results_emitted,
            deployed_chain: report.deployed_chain.clone(),
            source_ops: report.source_ops,
            report: ScenarioReport::from_run(&report),
        })
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

    #[test]
    fn listing_1_workflow_runs_end_to_end() {
        let query = telemetry::queries::s2s_probe();
        let runner = Runner::new(RunnerConfig {
            cpu_budget: 0.6,
            costs: Some(calibration::s2s_cost_profile()),
            ..Default::default()
        });
        let generators: Vec<Box<dyn EpochSource>> =
            vec![Box::new(PingmeshGenerator::new(PingmeshConfig::default()))];
        let out = runner.run(query, generators, 40).expect("runs");
        assert_eq!(out.deployed_chain, "W -> F -> G+R");
        assert_eq!(out.source_ops, 3);
        assert!(out.results_emitted > 0, "aggregates must reach the SP");
        assert!(out.report.throughput_mbps > 0.0);
    }

    #[test]
    fn generator_count_mismatch_is_an_error() {
        let runner = Runner::new(RunnerConfig {
            sources: 2,
            ..Default::default()
        });
        let out = runner.run(telemetry::queries::s2s_probe(), Vec::new(), 1);
        assert!(out.is_err());
    }
}
