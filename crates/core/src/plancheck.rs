//! Static plan analysis: lint a planned query + deployment knobs **before**
//! anything runs.
//!
//! The paper's correctness claim — runtime re-partitioning between sources
//! and the SP "does not affect the correctness of query results" (§IV) —
//! is proven dynamically by the digest-parity suites. This module proves the
//! plan-level preconditions of that claim *statically*, per plan, so every
//! new operator/knob combination does not need another runtime parity
//! matrix:
//!
//! * **Source-eligibility rules** (R-1..R-4 of §IV-B) — the planner's
//!   exclusions are computed here ([`source_eligibility`]) and surfaced as
//!   `Info` diagnostics (`JP001`–`JP004`).
//! * **Key provenance** — group-key columns of the shard boundary are traced
//!   backward through the stateless prefix; an opaque (`MapFn::Custom`)
//!   rewrite in the lineage cannot be verified deterministic, so shard
//!   routing of shipped partials could disagree with the boundary
//!   partitioner (`JP101`). Keyed operators past the boundary would see
//!   their key space partitioned by the *first* operator's keys
//!   (`JP102`/`JP103`). A string key behind an opaque map additionally
//!   falls off the code-native persistent-dictionary fast path (`JP105`).
//! * **Mergeability** — every aggregate reachable by the `StatePartial`
//!   ship/merge, `ShardState`, and remote `netwire` paths must be a
//!   commutative mergeable partial (`JP201`).
//! * **Deployment cross-checks** — shard/node/transport knob combinations
//!   the plan cannot satisfy (`JP301`–`JP304`).
//!
//! [`crate::deploy::DeploymentBuilder`] runs [`check`] during validation and
//! fails with [`crate::deploy::DeployError::PlanCheck`] when any diagnostic
//! is an error; warnings ride along in the spec and land in
//! [`crate::deploy::RunReport::plan_warnings`]. The `repro plancheck` CLI
//! subcommand lints the built-in workloads the same way.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};
use streamkit::logical::{LogicalOp, LogicalPlan};
use streamkit::ops::MapFn;
use streamkit::schema::{DataType, SchemaRef};

use crate::deploy::BackendKind;
use crate::planner::{Exclusion, PlannedQuery, RuleConfig};
use crate::strategy::StrategyKind;

/// Lint codes emitted by the analyzer, one constant per `JPxxx` code.
pub mod code {
    /// R-1: a non-incrementally-updatable aggregate is SP-only.
    pub const NON_INCREMENTAL_AGG: &str = "JP001";
    /// R-2: operators downstream of the stateful boundary are SP-only.
    pub const AFTER_STATEFUL: &str = "JP002";
    /// R-3: stateful stream-stream joins are SP-only.
    pub const STREAM_JOIN: &str = "JP003";
    /// R-4: operators with intra-operator parallelism hints are SP-only.
    pub const PARALLEL_OP: &str = "JP004";
    /// A shard-key column's lineage passes through an opaque map.
    pub const OPAQUE_KEY_LINEAGE: &str = "JP101";
    /// A second keyed operator past the shard boundary under `sp_shards > 1`.
    pub const RESHARD_UNSUPPORTED: &str = "JP102";
    /// A string-typed group key behind an opaque map cannot carry a
    /// persistent dictionary: grouping falls off the code-native fast path.
    pub const KEY_OFF_CODE_FAST_PATH: &str = "JP105";
    /// Multiple keyed operators: the plan cannot scale out via sharding.
    pub const MULTI_KEYED_PLAN: &str = "JP103";
    /// A non-mergeable aggregate is reachable by a state-shipping path.
    pub const NON_MERGEABLE_STATE: &str = "JP201";
    /// `sp_shards > 1` but the plan has no keyed boundary to partition at.
    pub const SHARDS_WITHOUT_KEYS: &str = "JP301";
    /// TCP transport with scheduled resource events.
    pub const TCP_WITH_EVENTS: &str = "JP302";
    /// TCP transport with a workload that has no wire descriptor.
    pub const TCP_UNDESCRIBABLE: &str = "JP303";
    /// TCP transport on a backend other than the live one.
    pub const TCP_NEEDS_LIVE: &str = "JP304";
    /// `on_node_loss = Reassign` with a non-mergeable aggregate at the SP
    /// tier: reassignment merges recovered state, so recovery is lossy.
    pub const RECOVERY_LOSSY: &str = "JP401";
    /// Checkpointing enabled on a plan with no stateful operators.
    pub const CHECKPOINT_STATELESS: &str = "JP402";
    /// Source fan-in beyond `rt_workers ×` [`crate::rt::RT_FANIN_BOUND`]
    /// with the async runtime's batching knobs left at defaults.
    pub const RT_FANIN_UNTUNED: &str = "JP501";
}

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Severity {
    /// The deployment would be incorrect or cannot run; the builder refuses.
    Error,
    /// Suspect but runnable; surfaced in the run report.
    Warning,
    /// Planner facts (rule exclusions) useful for understanding a plan.
    Info,
}

impl Severity {
    /// Display label (`"error"`, `"warning"`, `"info"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Severity::Error => 0,
            Severity::Warning => 1,
            Severity::Info => 2,
        }
    }
}

/// One structured finding of the analyzer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable lint code (`JPxxx`, see [`code`]).
    pub code: String,
    /// Severity: errors refuse deployment, warnings ride along.
    pub severity: Severity,
    /// The operator the finding anchors to, when there is one.
    pub op_index: Option<usize>,
    /// What is wrong (one sentence).
    pub message: String,
    /// How to fix it, when a fix is known.
    pub help: Option<String>,
}

impl Diagnostic {
    fn new(
        code: &str,
        severity: Severity,
        op_index: Option<usize>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code: code.to_string(),
            severity,
            op_index,
            message: message.into(),
            help: None,
        }
    }

    fn with_help(mut self, help: impl Into<String>) -> Diagnostic {
        self.help = Some(help.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.label(), self.code)?;
        if let Some(i) = self.op_index {
            write!(f, " op {i}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(help) = &self.help {
            write!(f, "\n  help: {help}")?;
        }
        Ok(())
    }
}

/// True when any diagnostic is an [`Severity::Error`].
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

/// Renders diagnostics one per line (the pretty CLI / error format).
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(Diagnostic::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// The deployment-side facts the analyzer cross-checks a plan against.
///
/// [`crate::deploy::DeploymentBuilder::spec`] fills this from its knobs; the
/// CLI builds one per lint configuration.
#[derive(Debug, Clone)]
pub struct CheckContext {
    /// Virtual shards on the SP tier's hash ring (1 = unsharded).
    pub sp_shards: u32,
    /// SP nodes the ring is divided over (1 = single node).
    pub sp_nodes: u32,
    /// Partitioning strategy (decides whether partial state ships).
    pub strategy: StrategyKind,
    /// Execution backend.
    pub backend: BackendKind,
    /// True when the SP tier is wired over real TCP sockets.
    pub tcp: bool,
    /// True when resource events are scheduled.
    pub has_events: bool,
    /// True when the workload has a wire-serializable descriptor.
    pub remote_describable: bool,
    /// Workload name (for messages).
    pub workload: String,
    /// Node-loss recovery policy of the deployment.
    pub on_node_loss: crate::deploy::OnNodeLoss,
    /// True when SP-tier epoch checkpointing is enabled.
    pub checkpointing: bool,
    /// Data sources fanning into the live session's task runtime.
    pub sources: u32,
    /// Effective executor worker threads of the deployment.
    pub rt_workers: u32,
    /// Capacity of the session's async channels.
    pub channel_capacity: u32,
}

impl CheckContext {
    /// A single-process context: in-process transport, no events, a
    /// describable workload, and the live backend.
    pub fn local(sp_shards: u32, sp_nodes: u32, strategy: StrategyKind) -> CheckContext {
        CheckContext {
            sp_shards,
            sp_nodes,
            strategy,
            backend: BackendKind::Live,
            tcp: false,
            has_events: false,
            remote_describable: true,
            workload: String::new(),
            on_node_loss: crate::deploy::OnNodeLoss::Fail,
            checkpointing: false,
            sources: 1,
            rt_workers: crate::rt::effective_workers(None) as u32,
            channel_capacity: crate::rt::DEFAULT_CHANNEL_CAPACITY,
        }
    }

    /// True when the strategy may place load on source-side stateful
    /// operators, i.e. partial aggregate state ships source → SP. All-SP
    /// drains everything raw and Filter-Src runs only filters near data;
    /// every other strategy can assign a stateful operator a non-zero load
    /// factor.
    pub fn ships_state(&self) -> bool {
        !matches!(self.strategy, StrategyKind::AllSp | StrategyKind::FilterSrc)
    }
}

/// The planner-facing slice of the analysis: how much of the chain may run
/// on data sources, and why the rest may not.
#[derive(Debug, Clone, PartialEq)]
pub struct Eligibility {
    /// Leading operators eligible for data sources.
    pub source_ops: usize,
    /// `(op index, rule)` for every excluded operator.
    pub exclusions: Vec<(usize, Exclusion)>,
}

/// Computes the source-eligible prefix under rules R-1..R-4 (§IV-B).
///
/// This is the single rule engine: [`crate::planner::plan_query`] delegates
/// here, and [`check`] re-surfaces the exclusions as `Info` diagnostics, so
/// the planner and the linter can never disagree.
pub fn source_eligibility(plan: &LogicalPlan, rules: &RuleConfig) -> Eligibility {
    let mut source_ops = plan.ops.len();
    let mut exclusions = Vec::new();
    let mut seen_stateful = false;
    for (i, op) in plan.ops.iter().enumerate() {
        // R-2: anything after the first cross-source stateful op is SP-only.
        if seen_stateful && rules.forbid_after_stateful {
            source_ops = source_ops.min(i);
            exclusions.push((i, Exclusion::AfterStatefulBoundary));
            continue;
        }
        // R-4: no intra-operator parallelism on constrained sources.
        if plan.parallel_for(i) > rules.max_source_parallelism {
            source_ops = source_ops.min(i);
            exclusions.push((i, Exclusion::ParallelOperator));
        }
        match op {
            LogicalOp::GroupAggregate { aggs, .. } => {
                // R-1: every aggregate must be incrementally updatable.
                if rules.forbid_non_incremental
                    && aggs.iter().any(|a| !rules.agg_is_incremental(&a.kind))
                {
                    source_ops = source_ops.min(i);
                    exclusions.push((i, Exclusion::NonIncrementalAggregate));
                }
                seen_stateful = true;
            }
            // R-3: stateful stream-stream joins are SP-only.
            LogicalOp::Join {
                streaming: true, ..
            } => {
                source_ops = source_ops.min(i);
                exclusions.push((i, Exclusion::StreamJoin));
            }
            _ => {}
        }
    }
    Eligibility {
        source_ops,
        exclusions,
    }
}

/// Where a column's value ultimately comes from when traced backward.
enum Lineage {
    /// Deterministically derived from these columns at the target edge.
    Cols(BTreeSet<usize>),
    /// The lineage passes through an opaque operator at this index.
    Opaque(usize),
}

/// Traces column `col` at edge `from_edge` (the input edge of op
/// `from_edge`) backward to edge `to_edge`, returning the set of source
/// columns it deterministically derives from, or the opaque operator that
/// breaks the chain. `schemas` are the plan's edge schemas.
fn trace_column(
    plan: &LogicalPlan,
    schemas: &[SchemaRef],
    from_edge: usize,
    to_edge: usize,
    col: usize,
) -> Lineage {
    let mut cols: BTreeSet<usize> = std::iter::once(col).collect();
    for i in (to_edge..from_edge).rev() {
        let mut prev = BTreeSet::new();
        match &plan.ops[i] {
            LogicalOp::Window { .. } | LogicalOp::Filter { .. } => prev = cols,
            LogicalOp::Project { cols: proj } => {
                for c in cols {
                    if let Some(&src) = proj.get(c) {
                        prev.insert(src);
                    }
                }
            }
            LogicalOp::Map { f } => match f {
                // In-place deterministic rewrites: identity index mapping.
                MapFn::TrimLower(_) | MapFn::WidthBucket { .. } => prev = cols,
                // Every output column parses out of the source line column.
                MapFn::ParseJobStats { col: src, .. } => {
                    if !cols.is_empty() {
                        prev.insert(*src);
                    }
                }
                // Arbitrary closure: nothing is statically known.
                MapFn::Custom { .. } => return Lineage::Opaque(i),
            },
            LogicalOp::GroupAggregate { keys, .. } => {
                // Output layout: [window_start, keys.., aggs..]. Key columns
                // map through; window_start is synthetic (key-safe);
                // aggregate values are not key lineage.
                for c in cols {
                    if c == 0 {
                        continue;
                    }
                    match keys.get(c - 1) {
                        Some(&src) => {
                            prev.insert(src);
                        }
                        None => return Lineage::Opaque(i),
                    }
                }
            }
            LogicalOp::Join { key_col, .. } => {
                // Pass-through columns keep their index; appended table
                // columns are determined by the stream-side key column.
                let input_width = schemas[i].width();
                for c in cols {
                    prev.insert(if c < input_width { c } else { *key_col });
                }
            }
        }
        cols = prev;
    }
    Lineage::Cols(cols)
}

/// Runs the full analysis on a planned query against a deployment context.
///
/// Returns diagnostics sorted errors-first. Errors mean the deployment would
/// be incorrect or cannot run; [`crate::deploy::DeploymentBuilder`] refuses
/// them with [`crate::deploy::DeployError::PlanCheck`].
pub fn check(planned: &PlannedQuery, rules: &RuleConfig, ctx: &CheckContext) -> Vec<Diagnostic> {
    let plan = &planned.plan;
    let mut diags = Vec::new();

    let schemas = match plan.edge_schemas() {
        Ok(schemas) => schemas,
        Err(e) => {
            diags.push(Diagnostic::new(
                "JP000",
                Severity::Error,
                None,
                format!("plan does not validate: {e}"),
            ));
            return diags;
        }
    };

    lint_eligibility(planned, rules, &mut diags);
    lint_key_provenance(plan, &schemas, ctx, &mut diags);
    lint_mergeability(planned, rules, ctx, &mut diags);
    lint_deployment(plan, ctx, &mut diags);
    lint_fault_tolerance(plan, rules, ctx, &mut diags);

    diags.sort_by_key(|d| (d.severity.rank(), d.op_index.unwrap_or(usize::MAX)));
    diags
}

/// Surfaces the R-1..R-4 exclusions as `Info` diagnostics (JP001–JP004).
fn lint_eligibility(planned: &PlannedQuery, rules: &RuleConfig, diags: &mut Vec<Diagnostic>) {
    for (i, why) in &planned.exclusions {
        let kind = planned.plan.ops[*i].kind();
        let d = match why {
            Exclusion::NonIncrementalAggregate => Diagnostic::new(
                code::NON_INCREMENTAL_AGG,
                Severity::Info,
                Some(*i),
                format!(
                    "R-1: {kind:?} holds an aggregate that is not incrementally \
                     updatable under the configured rules; it runs SP-only"
                ),
            )
            .with_help(
                "use a mergeable approximate version (e.g. ApproxQuantile with \
                 quantiles_are_exact = false) to admit it to the source prefix",
            ),
            Exclusion::AfterStatefulBoundary => Diagnostic::new(
                code::AFTER_STATEFUL,
                Severity::Info,
                Some(*i),
                format!(
                    "R-2: {kind:?} is downstream of the first cross-source stateful \
                     operator and needs merged state; it runs SP-only"
                ),
            ),
            Exclusion::StreamJoin => Diagnostic::new(
                code::STREAM_JOIN,
                Severity::Info,
                Some(*i),
                "R-3: stateful stream-stream joins aggregate across data sources; \
                 the join runs SP-only"
                    .to_string(),
            )
            .with_help("stream-table joins (Query::join) are source-eligible"),
            Exclusion::ParallelOperator => Diagnostic::new(
                code::PARALLEL_OP,
                Severity::Info,
                Some(*i),
                format!(
                    "R-4: {kind:?} requests {} physical instances but sources run at \
                     most {}; it runs SP-only",
                    planned.plan.parallel_for(*i),
                    rules.max_source_parallelism
                ),
            ),
        };
        diags.push(d);
    }
}

/// Key-provenance lints: JP101 (opaque key lineage), JP102/JP103 (keyed
/// operators past the shard boundary).
fn lint_key_provenance(
    plan: &LogicalPlan,
    schemas: &[SchemaRef],
    ctx: &CheckContext,
    diags: &mut Vec<Diagnostic>,
) {
    let Some((boundary, keys)) = plan.shard_boundary() else {
        return;
    };

    // (a) Trace each boundary key column back to ingress. A deterministic
    // lineage is safe no matter what it rewrites — partitioning happens on
    // the *materialized* key values after the prefix runs. An opaque map in
    // the lineage cannot be verified deterministic, so a source-side
    // `StatePartial` key and the SP partitioner could disagree.
    for &key in &keys {
        if let Lineage::Opaque(op_index) = trace_column(plan, schemas, boundary, 0, key) {
            let field = schemas[boundary]
                .field(key)
                .map_or_else(|_| format!("#{key}"), |f| f.name.clone());
            let severity = if ctx.sp_shards > 1 {
                Severity::Error
            } else {
                Severity::Warning
            };
            diags.push(
                Diagnostic::new(
                    code::OPAQUE_KEY_LINEAGE,
                    severity,
                    Some(op_index),
                    format!(
                        "group key '{field}' of the shard boundary (op {boundary}) is \
                         rewritten by the opaque {:?} before the boundary; shard \
                         routing of shipped partials cannot be proven to agree with \
                         the boundary partitioner",
                        plan.ops[op_index]
                    ),
                )
                .with_help(
                    "use a describable map (TrimLower/ParseJobStats/WidthBucket) in \
                     the key lineage, or keep sp_shards = 1",
                ),
            );
            // Perf fact on top of the routing concern: a string key that
            // passes through an opaque closure cannot ride a persistent
            // dictionary (custom maps rebuild rows, dropping stream pages),
            // so `GroupAggregate` and `shard_by_key` hash its bytes per row
            // instead of reusing cross-epoch code caches.
            let is_str = schemas[boundary]
                .field(key)
                .is_ok_and(|f| f.dtype == DataType::Str);
            if is_str {
                diags.push(
                    Diagnostic::new(
                        code::KEY_OFF_CODE_FAST_PATH,
                        Severity::Info,
                        Some(op_index),
                        format!(
                            "group key '{field}' reaches the boundary through the \
                             opaque {:?}, so it cannot carry a persistent dictionary; \
                             grouping and shard hashing fall back to per-row byte \
                             encoding instead of the code-native fast path",
                            plan.ops[op_index]
                        ),
                    )
                    .with_help(
                        "produce the key with a describable map so its dictionary \
                         stream survives to the boundary",
                    ),
                );
            }
        }
    }

    // (b) Keyed operators past the boundary: the partitioner splits once,
    // by the boundary keys. A later keyed operator sees rows partitioned by
    // the wrong keys unless its own keys provably cover them — and even
    // covered re-keying is not implemented by the shard runtime.
    let n_keys = keys.len();
    for (j, op) in plan.ops.iter().enumerate().skip(boundary + 1) {
        let LogicalOp::GroupAggregate { keys: later, .. } = op else {
            continue;
        };
        // Trace the later keys back to the boundary's *output* edge, where
        // the boundary keys occupy columns 1..=n_keys.
        let mut derived = BTreeSet::new();
        let mut opaque = false;
        for &k in later {
            match trace_column(plan, schemas, j, boundary + 1, k) {
                Lineage::Cols(cols) => derived.extend(cols),
                Lineage::Opaque(_) => opaque = true,
            }
        }
        let covers = !opaque && (1..=n_keys).all(|c| derived.contains(&c));
        if ctx.sp_shards > 1 {
            let detail = if covers {
                "its keys cover the boundary keys, so groups stay shard-local, but \
                 re-sharding at a second keyed boundary is not implemented"
            } else {
                "its key space is partitioned by the boundary keys, so groups would \
                 span shards and duplicate"
            };
            diags.push(
                Diagnostic::new(
                    code::RESHARD_UNSUPPORTED,
                    Severity::Error,
                    Some(j),
                    format!(
                        "keyed operator past the shard boundary (op {boundary}) under \
                         sp_shards = {}: {detail}",
                        ctx.sp_shards
                    ),
                )
                .with_help("run this plan with sp_shards = 1"),
            );
        } else {
            diags.push(
                Diagnostic::new(
                    code::MULTI_KEYED_PLAN,
                    Severity::Warning,
                    Some(j),
                    format!(
                        "plan has a second keyed operator past the shard boundary \
                         (op {boundary}); it cannot scale out via sp_shards"
                    ),
                )
                .with_help("restructure to a single grouped aggregation to shard the SP tier"),
            );
        }
    }
}

/// Mergeability lint: JP201 — a non-mergeable aggregate inside the
/// source-eligible prefix is reachable by the `StatePartial` ship/merge and
/// `ShardState` paths.
fn lint_mergeability(
    planned: &PlannedQuery,
    rules: &RuleConfig,
    ctx: &CheckContext,
    diags: &mut Vec<Diagnostic>,
) {
    if !(ctx.ships_state() || ctx.sp_nodes > 1) {
        return;
    }
    for (i, op) in planned.plan.ops[..planned.source_ops].iter().enumerate() {
        let LogicalOp::GroupAggregate { aggs, .. } = op else {
            continue;
        };
        for spec in aggs {
            if rules.agg_is_incremental(&spec.kind) {
                continue;
            }
            diags.push(
                Diagnostic::new(
                    code::NON_MERGEABLE_STATE,
                    Severity::Error,
                    Some(i),
                    format!(
                        "aggregate '{}' is not a commutative mergeable partial under \
                         the configured rules, but it sits in the source-eligible \
                         prefix where strategy {} ships its state for merging",
                        spec.name,
                        ctx.strategy.label()
                    ),
                )
                .with_help(
                    "enable R-1 (forbid_non_incremental) so the planner keeps it \
                     SP-only, or use a mergeable approximate aggregate",
                ),
            );
        }
    }
}

/// Deployment cross-checks: JP301–JP304, JP501.
fn lint_deployment(plan: &LogicalPlan, ctx: &CheckContext, diags: &mut Vec<Diagnostic>) {
    if ctx.sp_shards > 1 && plan.shard_boundary().is_none() {
        diags.push(
            Diagnostic::new(
                code::SHARDS_WITHOUT_KEYS,
                Severity::Error,
                None,
                format!(
                    "sp_shards = {} but the chain [{}] has no keyed operator to \
                     partition by; the shard ring would degenerate to one pipeline",
                    ctx.sp_shards,
                    plan.display_chain()
                ),
            )
            .with_help("add a grouped aggregation or run with sp_shards = 1"),
        );
    }
    if ctx.tcp {
        if ctx.backend != BackendKind::Live {
            diags.push(
                Diagnostic::new(
                    code::TCP_NEEDS_LIVE,
                    Severity::Error,
                    None,
                    format!(
                        "TCP transport on the {} backend: real sockets need the live \
                         backend",
                        ctx.backend.label()
                    ),
                )
                .with_help("use BackendKind::Live, or the in-process transport"),
            );
        }
        if ctx.has_events {
            diags.push(
                Diagnostic::new(
                    code::TCP_WITH_EVENTS,
                    Severity::Error,
                    None,
                    "TCP transport with scheduled resource events: join-table swaps \
                     cannot reach remote executors"
                        .to_string(),
                )
                .with_help("drop the events or use the in-process transport"),
            );
        }
        if !ctx.remote_describable {
            diags.push(
                Diagnostic::new(
                    code::TCP_UNDESCRIBABLE,
                    Severity::Error,
                    None,
                    format!(
                        "workload '{}' has no wire-serializable descriptor; only the \
                         built-in scenarios can be replanned on a remote node",
                        ctx.workload
                    ),
                )
                .with_help("use a ScenarioSpec workload or the in-process transport"),
            );
        }
    }
    // JP501: past `rt_workers × RT_FANIN_BOUND` sources per deployment, the
    // default channel capacity makes source tasks park on backpressure
    // between dispatcher drains; the run stays exact but throughput sags
    // until the batching knobs are tuned.
    let fanin_budget = u64::from(ctx.rt_workers) * u64::from(crate::rt::RT_FANIN_BOUND);
    if u64::from(ctx.sources) > fanin_budget
        && ctx.channel_capacity == crate::rt::DEFAULT_CHANNEL_CAPACITY
    {
        diags.push(
            Diagnostic::new(
                code::RT_FANIN_UNTUNED,
                Severity::Info,
                None,
                format!(
                    "{} sources over {} runtime worker(s) exceeds the documented \
                     fan-in bound of {} sources per worker, and channel_capacity is \
                     at its default ({}): source tasks will park on backpressure \
                     between dispatcher drains",
                    ctx.sources,
                    ctx.rt_workers,
                    crate::rt::RT_FANIN_BOUND,
                    crate::rt::DEFAULT_CHANNEL_CAPACITY
                ),
            )
            .with_help(
                "raise rt_workers or widen channel_capacity on Deployment::builder() \
                 so dispatcher batch drains keep up with the source fan-in",
            ),
        );
    }
}

/// Fault-tolerance cross-checks: JP401 (lossy Reassign recovery), JP402
/// (checkpointing a stateless plan).
fn lint_fault_tolerance(
    plan: &LogicalPlan,
    rules: &RuleConfig,
    ctx: &CheckContext,
    diags: &mut Vec<Diagnostic>,
) {
    // JP401: Reassign recovery re-ships a lost shard's checkpointed
    // StatePartials to a survivor and *merges* them into fresh operators.
    // An SP-tier aggregate that is not a commutative mergeable partial
    // makes that merge lossy — the digests would diverge after a fault.
    if ctx.on_node_loss == crate::deploy::OnNodeLoss::Reassign {
        let boundary = plan.shard_boundary().map(|(b, _)| b);
        if let Some(boundary) = boundary {
            for (i, op) in plan.ops.iter().enumerate().skip(boundary) {
                let LogicalOp::GroupAggregate { aggs, .. } = op else {
                    continue;
                };
                for spec in aggs {
                    if rules.agg_is_incremental(&spec.kind) {
                        continue;
                    }
                    diags.push(
                        Diagnostic::new(
                            code::RECOVERY_LOSSY,
                            Severity::Warning,
                            Some(i),
                            format!(
                                "on_node_loss = reassign with aggregate '{}', which is \
                                 not a commutative mergeable partial under the \
                                 configured rules: recovery merges the lost shard's \
                                 checkpoint into a survivor, so a post-fault run may \
                                 not be bit-identical",
                                spec.name
                            ),
                        )
                        .with_help("use a mergeable aggregate, or on_node_loss = fail/degrade"),
                    );
                }
            }
        }
    }
    // JP402: checkpointing snapshots stateful operators; a plan with none
    // checkpoints nothing, every epoch, forever — a misconfiguration.
    if ctx.checkpointing {
        let has_stateful = plan.ops.iter().any(|op| {
            matches!(
                op,
                LogicalOp::GroupAggregate { .. }
                    | LogicalOp::Join {
                        streaming: true,
                        ..
                    }
            )
        });
        if !has_stateful {
            diags.push(
                Diagnostic::new(
                    code::CHECKPOINT_STATELESS,
                    Severity::Error,
                    None,
                    format!(
                        "checkpointing is enabled but the chain [{}] has no stateful \
                         operator; there is no state to snapshot or recover",
                        plan.display_chain()
                    ),
                )
                .with_help("disable checkpoint_interval or add a stateful operator"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::plan_query;
    use streamkit::agg::AggKind;
    use streamkit::expr::Expr;
    use streamkit::query::Query;
    use streamkit::schema::{DataType, Field, Schema, SchemaRef};

    fn schema() -> SchemaRef {
        Schema::new(vec![
            Field::new("k", DataType::U32),
            Field::new("v", DataType::U32),
            Field::new("err", DataType::U32),
        ])
    }

    fn keyed_plan() -> streamkit::logical::LogicalPlan {
        Query::stream("q", schema())
            .window_secs(10.0)
            .filter_named("err", |c| c.eq(Expr::lit(0u64)))
            .group_by(&["k"])
            .aggregate(&[(AggKind::Avg, "v", "avg_v")])
            .build()
            .unwrap()
    }

    #[test]
    fn clean_plan_has_no_diagnostics() {
        let planned = plan_query(keyed_plan(), &RuleConfig::default()).unwrap();
        let diags = check(
            &planned,
            &RuleConfig::default(),
            &CheckContext::local(4, 2, StrategyKind::Jarvis),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn keyless_plan_cannot_shard() {
        let plan = Query::stream("flat", schema())
            .window_secs(10.0)
            .filter_named("err", |c| c.eq(Expr::lit(0u64)))
            .build()
            .unwrap();
        let planned = plan_query(plan, &RuleConfig::default()).unwrap();
        let diags = check(
            &planned,
            &RuleConfig::default(),
            &CheckContext::local(4, 1, StrategyKind::Jarvis),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, code::SHARDS_WITHOUT_KEYS);
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn provenance_traces_through_joins_and_projections() {
        // T2TProbe's keys are join-appended columns projected forward; the
        // lineage is deterministic, so the plan is clean at any shard count.
        let (src, dst) = telemetry::queries::t2t_tables(100, 10, &[1]);
        let planned = plan_query(
            telemetry::queries::t2t_probe(src, dst),
            &RuleConfig::default(),
        )
        .unwrap();
        let diags = check(
            &planned,
            &RuleConfig::default(),
            &CheckContext::local(4, 4, StrategyKind::AllSrc),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn map_derived_keys_are_clean_when_describable() {
        // LogAnalytics' keys are produced entirely by describable maps.
        let planned =
            plan_query(telemetry::queries::log_analytics(), &RuleConfig::default()).unwrap();
        let diags = check(
            &planned,
            &RuleConfig::default(),
            &CheckContext::local(4, 2, StrategyKind::AllSrc),
        );
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn reassign_with_non_mergeable_aggregate_warns_lossy_recovery() {
        let plan = Query::stream("q", schema())
            .window_secs(10.0)
            .group_by(&["k"])
            .aggregate(&[(
                AggKind::ApproxQuantile {
                    q: 0.99,
                    lo: 0.0,
                    hi: 1000.0,
                },
                "v",
                "p99_v",
            )])
            .build()
            .unwrap();
        let rules = RuleConfig {
            quantiles_are_exact: true,
            ..RuleConfig::default()
        };
        let planned = plan_query(plan, &rules).unwrap();
        let mut ctx = CheckContext::local(4, 2, StrategyKind::Jarvis);
        ctx.on_node_loss = crate::deploy::OnNodeLoss::Reassign;
        let diags = check(&planned, &rules, &ctx);
        let warn: Vec<_> = diags
            .iter()
            .filter(|d| d.code == code::RECOVERY_LOSSY)
            .collect();
        assert_eq!(warn.len(), 1, "got {diags:?}");
        assert_eq!(warn[0].severity, Severity::Warning);
        // Fail and Degrade never merge recovered state — no warning.
        ctx.on_node_loss = crate::deploy::OnNodeLoss::Degrade;
        let diags = check(&planned, &rules, &ctx);
        assert!(
            diags.iter().all(|d| d.code != code::RECOVERY_LOSSY),
            "got {diags:?}"
        );
    }

    #[test]
    fn checkpointing_a_stateless_plan_is_an_error() {
        let plan = Query::stream("flat", schema())
            .window_secs(10.0)
            .filter_named("err", |c| c.eq(Expr::lit(0u64)))
            .build()
            .unwrap();
        let planned = plan_query(plan, &RuleConfig::default()).unwrap();
        let mut ctx = CheckContext::local(1, 1, StrategyKind::Jarvis);
        ctx.checkpointing = true;
        let diags = check(&planned, &RuleConfig::default(), &ctx);
        assert_eq!(diags.len(), 1, "got {diags:?}");
        assert_eq!(diags[0].code, code::CHECKPOINT_STATELESS);
        assert_eq!(diags[0].severity, Severity::Error);
        // A stateful plan checkpoints cleanly.
        let planned = plan_query(keyed_plan(), &RuleConfig::default()).unwrap();
        let diags = check(&planned, &RuleConfig::default(), &ctx);
        assert!(diags.is_empty(), "got {diags:?}");
    }

    #[test]
    fn render_and_display_are_stable() {
        let d = Diagnostic::new(code::SHARDS_WITHOUT_KEYS, Severity::Error, None, "boom")
            .with_help("fix it");
        let s = render(&[d]);
        assert!(s.starts_with("error[JP301]: boom"), "got {s}");
        assert!(s.contains("help: fix it"));
    }

    #[test]
    fn diagnostics_round_trip_through_json() {
        let d = Diagnostic::new(code::OPAQUE_KEY_LINEAGE, Severity::Warning, Some(2), "m")
            .with_help("h");
        let json = serde_json::to_string(&d).unwrap();
        let back: Diagnostic = serde_json::from_str(&json).unwrap();
        assert_eq!(back, d);
    }
}
