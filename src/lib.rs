//! # Jarvis — adaptive near-data processing for server monitoring
//!
//! A Rust reproduction of *"Jarvis: Large-scale Server Monitoring with
//! Adaptive Near-data Processing"* (ICDE 2022, Best Paper).
//!
//! Jarvis partitions a monitoring query **at the data level** between
//! resource-constrained data source nodes and a stream processor: every
//! operator is replicated on both sides and a per-operator *control proxy*
//! forwards a tunable fraction of records (the *load factor*) to the local
//! operator, draining the rest to the stream-processor replica. Load factors
//! are adapted within seconds by **StepWise-Adapt** — an LP-based
//! model-driven initialisation refined by model-agnostic fine-tuning.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`jarvis-core`) — control proxies, the Jarvis runtime state
//!   machine, StepWise-Adapt, partitioning strategies, deployments, and the
//!   experiment harnesses.
//! * [`streamkit`] — the streaming-engine substrate (operators, windows,
//!   watermarks, plans).
//! * [`simnet`] — the deterministic multi-node emulator (CPU budgets,
//!   bandwidth-limited links, topologies).
//! * [`telemetry`] — synthetic Pingmesh and LogAnalytics workloads.
//! * [`lp`] (`jarvis-lp`) — the simplex solver behind the load-factor LP.
//! * [`synopsis`] — sampling/sketch baselines used in the accuracy study.
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; in short:
//!
//! ```
//! use jarvis::prelude::*;
//!
//! // Build the paper's S2SProbe query on a synthetic Pingmesh stream and run
//! // it on one data source (60% CPU budget) attached to a stream processor.
//! let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
//! let mut scenario = Scenario::single_source(spec, StrategyKind::Jarvis, 0.6);
//! let report = scenario.run_epochs(25);
//! assert!(report.throughput_mbps > 0.0);
//! ```

pub use jarvis_core as core;
pub use jarvis_lp as lp;
pub use simnet;
pub use streamkit;
pub use synopsis;
pub use telemetry;

/// Commonly-used items for examples and downstream users.
pub mod prelude {
    pub use jarvis_core::calibration::Scale;
    pub use jarvis_core::experiment::{Scenario, ScenarioReport, ScenarioSpec};
    pub use jarvis_core::proxy::{ControlProxy, ProxyState};
    pub use jarvis_core::runtime::{JarvisRuntime, Phase, RuntimeConfig};
    pub use jarvis_core::strategy::StrategyKind;
    pub use streamkit::agg::AggKind;
    pub use streamkit::expr::Expr;
    pub use streamkit::query::Query;
    pub use streamkit::schema::{DataType, Field, Schema};
}
