//! # Jarvis — adaptive near-data processing for server monitoring
//!
//! A Rust reproduction of *"Jarvis: Large-scale Server Monitoring with
//! Adaptive Near-data Processing"* (ICDE 2022, Best Paper).
//!
//! Jarvis partitions a monitoring query **at the data level** between
//! resource-constrained data source nodes and a stream processor: every
//! operator is replicated on both sides and a per-operator *control proxy*
//! forwards a tunable fraction of records (the *load factor*) to the local
//! operator, draining the rest to the stream-processor replica. Load factors
//! are adapted within seconds by **StepWise-Adapt** — an LP-based
//! model-driven initialisation refined by model-agnostic fine-tuning.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] (`jarvis-core`) — control proxies, the Jarvis runtime state
//!   machine, StepWise-Adapt, partitioning strategies, the unified
//!   [`Deployment`](core::deploy::Deployment) API with its pluggable
//!   execution backends, and the experiment harnesses.
//! * [`streamkit`] — the streaming-engine substrate (operators, windows,
//!   watermarks, plans).
//! * [`simnet`] — the deterministic multi-node emulator (CPU budgets,
//!   bandwidth-limited links, topologies).
//! * [`telemetry`] — synthetic Pingmesh and LogAnalytics workloads.
//! * [`lp`] (`jarvis-lp`) — the simplex solver behind the load-factor LP.
//! * [`synopsis`] — sampling/sketch baselines used in the accuracy study.
//!
//! ## Quickstart
//!
//! One builder configures a deployment; pluggable backends execute it — the
//! calibrated emulator, the threaded live runtime, or the convergence
//! simulator. See `examples/quickstart.rs`; in short:
//!
//! ```
//! use jarvis::prelude::*;
//!
//! // Build the paper's S2SProbe query on a synthetic Pingmesh stream and run
//! // it on one data source (60% CPU budget) attached to a stream processor.
//! let report = Deployment::builder()
//!     .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
//!     .strategy(StrategyKind::Jarvis)
//!     .sources(1)
//!     .cpu_budget(0.6)
//!     .backend(BackendKind::Emulated)
//!     .build()
//!     .expect("valid deployment")
//!     .run(25)
//!     .expect("emulated run");
//! assert!(report.throughput_mbps > 0.0);
//! ```

pub use jarvis_core as core;
pub use jarvis_lp as lp;
pub use simnet;
pub use streamkit;
pub use synopsis;
pub use telemetry;

/// Commonly-used items for examples and downstream users.
pub mod prelude {
    pub use jarvis_core::calibration::Scale;
    pub use jarvis_core::deploy::{
        BackendKind, CustomWorkload, DeployError, Deployment, DeploymentBuilder, DeploymentSpec,
        ExactnessDigest, ExecBackend, RunReport, SourceAdapter,
    };
    pub use jarvis_core::experiment::{ResourceEvent, ScenarioSpec};
    pub use jarvis_core::live::LiveSession;
    pub use jarvis_core::proxy::{ControlProxy, ProxyState};
    pub use jarvis_core::runtime::{JarvisRuntime, Phase, RuntimeConfig};
    pub use jarvis_core::strategy::StrategyKind;
    pub use streamkit::agg::AggKind;
    pub use streamkit::expr::Expr;
    pub use streamkit::query::Query;
    pub use streamkit::schema::{DataType, Field, Schema};
}
