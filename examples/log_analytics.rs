//! Scenario 2 from the paper (§II-A): live debugging of storage-analytics
//! services from unstructured logs. The LogAnalytics query (Listing 3)
//! parses text logs into per-tenant statistics and bucketises them into
//! histograms; Jarvis adapts when a log burst hits a resource-constrained
//! node.
//!
//! ```sh
//! cargo run --release --example log_analytics
//! ```

use jarvis::core::calibration;
use jarvis::prelude::*;
use jarvis::telemetry::loganalytics::{LogConfig, LogGenerator};
use jarvis::telemetry::queries;

fn main() {
    // Part 1 — exact histograms through the threaded live runtime, with the
    // last two operators split 50/50 between the source and the SP replica.
    let workload = CustomWorkload::new(
        "log-debug",
        queries::log_analytics(),
        calibration::log_cost_profile(),
        vec![Box::new(LogGenerator::new(LogConfig::default()))],
    );
    let spec = Deployment::builder()
        .workload(workload)
        .strategy(StrategyKind::AllSrc)
        .load_factors(vec![1.0, 1.0, 1.0, 1.0, 0.5, 0.5])
        .cpu_budget(1.0)
        .spec()
        .expect("valid deployment");
    let mut session = LiveSession::new(&spec).expect("live session");
    session.run_epochs(12).expect("epochs run");
    println!("streamed {} log lines", session.input_records());
    let outcome = session.finish();
    println!(
        "result rows (tenant × stat × bucket): {}",
        outcome.results.len()
    );
    // Rows: [window_start, tenant, stat_name, bucket, count].
    for row in outcome.results.iter().take(5) {
        println!(
            "  window {:>3}s  {:<12} {:<18} bucket {:>2}: {}",
            row.values[0].as_i64().unwrap_or(0) / 1_000_000,
            row.values[1],
            row.values[2],
            row.values[3],
            row.values[4]
        );
    }
    assert!(!outcome.results.is_empty());

    // Part 2 — adaptation on the emulated node at 30% CPU, same builder.
    let r = Deployment::builder()
        .workload(ScenarioSpec::log_analytics(Scale::X10))
        .strategy(StrategyKind::Jarvis)
        .cpu_budget(0.3)
        .backend(BackendKind::Emulated)
        .build()
        .expect("valid deployment")
        .run(50)
        .expect("emulated run");
    println!("--- emulated node, 30% CPU, 10x log rate ---");
    println!(
        "throughput : {:.2} of {:.2} Mbps input",
        r.throughput_mbps, r.input_mbps
    );
    println!("network    : {:.2} Mbps", r.network_mbps);
    println!("factors    : {:?}", r.load_factors);
    assert!(r.throughput_mbps > 0.5 * r.input_mbps);
}
