//! Scenario 2 from the paper (§II-A): live debugging of storage-analytics
//! services from unstructured logs. The LogAnalytics query (Listing 3)
//! parses text logs into per-tenant statistics and bucketises them into
//! histograms; Jarvis adapts when a log burst hits a resource-constrained
//! node.
//!
//! ```sh
//! cargo run --release --example log_analytics
//! ```

use jarvis::core::calibration::Scale;
use jarvis::core::experiment::{Scenario, ScenarioSpec};
use jarvis::core::live::run_partitioned;
use jarvis::core::planner::{plan_query, RuleConfig};
use jarvis::core::strategy::StrategyKind;
use jarvis::telemetry::loganalytics::{LogConfig, LogGenerator};
use jarvis::telemetry::queries;

fn main() {
    // Part 1 — exact histograms through the live runtime.
    let mut gen = LogGenerator::new(LogConfig::default());
    let mut lines = Vec::new();
    for epoch in 0..12i64 {
        lines.extend(gen.generate_epoch(epoch * 1_000_000, 1.0));
    }
    println!("generated {} log lines", lines.len());

    let planned = plan_query(queries::log_analytics(), &RuleConfig::default()).unwrap();
    let costs = jarvis::core::calibration::log_cost_profile();
    let report = run_partitioned(&planned, &costs, lines, &[1.0, 1.0, 1.0, 1.0, 0.5, 0.5], 2);
    println!("result rows (tenant × stat × bucket): {}", report.results.len());
    // Rows: [window_start, tenant, stat_name, bucket, count].
    let mut shown = 0;
    for row in &report.results {
        if shown >= 5 {
            break;
        }
        println!(
            "  window {:>3}s  {:<12} {:<18} bucket {:>2}: {}",
            row.values[0].as_i64().unwrap_or(0) / 1_000_000,
            row.values[1],
            row.values[2],
            row.values[3],
            row.values[4]
        );
        shown += 1;
    }
    assert!(!report.results.is_empty());

    // Part 2 — adaptation on the emulated node at 30% CPU.
    let spec = ScenarioSpec::log_analytics(Scale::X10);
    let mut scenario = Scenario::single_source(spec, StrategyKind::Jarvis, 0.3);
    let r = scenario.run_epochs(50);
    println!("--- emulated node, 30% CPU, 10x log rate ---");
    println!("throughput : {:.2} of {:.2} Mbps input", r.throughput_mbps, r.input_mbps);
    println!("network    : {:.2} Mbps", r.network_mbps);
    println!("factors    : {:?}", r.load_factors);
    assert!(r.throughput_mbps > 0.5 * r.input_mbps);
}
