//! Distributed smoke test: a real multi-process deployment on loopback.
//!
//! The coordinator side of `jarvis-node`: listens on a TCP endpoint,
//! admits two remote executors, runs the S2SProbe query under the Jarvis
//! strategy over real sockets, and asserts the result digest is
//! bit-identical to a fully in-process run — the check CI performs against
//! two `jarvis-node` processes launched out of band.
//!
//! ```sh
//! # terminal 1 and 2 (or backgrounded):
//! cargo run --release --bin jarvis-node -- --coordinator 127.0.0.1:47531 --token ci-smoke
//! # terminal 3:
//! cargo run --release --example distributed_smoke
//! ```
//!
//! Args: `[listen_addr] [token]` (defaults `127.0.0.1:47531`, `ci-smoke`).
//! Exits non-zero on any mismatch.

use std::process::ExitCode;
use std::time::Duration;

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, Deployment, RunReport, TransportKind};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::strategy::StrategyKind;

const EPOCHS: u64 = 10;
const RING: u32 = 4;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:47531".to_string());
    let token = args.next().unwrap_or_else(|| "ci-smoke".to_string());

    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    println!("query  : {}", spec.plan().plan.display_chain());
    println!("listen : {addr} (token {token:?}, 2 nodes, {RING}-shard ring)");

    let remote = Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::Jarvis)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(&addr)
        .auth_token(&token)
        .node_timeout(Duration::from_secs(60))
        .collect_results(true)
        .build()
        .expect("valid TCP deployment")
        .run(EPOCHS);
    let remote = match remote {
        Ok(report) => report,
        Err(e) => {
            eprintln!("distributed run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let local = Deployment::builder()
        .workload(spec)
        .strategy(StrategyKind::Jarvis)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(4)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid in-process deployment")
        .run(EPOCHS)
        .expect("in-process run");

    report_line("tcp (2 nodes)", &remote);
    report_line("in-process (4 nodes)", &local);
    for (i, n) in remote.node_stats.iter().enumerate() {
        println!(
            "node {i} : {} wire bytes out, {} records drained",
            n.wire_bytes_out, n.drained_records
        );
    }

    if remote.exactness != local.exactness {
        eprintln!("DIGEST MISMATCH: the TCP run diverged from the in-process run");
        return ExitCode::FAILURE;
    }
    if remote.node_stats.iter().any(|n| n.wire_bytes_out == 0) {
        eprintln!("ACCOUNTING MISSING: a node moved zero socket bytes");
        return ExitCode::FAILURE;
    }
    println!("ok: distributed digest is bit-identical to the in-process run");
    ExitCode::SUCCESS
}

fn report_line(label: &str, r: &RunReport) {
    println!(
        "{label:<22}: {} results, digest {}",
        r.results_emitted,
        r.exactness.as_ref().map_or_else(
            || "-".into(),
            |d| format!("{} over {} rows", d.digest, d.rows)
        ),
    );
}
