//! Rule R-1 in action (paper §IV-B): *exact* quantiles cannot run near data,
//! but *approximate*, mergeable quantiles can — and the paper notes they
//! benefit from Jarvis like any incrementally-updatable aggregation.
//!
//! This example builds a p99-latency query with an approximate quantile
//! sketch, shows the planner admitting it to the source prefix (and
//! rejecting it when quantiles are configured as exact), and runs it
//! partitioned through the live backend to produce per-pair tail-latency
//! estimates.
//!
//! ```sh
//! cargo run --release --example approx_quantiles
//! ```

use jarvis::core::planner::{plan_query, RuleConfig};
use jarvis::prelude::*;
use jarvis::streamkit::physical::CostProfile;
use jarvis::telemetry::anomaly::AnomalySchedule;
use jarvis::telemetry::pingmesh::{pingmesh_schema, PingmeshConfig, PingmeshGenerator};

fn main() {
    // p99 RTT per source cluster over 10-second windows.
    let plan = Query::stream("tail_latency", pingmesh_schema())
        .window_secs(10.0)
        .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
        .group_by(&["srcCluster"])
        .aggregate(&[(
            AggKind::ApproxQuantile {
                q: 0.99,
                lo: 0.0,
                hi: 50_000.0,
            },
            "rtt",
            "p99_rtt",
        )])
        .build()
        .unwrap();

    // R-1: approximate quantiles are incrementally updatable -> eligible.
    let planned = plan_query(plan.clone(), &RuleConfig::default()).unwrap();
    println!("chain: {}", planned.plan.display_chain());
    println!(
        "source-eligible operators: {} of {}",
        planned.source_ops,
        planned.plan.ops.len()
    );
    assert_eq!(planned.source_ops, 3);

    // Flip the rule: treat quantiles as exact -> the aggregation is SP-only.
    let strict = RuleConfig {
        quantiles_are_exact: true,
        ..Default::default()
    };
    let restricted = plan_query(plan.clone(), &strict).unwrap();
    println!(
        "with exact-quantile semantics the prefix shrinks to {} operator(s): {:?}",
        restricted.source_ops, restricted.exclusions
    );
    assert!(restricted.source_ops < 3);

    // Execute partitioned through the live backend: sketches merge across
    // the split exactly like any other partial state.
    let generator = PingmeshGenerator::new(PingmeshConfig {
        anomalies: AnomalySchedule::single(5.0, 50.0, 0.05, 25.0),
        ..Default::default()
    });
    let workload = CustomWorkload::new(
        "tail-latency",
        plan,
        CostProfile::uniform(3, 2.0),
        vec![Box::new(generator)],
    );
    let spec = Deployment::builder()
        .workload(workload)
        .strategy(StrategyKind::AllSrc)
        .load_factors(vec![1.0, 1.0, 0.6])
        .cpu_budget(1.0)
        .spec()
        .expect("valid deployment");
    let mut session = LiveSession::new(&spec).expect("live session");
    session.run_epochs(20).expect("epochs run");
    let outcome = session.finish();
    println!("--- merged p99 estimates ---");
    for row in outcome.results.iter().take(6) {
        println!(
            "window {:>3}s cluster {:>3}: p99 rtt = {:>8.0} us",
            row.values[0].as_i64().unwrap_or(0) / 1_000_000,
            row.values[1],
            row.values[2].as_f64().unwrap_or(f64::NAN),
        );
    }
    assert!(!outcome.results.is_empty());
    let worst = outcome
        .results
        .iter()
        .filter_map(|r| r.values[2].as_f64())
        .fold(0.0f64, f64::max);
    println!("worst cluster p99: {worst:.0} us (anomaly window drives the tail)");
    assert!(
        worst > 1_000.0,
        "the injected anomaly must surface in the p99"
    );
}
