//! Quickstart: run the paper's S2SProbe monitoring query on one emulated
//! data source under Jarvis' adaptive data-level partitioning — through the
//! unified `Deployment` builder (Listing 1's three-line contract).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jarvis::prelude::*;

fn main() {
    // The Listing 1 query on a synthetic Pingmesh stream at the paper's
    // 10x-scaled rate (26.2 Mbps per source).
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    println!("query   : {}", spec.plan().plan.display_chain());
    println!("input   : {:.2} Mbps", spec.input_mbps());

    // One data source with 60% of a core available to the monitoring query,
    // attached to a stream processor over a 20.48 Mbps uplink share. The
    // same builder drives the live and convergence backends too.
    let report = Deployment::builder()
        .workload(spec)
        .strategy(StrategyKind::Jarvis)
        .sources(1)
        .cpu_budget(0.6)
        .backend(BackendKind::Emulated)
        .build()
        .expect("valid deployment")
        .run(60)
        .expect("emulated run");

    println!("--- after 60 one-second epochs ---");
    println!(
        "throughput    : {:.2} Mbps (on-time, 5 s latency bound)",
        report.throughput_mbps
    );
    println!(
        "network       : {:.2} Mbps offered to the uplink",
        report.network_mbps
    );
    println!("load factors  : {:?}", report.load_factors);
    println!(
        "median latency: {:.0} ms",
        report.latency_median_s.unwrap_or(f64::NAN) * 1e3
    );
    println!(
        "adaptation    : {} episode(s), runtime overhead {:.3}% of a core",
        report.episodes.len(),
        report.overhead_core_frac * 100.0
    );

    // The first Profile/Adapt episode pulls the filter fully local and the
    // aggregation partially local, which is what keeps the network rate well
    // under the 26.2 Mbps input.
    assert!(report.throughput_mbps > 20.0);
    assert!(report.network_mbps < report.input_mbps);
    println!("ok: data-level partitioning kept the query within budget and bandwidth");
}
