//! Chaos smoke test: recovery from a real mid-run link kill.
//!
//! The coordinator side of the CI fault drill. Expects two `jarvis-node`
//! processes, at least one dialling in through `jarvis-chaos-proxy` with a
//! seeded kill (e.g. `--fault sever --at-epoch 3`) and `--reconnect` set,
//! so the run loses a node mid-epoch, holds the reconnect window, re-seeds
//! the returning executor from its checkpoint, and still produces a digest
//! bit-identical to a fully in-process run.
//!
//! ```sh
//! # terminal 1: the proxy that will sever connection 1 at epoch 3
//! cargo run --release --bin jarvis-chaos-proxy -- \
//!     --listen 127.0.0.1:47532 --upstream 127.0.0.1:47531 \
//!     --fault sever --at-epoch 3 --seed 7
//! # terminals 2 and 3: one node through the proxy, one direct
//! cargo run --release --bin jarvis-node -- \
//!     --coordinator 127.0.0.1:47532 --token ci-smoke --reconnect
//! cargo run --release --bin jarvis-node -- \
//!     --coordinator 127.0.0.1:47531 --token ci-smoke
//! # terminal 4:
//! cargo run --release --example chaos_smoke
//! ```
//!
//! Args: `[listen_addr] [token]` (defaults `127.0.0.1:47531`, `ci-smoke`).
//! Exits non-zero on digest mismatch or if no fault was actually injected
//! — a clean run here means the drill tested nothing.

use std::process::ExitCode;
use std::time::Duration;

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, Deployment, RunReport, TransportKind};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::strategy::StrategyKind;

const EPOCHS: u64 = 10;
const RING: u32 = 4;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let addr = args.next().unwrap_or_else(|| "127.0.0.1:47531".to_string());
    let token = args.next().unwrap_or_else(|| "ci-smoke".to_string());

    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    println!("query  : {}", spec.plan().plan.display_chain());
    println!("listen : {addr} (token {token:?}, 2 nodes, {RING}-shard ring)");

    let remote = Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(&addr)
        .auth_token(&token)
        .node_timeout(Duration::from_secs(60))
        .liveness_timeout(Duration::from_secs(5))
        .checkpoint_interval(2)
        .reconnect_grace(Duration::from_secs(20))
        .collect_results(true)
        .build()
        .expect("valid TCP deployment")
        .run(EPOCHS);
    let remote = match remote {
        Ok(report) => report,
        Err(e) => {
            eprintln!("chaos run failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let local = Deployment::builder()
        .workload(spec)
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(4)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid in-process deployment")
        .run(EPOCHS)
        .expect("in-process run");

    report_line("tcp under chaos", &remote);
    report_line("in-process", &local);
    for i in &remote.incidents {
        println!(
            "incident: node {} lost at epoch {} ({}) -> {}, {} replay bytes",
            i.node, i.epoch, i.reason, i.action, i.replay_bytes
        );
    }
    println!(
        "recovery: {} replay bytes, {} heartbeats",
        remote.replay_bytes, remote.heartbeats_sent
    );

    if remote.incidents.is_empty() {
        eprintln!("NO FAULT INJECTED: the chaos drill did not exercise recovery");
        return ExitCode::FAILURE;
    }
    if remote.replay_bytes == 0 {
        eprintln!("NO REPLAY: recovery must re-ship checkpoint + buffered traffic");
        return ExitCode::FAILURE;
    }
    if remote.exactness != local.exactness {
        eprintln!("DIGEST MISMATCH: recovery diverged from the fault-free run");
        return ExitCode::FAILURE;
    }
    if remote
        .shard_stats
        .iter()
        .any(|s| (s.completeness - 1.0).abs() > f64::EPSILON)
    {
        eprintln!("INCOMPLETE: a recovered run must cover every shard fully");
        return ExitCode::FAILURE;
    }
    println!("ok: digest bit-identical to the fault-free run after recovery");
    ExitCode::SUCCESS
}

fn report_line(label: &str, r: &RunReport) {
    println!(
        "{label:<16}: {} results, digest {}",
        r.results_emitted,
        r.exactness.as_ref().map_or_else(
            || "-".into(),
            |d| format!("{} over {} rows", d.digest, d.rows)
        ),
    );
}
