//! Watch Jarvis adapt to resource-condition changes (the Fig. 8 experiment,
//! live): the node's CPU budget jumps 10 % → 90 % → 60 % and the runtime
//! re-partitions the query within a few one-second epochs. Resource events
//! are scheduled straight on the deployment builder.
//!
//! ```sh
//! cargo run --release --example adaptive_rebalance
//! ```

use jarvis::core::runtime::TraceState;
use jarvis::prelude::*;

fn main() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let events = [
        ResourceEvent {
            epoch: 3,
            cpu_budget: Some(0.9),
            table_size: None,
        },
        ResourceEvent {
            epoch: 18,
            cpu_budget: Some(0.6),
            table_size: None,
        },
    ];

    println!("S2SProbe at 10x; CPU budget: 10% -> 90% (epoch 3) -> 60% (epoch 18)\n");
    for strategy in [
        StrategyKind::JarvisLpOnly,
        StrategyKind::JarvisNoLpInit,
        StrategyKind::Jarvis,
    ] {
        let report = Deployment::builder()
            .workload(spec.clone())
            .strategy(strategy)
            .cpu_budget(0.10)
            .events(&events)
            .backend(BackendKind::Emulated)
            .build()
            .expect("valid deployment")
            .run(32)
            .expect("emulated run");
        let series: String = report
            .trace
            .iter()
            .map(|t| match t.trace {
                TraceState::Stable => 'S',
                TraceState::Detect => 'D',
                TraceState::Idle => 'I',
                TraceState::Profile => 'P',
                TraceState::Congested => 'C',
            })
            .collect();
        println!("{:<12} {}", strategy.label(), series);
        for (start, end) in &report.episodes {
            println!(
                "{:<12}   adapted in {} epoch(s) (epochs {}..{})",
                "",
                end - start,
                start,
                end
            );
        }
        if report.episodes.is_empty() {
            println!("{:<12}   never stabilised", "");
        }
    }
    println!("\nkey: S=Stable D=Detect I=Idle P=Profile C=Congested");
    println!("The paper's claim: Jarvis converges within seven seconds of a change.");
}
