//! Scenario 1 from the paper (§II-A): a web-search team monitors network
//! health with Pingmesh and alerts when more than 1 % of server pairs see
//! probe latencies above 5 ms.
//!
//! This example runs the S2SProbe query through the threaded live runtime
//! under a pinned data-level partitioning plan, then evaluates the alert
//! condition on the *merged* stream-processor results — demonstrating that
//! partitioned execution is exact (no alert is lost to partitioning, unlike
//! sampling). The deployment is configured through the unified builder; the
//! custom anomaly-injecting generator plugs in as a [`CustomWorkload`].
//!
//! ```sh
//! cargo run --release --example pingmesh_monitor
//! ```

use jarvis::core::calibration;
use jarvis::prelude::*;
use jarvis::telemetry::anomaly::AnomalySchedule;
use jarvis::telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};
use jarvis::telemetry::queries;

fn main() {
    // A network incident: 3 % of server pairs spike to ~30x RTT for 50 s.
    let cfg = PingmeshConfig {
        anomalies: AnomalySchedule::single(10.0, 50.0, 0.03, 30.0),
        ..Default::default()
    };
    let input_mbps = cfg.bits_per_sec() / calibration::MBPS;
    let workload = CustomWorkload::new(
        "pingmesh-incident",
        queries::s2s_probe(),
        calibration::s2s_cost_profile(),
        vec![Box::new(PingmeshGenerator::new(cfg))],
    )
    .with_input_mbps(input_mbps);

    // Deploy with a pinned data-level plan: filter fully local, aggregation
    // on 70 % of records local, the rest drained to the stream processor.
    let spec = Deployment::builder()
        .workload(workload)
        .strategy(StrategyKind::AllSrc)
        .load_factors(vec![1.0, 1.0, 0.7])
        .cpu_budget(1.0)
        .sources(1)
        .spec()
        .expect("valid deployment");
    let mut session = LiveSession::new(&spec).expect("live session");
    session.run_epochs(30).expect("epochs run");
    println!(
        "streamed {} probe records over 30 s",
        session.input_records()
    );
    let outcome = session.finish();
    println!(
        "live run: {} drained records, {} state deltas, {} result rows",
        outcome.drained_records,
        outcome.state_deltas,
        outcome.results.len()
    );

    // Alert evaluation on merged results: result rows are
    // [window_start, srcIp, dstIp, avg_rtt, max_rtt, min_rtt].
    let mut pairs = 0u64;
    let mut alerting = 0u64;
    for row in &outcome.results {
        pairs += 1;
        if row.values[4].as_f64().unwrap_or(0.0) > 5_000.0 {
            alerting += 1;
        }
    }
    let frac = alerting as f64 / pairs.max(1) as f64;
    println!(
        "pairs: {pairs}, above 5 ms: {alerting} ({:.2}%)",
        frac * 100.0
    );
    if frac > 0.01 {
        println!("ALERT: more than 1% of server pairs exceed the 5 ms latency threshold");
    } else {
        println!("network healthy");
    }
    assert!(frac > 0.01, "the injected incident must trigger the alert");
}
