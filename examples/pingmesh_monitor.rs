//! Scenario 1 from the paper (§II-A): a web-search team monitors network
//! health with Pingmesh and alerts when more than 1 % of server pairs see
//! probe latencies above 5 ms.
//!
//! This example runs the S2SProbe query through the threaded live runtime
//! under a data-level partitioning plan, then evaluates the alert condition
//! on the *merged* stream-processor results — demonstrating that partitioned
//! execution is exact (no alert is lost to partitioning, unlike sampling).
//!
//! ```sh
//! cargo run --release --example pingmesh_monitor
//! ```

use jarvis::core::calibration;
use jarvis::core::live::run_partitioned;
use jarvis::core::planner::{plan_query, RuleConfig};
use jarvis::telemetry::anomaly::AnomalySchedule;
use jarvis::telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};
use jarvis::telemetry::queries;

fn main() {
    // A network incident: 3 % of server pairs spike to ~30x RTT for 50 s.
    let cfg = PingmeshConfig {
        anomalies: AnomalySchedule::single(10.0, 50.0, 0.03, 30.0),
        ..Default::default()
    };
    let mut gen = PingmeshGenerator::new(cfg);
    let mut records = Vec::new();
    for epoch in 0..30i64 {
        records.extend(gen.generate_epoch(epoch * 1_000_000, 1.0));
    }
    println!("generated {} probe records over 30 s", records.len());

    let planned = plan_query(queries::s2s_probe(), &RuleConfig::default()).unwrap();
    let costs = calibration::s2s_cost_profile();

    // Deploy with a data-level plan: filter fully local, aggregation on 70 %
    // of records local, the rest drained to the stream processor.
    let report = run_partitioned(&planned, &costs, records, &[1.0, 1.0, 0.7], 2);
    println!(
        "live run: {} drained records, {} state deltas, {} result rows",
        report.drained_records,
        report.state_deltas,
        report.results.len()
    );

    // Alert evaluation on merged results: result rows are
    // [window_start, srcIp, dstIp, avg_rtt, max_rtt, min_rtt].
    let mut pairs = 0u64;
    let mut alerting = 0u64;
    for row in &report.results {
        pairs += 1;
        if row.values[4].as_f64().unwrap_or(0.0) > 5_000.0 {
            alerting += 1;
        }
    }
    let frac = alerting as f64 / pairs.max(1) as f64;
    println!("pairs: {pairs}, above 5 ms: {alerting} ({:.2}%)", frac * 100.0);
    if frac > 0.01 {
        println!("ALERT: more than 1% of server pairs exceed the 5 ms latency threshold");
    } else {
        println!("network healthy");
    }
    assert!(frac > 0.01, "the injected incident must trigger the alert");
}
