//! Multiple monitoring queries sharing one data source node (paper §VI-F):
//! compute is split max-min fairly, the node uplink is shared, and aggregate
//! throughput saturates when either resource runs out.
//!
//! ```sh
//! cargo run --release --example multi_query
//! ```

use jarvis::core::calibration::Scale;
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::multiquery::{fair_share_cores, run_multi_query};

fn main() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X5);
    println!(
        "S2SProbe instances at 5x input ({:.1} Mbps each), one-core node\n",
        spec.input_mbps()
    );
    println!(
        "{:>8} {:>16} {:>18}",
        "queries", "per-query cores", "aggregate Mbps"
    );
    let mut last = 0.0;
    for k in [1u32, 2, 3, 4, 6, 8] {
        let point = run_multi_query(&spec, 1.0, k, 40, None);
        println!(
            "{:>8} {:>16.3} {:>18.2}",
            k, point.per_query_cores, point.throughput_mbps
        );
        last = point.throughput_mbps;
    }
    println!(
        "\nfair share at 8 queries: {:.3} cores each (after the {:.1}% per-query engine overhead)",
        fair_share_cores(1.0, 8),
        jarvis::core::calibration::PER_QUERY_OVERHEAD_CORES * 100.0
    );
    assert!(last > 0.0);
}
