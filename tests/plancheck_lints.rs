//! Golden diagnostics: one deliberately-broken plan per `JPxxx` lint code.
//!
//! Each test builds the smallest plan/deployment combination that trips
//! exactly one analyzer rule and asserts the exact code (and severity /
//! surface: `DeployError::PlanCheck` for errors, `RunReport::plan_warnings`
//! for warnings). A final property test closes the loop the module exists
//! for: plans the analyzer passes clean at `sp_shards = 4` really do produce
//! digest-identical results sharded vs unsharded.

use std::sync::Arc;

use jarvis::core::deploy::{BackendKind, CustomWorkload, DeployError, Deployment, TransportKind};
use jarvis::core::plancheck::{self, code, CheckContext, Diagnostic, Severity};
use jarvis::core::planner::{plan_query, RuleConfig};
use jarvis::core::strategy::StrategyKind;
use jarvis::streamkit::agg::{AggKind, AggSpec};
use jarvis::streamkit::expr::Expr;
use jarvis::streamkit::logical::{LogicalOp, LogicalPlan};
use jarvis::streamkit::ops::{EmitMode, JoinMiss, MapFn, StaticTable};
use jarvis::streamkit::physical::CostProfile;
use jarvis::streamkit::query::Query;
use jarvis::streamkit::record::Record;
use jarvis::streamkit::value::Value;
use jarvis::telemetry::pingmesh::{pingmesh_schema, PingmeshConfig, PingmeshGenerator};
use proptest::prelude::*;

/// Lints `plan` under default rules in a local context.
fn lint(plan: LogicalPlan, shards: u32, nodes: u32, strategy: StrategyKind) -> Vec<Diagnostic> {
    lint_with(plan, &RuleConfig::default(), shards, nodes, strategy)
}

fn lint_with(
    plan: LogicalPlan,
    rules: &RuleConfig,
    shards: u32,
    nodes: u32,
    strategy: StrategyKind,
) -> Vec<Diagnostic> {
    let planned = plan_query(plan, rules).expect("plan is valid");
    plancheck::check(
        &planned,
        rules,
        &CheckContext::local(shards, nodes, strategy),
    )
}

fn find<'a>(diags: &'a [Diagnostic], code: &str) -> &'a Diagnostic {
    diags
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("expected {code} in {diags:?}"))
}

/// The shared key-rewriting map: opaque to the analyzer by construction.
fn opaque_identity() -> MapFn {
    MapFn::Custom {
        name: "rekey",
        schema: pingmesh_schema(),
        f: Arc::new(|r: &Record| Some(r.clone())),
    }
}

/// S2S-shaped plan with an opaque map in the group-key lineage.
fn opaque_key_plan() -> LogicalPlan {
    Query::stream("opaque-keys", pingmesh_schema())
        .window_secs(10.0)
        .map(opaque_identity())
        .group_by(&["srcCluster"])
        .aggregate(&[(AggKind::Avg, "rtt", "avg_rtt")])
        .build()
        .unwrap()
}

/// A p99 plan whose quantile aggregate rules can flip exact/approximate.
fn quantile_plan() -> LogicalPlan {
    Query::stream("p99", pingmesh_schema())
        .window_secs(10.0)
        .group_by(&["srcCluster"])
        .aggregate(&[(
            AggKind::ApproxQuantile {
                q: 0.99,
                lo: 0.0,
                hi: 50_000.0,
            },
            "rtt",
            "p99_rtt",
        )])
        .build()
        .unwrap()
}

// ---- JP001-JP004: the planner's R-1..R-4 exclusions as diagnostics ----

#[test]
fn jp001_non_incremental_aggregate() {
    let rules = RuleConfig {
        quantiles_are_exact: true,
        ..Default::default()
    };
    let diags = lint_with(quantile_plan(), &rules, 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::NON_INCREMENTAL_AGG);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.op_index, Some(1));
}

#[test]
fn jp002_operator_after_the_stateful_boundary() {
    let plan = Query::stream("post-agg", pingmesh_schema())
        .window_secs(10.0)
        .group_by(&["srcCluster"])
        .aggregate(&[(AggKind::Avg, "rtt", "avg_rtt")])
        .filter_named("avg_rtt", |c| c.gt(Expr::lit(100.0)))
        .build()
        .unwrap();
    let diags = lint(plan, 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::AFTER_STATEFUL);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.op_index, Some(2));
}

#[test]
fn jp003_stream_stream_join() {
    let snapshot = Arc::new(StaticTable::new(
        vec![jarvis::streamkit::schema::Field::new(
            "peer",
            jarvis::streamkit::schema::DataType::U32,
        )],
        (0u64..8).map(|k| (Value::U64(k), vec![Value::U64(k + 1)])),
    ));
    let plan = Query::stream("stream-join", pingmesh_schema())
        .window_secs(10.0)
        .join_stream(snapshot, "srcCluster", JoinMiss::Drop)
        .group_by(&["srcCluster"])
        .aggregate(&[(AggKind::Count, "rtt", "n")])
        .build()
        .unwrap();
    let diags = lint(plan, 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::STREAM_JOIN);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.op_index, Some(1));
}

#[test]
fn jp004_parallel_operator() {
    let plan = Query::stream("wide-filter", pingmesh_schema())
        .window_secs(10.0)
        .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
        .parallel(4)
        .group_by(&["srcCluster"])
        .aggregate(&[(AggKind::Avg, "rtt", "avg_rtt")])
        .build()
        .unwrap();
    let diags = lint(plan, 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::PARALLEL_OP);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.op_index, Some(1));
}

// ---- JP101: opaque key lineage ----

#[test]
fn jp101_errors_when_sharded_and_the_builder_refuses() {
    // Acceptance case: a key-rewriting Map before the shard boundary must be
    // rejected *statically*, with the typed error, before anything runs.
    let workload = CustomWorkload::new(
        "opaque-keys",
        opaque_key_plan(),
        CostProfile::uniform(3, 2.0),
        vec![],
    );
    let err = Deployment::builder()
        .workload(workload)
        .sp_shards(2)
        .build()
        .unwrap_err();
    let DeployError::PlanCheck(diags) = err else {
        panic!("expected PlanCheck, got {err:?}");
    };
    let d = find(&diags, code::OPAQUE_KEY_LINEAGE);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.op_index, Some(1), "anchored on the opaque map");
}

#[test]
fn jp101_downgrades_to_a_warning_unsharded_and_rides_the_report() {
    // At sp_shards = 1 there is no partitioner to disagree with: the plan
    // builds, and the warning surfaces in the run report.
    let workload = CustomWorkload::new(
        "opaque-keys",
        opaque_key_plan(),
        CostProfile::uniform(3, 2.0),
        vec![Box::new(PingmeshGenerator::new(PingmeshConfig::default()))],
    );
    let report = Deployment::builder()
        .workload(workload)
        .strategy(StrategyKind::AllSp)
        .sources(1)
        .backend(BackendKind::Emulated)
        .build()
        .expect("unsharded opaque keys are runnable")
        .run(3)
        .expect("emulated run");
    let d = find(&report.plan_warnings, code::OPAQUE_KEY_LINEAGE);
    assert_eq!(d.severity, Severity::Warning);
}

// ---- JP105: group key off the code-native dictionary fast path ----

#[test]
fn jp105_flags_str_keys_behind_opaque_maps_as_off_the_fast_path() {
    use jarvis::streamkit::schema::{DataType, Field, Schema};
    let schema = Schema::new(vec![
        Field::new("tenant", DataType::Str),
        Field::new("v", DataType::U32),
    ]);
    let plan = Query::stream("opaque-str-keys", schema.clone())
        .window_secs(10.0)
        .map(MapFn::Custom {
            name: "rekey",
            schema,
            f: Arc::new(|r: &Record| Some(r.clone())),
        })
        .group_by(&["tenant"])
        .aggregate(&[(AggKind::Avg, "v", "avg_v")])
        .build()
        .unwrap();
    let diags = lint(plan, 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::KEY_OFF_CODE_FAST_PATH);
    assert_eq!(d.severity, Severity::Info);
    assert_eq!(d.op_index, Some(1), "anchored on the opaque map");
    // The routing concern surfaces separately, at its own severity.
    find(&diags, code::OPAQUE_KEY_LINEAGE);
    // A numeric key through the same opaque map was never a dictionary
    // candidate: JP101 fires, JP105 does not.
    let diags = lint(opaque_key_plan(), 1, 1, StrategyKind::Jarvis);
    find(&diags, code::OPAQUE_KEY_LINEAGE);
    assert!(
        diags.iter().all(|d| d.code != code::KEY_OFF_CODE_FAST_PATH),
        "got {diags:?}"
    );
}

// ---- JP102/JP103: keyed operators past the shard boundary ----

/// S2S with a second grouped aggregation stacked on the first.
fn double_agg_plan() -> LogicalPlan {
    let mut plan = jarvis::telemetry::queries::s2s_probe();
    plan.ops.push(LogicalOp::GroupAggregate {
        keys: vec![1],
        aggs: vec![AggSpec::new(AggKind::Avg, 3, "avg_of_avg")],
        emit: EmitMode::OnWindowClose,
    });
    plan.parallel.push(1);
    plan.validate().expect("two-stage aggregation is valid");
    plan
}

#[test]
fn jp102_second_keyed_operator_under_sharding() {
    let diags = lint(double_agg_plan(), 2, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::RESHARD_UNSUPPORTED);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.op_index, Some(3), "anchored on the second aggregate");
}

#[test]
fn jp103_second_keyed_operator_unsharded_is_a_warning() {
    let diags = lint(double_agg_plan(), 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::MULTI_KEYED_PLAN);
    assert_eq!(d.severity, Severity::Warning);
    assert!(
        !diags.iter().any(|d| d.severity == Severity::Error),
        "unsharded the plan stays runnable: {diags:?}"
    );
}

// ---- JP201: non-mergeable aggregate on a state-shipping path ----

#[test]
fn jp201_non_mergeable_aggregate_under_state_shipping() {
    // Disable R-1 so the exact-semantics quantile stays in the source
    // prefix, then deploy under a strategy that ships partial state.
    let rules = RuleConfig {
        forbid_non_incremental: false,
        quantiles_are_exact: true,
        ..Default::default()
    };
    let diags = lint_with(quantile_plan(), &rules, 1, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::NON_MERGEABLE_STATE);
    assert_eq!(d.severity, Severity::Error);

    // All-SP never places load on source-side stateful operators, so the
    // same plan is fine there.
    let diags = lint_with(quantile_plan(), &rules, 1, 1, StrategyKind::AllSp);
    assert!(diags.is_empty(), "got {diags:?}");
}

#[test]
fn jp201_is_refused_by_the_builder() {
    // Acceptance case: the builder rejects the non-mergeable aggregate under
    // a state-shipping strategy with the typed error.
    let workload = CustomWorkload::new(
        "exact-p99",
        quantile_plan(),
        CostProfile::uniform(3, 2.0),
        vec![],
    );
    let err = Deployment::builder()
        .workload(workload)
        .rules(RuleConfig {
            forbid_non_incremental: false,
            quantiles_are_exact: true,
            ..Default::default()
        })
        .strategy(StrategyKind::Jarvis)
        .build()
        .unwrap_err();
    let DeployError::PlanCheck(diags) = err else {
        panic!("expected PlanCheck, got {err:?}");
    };
    assert_eq!(
        find(&diags, code::NON_MERGEABLE_STATE).severity,
        Severity::Error
    );
}

// ---- JP301-JP304: deployment cross-checks ----

#[test]
fn jp301_shards_without_a_keyed_boundary() {
    // Acceptance case: an infeasible sp_shards/plan combo is a typed error.
    let plan = Query::stream("flat", pingmesh_schema())
        .window_secs(10.0)
        .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
        .build()
        .unwrap();
    let diags = lint(plan.clone(), 4, 1, StrategyKind::Jarvis);
    let d = find(&diags, code::SHARDS_WITHOUT_KEYS);
    assert_eq!(d.severity, Severity::Error);

    let workload = CustomWorkload::new("flat", plan, CostProfile::uniform(2, 2.0), vec![]);
    let err = Deployment::builder()
        .workload(workload)
        .sp_shards(4)
        .build()
        .unwrap_err();
    let DeployError::PlanCheck(diags) = err else {
        panic!("expected PlanCheck, got {err:?}");
    };
    assert_eq!(diags[0].code, code::SHARDS_WITHOUT_KEYS);
}

#[test]
fn jp302_tcp_with_scheduled_events() {
    let planned = plan_query(quantile_plan(), &RuleConfig::default()).unwrap();
    let mut ctx = CheckContext::local(1, 1, StrategyKind::Jarvis);
    ctx.tcp = true;
    ctx.has_events = true;
    let diags = plancheck::check(&planned, &RuleConfig::default(), &ctx);
    assert_eq!(
        find(&diags, code::TCP_WITH_EVENTS).severity,
        Severity::Error
    );
}

#[test]
fn jp303_tcp_with_an_undescribable_workload() {
    let planned = plan_query(quantile_plan(), &RuleConfig::default()).unwrap();
    let mut ctx = CheckContext::local(1, 1, StrategyKind::Jarvis);
    ctx.tcp = true;
    ctx.remote_describable = false;
    let diags = plancheck::check(&planned, &RuleConfig::default(), &ctx);
    assert_eq!(
        find(&diags, code::TCP_UNDESCRIBABLE).severity,
        Severity::Error
    );
    // The builder-level surface of the same lint.
    let workload = CustomWorkload::new(
        "ad-hoc",
        quantile_plan(),
        CostProfile::uniform(3, 2.0),
        vec![],
    );
    let err = Deployment::builder()
        .workload(workload)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr("127.0.0.1:0")
        .build()
        .unwrap_err();
    let DeployError::PlanCheck(diags) = err else {
        panic!("expected PlanCheck, got {err:?}");
    };
    assert!(diags.iter().any(|d| d.code == code::TCP_UNDESCRIBABLE));
}

// ---- JP501: source fan-in past the async runtime's documented bound ----

#[test]
fn jp501_fanin_past_the_bound_with_untuned_channels() {
    use jarvis::core::rt::{DEFAULT_CHANNEL_CAPACITY, RT_FANIN_BOUND};
    let planned = plan_query(
        jarvis::telemetry::queries::s2s_probe(),
        &RuleConfig::default(),
    )
    .unwrap();
    let mut ctx = CheckContext::local(1, 1, StrategyKind::Jarvis);
    ctx.rt_workers = 4;
    ctx.sources = 4 * RT_FANIN_BOUND + 1;
    ctx.channel_capacity = DEFAULT_CHANNEL_CAPACITY;
    let diags = plancheck::check(&planned, &RuleConfig::default(), &ctx);
    let d = find(&diags, code::RT_FANIN_UNTUNED);
    assert_eq!(d.severity, Severity::Info);

    // Tuning either knob clears it: widened channels…
    ctx.channel_capacity = 2 * DEFAULT_CHANNEL_CAPACITY;
    let diags = plancheck::check(&planned, &RuleConfig::default(), &ctx);
    assert!(
        diags.iter().all(|d| d.code != code::RT_FANIN_UNTUNED),
        "got {diags:?}"
    );

    // …or enough workers to bring the per-worker fan-in back in bounds.
    ctx.channel_capacity = DEFAULT_CHANNEL_CAPACITY;
    ctx.rt_workers = 5;
    let diags = plancheck::check(&planned, &RuleConfig::default(), &ctx);
    assert!(
        diags.iter().all(|d| d.code != code::RT_FANIN_UNTUNED),
        "got {diags:?}"
    );
}

#[test]
fn jp304_tcp_needs_the_live_backend() {
    let planned = plan_query(quantile_plan(), &RuleConfig::default()).unwrap();
    let mut ctx = CheckContext::local(1, 1, StrategyKind::Jarvis);
    ctx.tcp = true;
    ctx.backend = BackendKind::Emulated;
    let diags = plancheck::check(&planned, &RuleConfig::default(), &ctx);
    assert_eq!(find(&diags, code::TCP_NEEDS_LIVE).severity, Severity::Error);
}

// ---- the shipped plans stay clean ----

#[test]
fn paper_plans_lint_clean_at_every_shard_count() {
    let plans = [
        jarvis::telemetry::queries::s2s_probe(),
        {
            let (src, dst) = jarvis::telemetry::queries::t2t_tables(500, 40, &[1]);
            jarvis::telemetry::queries::t2t_probe(src, dst)
        },
        jarvis::telemetry::queries::log_analytics(),
    ];
    for plan in plans {
        for shards in [1u32, 4] {
            let diags = lint(plan.clone(), shards, shards.min(2), StrategyKind::Jarvis);
            assert!(
                diags.is_empty(),
                "{} at {shards} shards: {diags:?}",
                plan.name
            );
        }
    }
}

// ---- plancheck-clean implies shard parity ----

/// One grouped-aggregation plan from a small discrete parameter space:
/// key-column choice × aggregate kind × optional error-code filter.
fn param_plan(key_sel: usize, agg_sel: usize, filtered: bool, err_lt: u64) -> LogicalPlan {
    let keys: &[&str] = match key_sel {
        0 => &["srcCluster"],
        1 => &["dstCluster"],
        _ => &["srcCluster", "dstCluster"],
    };
    let agg = match agg_sel {
        0 => AggKind::Count,
        1 => AggKind::Sum,
        2 => AggKind::Min,
        3 => AggKind::Max,
        _ => AggKind::Avg,
    };
    let mut q = Query::stream("prop", pingmesh_schema()).window_secs(10.0);
    if filtered {
        q = q.filter_named("errCode", move |c| c.lt(Expr::lit(err_lt + 1)));
    }
    q.group_by(keys)
        .aggregate(&[(agg, "rtt", "agg_rtt")])
        .build()
        .unwrap()
}

fn run_digest(plan: LogicalPlan, shards: u32) -> jarvis::core::deploy::ExactnessDigest {
    let n_ops = plan.ops.len();
    let workload = CustomWorkload::new(
        "prop",
        plan,
        CostProfile::uniform(n_ops, 2.0),
        vec![Box::new(PingmeshGenerator::new(PingmeshConfig::default()))],
    );
    let report = Deployment::builder()
        .workload(workload)
        .strategy(StrategyKind::AllSp)
        .sources(1)
        .sp_shards(shards)
        .backend(BackendKind::Emulated)
        .collect_results(true)
        .build()
        .expect("plancheck-clean plan builds")
        .run(6)
        .expect("emulated run");
    report.exactness.expect("digest collected")
}

proptest! {
    /// Plans the analyzer passes clean at 4 shards produce digest-identical
    /// results sharded vs unsharded — the static check really is a sound
    /// precondition for the runtime parity the digest suites measure.
    #[test]
    fn plancheck_clean_plans_pass_shard_digest_parity(
        params in (0usize..3, 0usize..5, any::<bool>(), 0u64..3)
    ) {
        let (key_sel, agg_sel, filtered, err_lt) = params;
        let plan = param_plan(key_sel, agg_sel, filtered, err_lt);
        let diags = lint(plan.clone(), 4, 1, StrategyKind::AllSp);
        prop_assert!(diags.is_empty(), "generator must emit clean plans: {diags:?}");
        let unsharded = run_digest(plan.clone(), 1);
        let sharded = run_digest(plan, 4);
        prop_assert_eq!(unsharded, sharded);
    }
}
