//! Convergence behaviour (paper §VI-C): Jarvis stabilises within seconds of
//! a resource change, faster than its ablations.

use jarvis::core::calibration::Scale;
use jarvis::core::experiment::{convergence_run, ResourceEvent, ScenarioSpec};
use jarvis::core::strategy::StrategyKind;

/// Paper: "Jarvis converges to a stable query partition within seconds" —
/// up to seven 1-second epochs for the evaluated workloads.
#[test]
fn jarvis_converges_within_seven_epochs_of_a_budget_change() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let events = [
        ResourceEvent {
            epoch: 3,
            cpu_budget: Some(0.9),
            table_size: None,
        },
        ResourceEvent {
            epoch: 18,
            cpu_budget: Some(0.6),
            table_size: None,
        },
    ];
    let report = convergence_run(&spec, StrategyKind::Jarvis, 0.10, &events, 32);
    assert!(
        report.episodes.len() >= 2,
        "both changes must trigger adaptation: {:?}",
        report.episodes
    );
    for (start, end) in &report.episodes {
        assert!(
            end - start <= 7,
            "adaptation took {} epochs ({} -> {})",
            end - start,
            start,
            end
        );
    }
}

#[test]
fn jarvis_is_at_least_as_fast_as_the_model_agnostic_ablation() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let events = [ResourceEvent {
        epoch: 3,
        cpu_budget: Some(0.9),
        table_size: None,
    }];
    let jarvis = convergence_run(&spec, StrategyKind::Jarvis, 0.10, &events, 40);
    let agnostic = convergence_run(&spec, StrategyKind::JarvisNoLpInit, 0.10, &events, 40);
    let first =
        |r: &jarvis::core::deploy::RunReport| r.episodes.first().map_or(u64::MAX, |(a, b)| b - a);
    assert!(
        first(&jarvis) <= first(&agnostic),
        "LP init must not slow convergence: jarvis {:?} vs w/o-lp {:?}",
        jarvis.episodes,
        agnostic.episodes
    );
}

#[test]
fn join_table_growth_triggers_adaptation() {
    let spec = ScenarioSpec::pingmesh_t2t(Scale::X10, 50);
    let events = [
        ResourceEvent {
            epoch: 3,
            cpu_budget: Some(1.0),
            table_size: None,
        },
        ResourceEvent {
            epoch: 18,
            cpu_budget: None,
            table_size: Some(500),
        },
    ];
    let report = convergence_run(&spec, StrategyKind::Jarvis, 0.10, &events, 48);
    // The second episode is the table-growth congestion.
    assert!(
        report.episodes.iter().any(|(start, _)| *start >= 18),
        "table growth must trigger an adaptation episode: {:?}",
        report.episodes
    );
    // And the query must end the run stable.
    let tail: Vec<_> = report.trace.iter().rev().take(3).map(|t| t.state).collect();
    assert!(
        tail.contains(&jarvis::core::proxy::QueryState::Stable),
        "query must re-stabilise after table growth: tail {tail:?}"
    );
}

#[test]
fn fixed_strategies_never_adapt() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let events = [ResourceEvent {
        epoch: 5,
        cpu_budget: Some(0.2),
        table_size: None,
    }];
    let report = convergence_run(&spec, StrategyKind::FilterSrc, 1.0, &events, 20);
    assert!(report.episodes.is_empty());
    assert_eq!(report.load_factors, vec![1.0, 1.0, 0.0]);
}
