//! Golden result fingerprints for the three paper queries.
//!
//! The record-at-a-time row shim served one release as the differential
//! oracle for the batch-first operator library (`tests/batch_row_parity.rs`
//! proved bit-identical digests). With the shim removed, this suite pins the
//! semantics the oracle guarded: every query's result multiset over the
//! deterministic generators is fingerprinted and compared against digests
//! committed at the moment the two execution models agreed. Any operator
//! change that alters results — reordering-insensitive, float-canonicalised
//! — trips these constants and must justify a golden update in review.
//!
//! Full (Final-role chain with per-epoch watermark/epoch hooks) and
//! partitioned (Partial-role prefix shipping state deltas into a Final-role
//! replica) flows are pinned separately, matching the retired suite.

use jarvis::core::deploy::ExactnessDigest;
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::logical::LogicalPlan;
use jarvis::streamkit::ops::AggRole;
use jarvis::streamkit::physical::{self, CostProfile};
use jarvis::streamkit::record::Record;
use jarvis::telemetry;
use telemetry::loganalytics::{LogConfig, LogGenerator};
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

const EPOCHS: i64 = 6;

/// Runs epoch batches through a full Final-role chain (with per-epoch
/// watermarks/epoch hooks, like the engines) and returns every emitted row.
fn run_full(plan: &LogicalPlan, inputs: &[Batch]) -> Vec<Record> {
    let mut ops =
        physical::build_pipeline(plan, &CostProfile::default(), AggRole::Final).expect("valid");
    let n = ops.len();
    let mut results: Vec<Record> = Vec::new();
    for (e, input) in inputs.iter().enumerate() {
        let mut cur = vec![input.clone()];
        for op in &mut ops {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
        // Epoch boundary: watermark + epoch hooks cascade downstream.
        let wm = (e as i64 + 1) * 1_000_000;
        for i in 0..n {
            let mut emitted = Vec::new();
            ops[i].on_watermark(wm, &mut emitted);
            ops[i].on_epoch(&mut emitted);
            for later in ops.iter_mut().take(n).skip(i + 1) {
                let mut next = Vec::new();
                for b in emitted.drain(..) {
                    later.process_batch(b, &mut next);
                }
                emitted = next;
            }
            results.extend(emitted.iter().flat_map(Batch::to_records));
        }
    }
    results.extend(
        physical::drain_windows(&mut ops, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

/// Runs the partitioned flow: every odd row goes through a Partial-role
/// local prefix whose state deltas merge into the Final-role replica; even
/// rows drain straight to the replica.
fn run_partitioned(plan: &LogicalPlan, inputs: &[Batch]) -> Vec<Record> {
    let costs = CostProfile::default();
    let mut local = physical::build_pipeline(plan, &costs, AggRole::Partial).expect("valid");
    let mut replica = physical::build_pipeline(plan, &costs, AggRole::Final).expect("valid");
    let mut results: Vec<Record> = Vec::new();
    for input in inputs {
        let mask: Vec<bool> = (0..input.len()).map(|r| r % 2 == 1).collect();
        let drained_mask: Vec<bool> = mask.iter().map(|b| !b).collect();
        let mut cur = vec![input.select(&mask)];
        for op in &mut local {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        for (stage, op) in local.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                replica[stage].merge_state(delta);
            }
        }
        let mut cur = vec![input.select(&drained_mask)];
        for op in &mut replica {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
    }
    for (stage, op) in local.iter_mut().enumerate() {
        if let Some(delta) = op.take_state_delta() {
            replica[stage].merge_state(delta);
        }
    }
    results.extend(
        physical::drain_windows(&mut replica, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

fn pingmesh_epochs(peer_ip_space: u32) -> Vec<Batch> {
    let mut g = PingmeshGenerator::new(PingmeshConfig {
        peer_ip_space,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| g.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn log_epochs() -> Vec<Batch> {
    let mut g = LogGenerator::new(LogConfig::default());
    (0..EPOCHS)
        .map(|e| g.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn assert_golden(name: &str, rows: &[Record], golden_rows: u64, golden_digest: &str) {
    let d = ExactnessDigest::of_rows(rows);
    assert!(d.rows > 0, "{name}: the run must produce results");
    assert_eq!(
        (d.rows, d.digest.as_str()),
        (golden_rows, golden_digest),
        "{name}: results diverged from the golden fingerprint committed when \
         the batch path was differentially verified against the row oracle"
    );
}

#[test]
fn s2s_probe_matches_golden() {
    let plan = telemetry::queries::s2s_probe();
    let inputs = pingmesh_epochs(20_000);
    assert_golden(
        "S2SProbe/full",
        &run_full(&plan, &inputs),
        GOLDEN_S2S_FULL.0,
        GOLDEN_S2S_FULL.1,
    );
    assert_golden(
        "S2SProbe/partitioned",
        &run_partitioned(&plan, &inputs),
        GOLDEN_S2S_PART.0,
        GOLDEN_S2S_PART.1,
    );
}

#[test]
fn t2t_probe_matches_golden() {
    let (src, dst) = telemetry::queries::t2t_tables(500, 40, &[1]);
    let plan = telemetry::queries::t2t_probe(src, dst);
    let inputs = pingmesh_epochs(500);
    assert_golden(
        "T2TProbe/full",
        &run_full(&plan, &inputs),
        GOLDEN_T2T_FULL.0,
        GOLDEN_T2T_FULL.1,
    );
    assert_golden(
        "T2TProbe/partitioned",
        &run_partitioned(&plan, &inputs),
        GOLDEN_T2T_PART.0,
        GOLDEN_T2T_PART.1,
    );
}

#[test]
fn log_analytics_matches_golden() {
    let plan = telemetry::queries::log_analytics();
    let inputs = log_epochs();
    assert_golden(
        "LogAnalytics/full",
        &run_full(&plan, &inputs),
        GOLDEN_LOG_FULL.0,
        GOLDEN_LOG_FULL.1,
    );
    assert_golden(
        "LogAnalytics/partitioned",
        &run_partitioned(&plan, &inputs),
        GOLDEN_LOG_PART.0,
        GOLDEN_LOG_PART.1,
    );
}

// Golden (rows, FNV-1a digest) pairs, captured from the batch path at the
// point `tests/batch_row_parity.rs` last proved it bit-identical to the
// record-at-a-time execution model.
const GOLDEN_S2S_FULL: (u64, &str) = (31661, "10a8b217ab9d756b");
const GOLDEN_S2S_PART: (u64, &str) = (12837, "ce59bff75094a8c6");
const GOLDEN_T2T_FULL: (u64, &str) = (91, "17ff0fa2046aef8b");
const GOLDEN_T2T_PART: (u64, &str) = (13, "552116446b88a642");
const GOLDEN_LOG_FULL: (u64, &str) = (21405, "00a4f4c90bd38076");
const GOLDEN_LOG_PART: (u64, &str) = (4247, "ec0b687434a7a9d4");
