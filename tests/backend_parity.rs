//! Backend parity: one `DeploymentSpec`, every backend, the same answer.
//!
//! Data-level partitioning is *exact* (paper §VI-D): however records are
//! split between a data source and its stream-processor replica, the merged
//! results equal an unpartitioned run. The unified deployment API makes that
//! testable across execution backends — the deterministic emulator and the
//! threaded live runtime must produce identical result fingerprints for the
//! same workload, plus typed builder errors for invalid specs.

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, DeployError, Deployment, DeploymentBuilder, RunReport};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::strategy::StrategyKind;

fn builder(spec: ScenarioSpec, strategy: StrategyKind, cpu: f64) -> DeploymentBuilder {
    Deployment::builder()
        .workload(spec)
        .strategy(strategy)
        .cpu_budget(cpu)
        .collect_results(true)
}

fn run_on(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    cpu: f64,
    sources: u32,
    backend: BackendKind,
    epochs: u64,
) -> RunReport {
    builder(spec.clone(), strategy, cpu)
        .sources(sources)
        .backend(backend)
        .build()
        .expect("valid spec")
        .run(epochs)
        .expect("run succeeds")
}

fn assert_parity(spec: ScenarioSpec, strategy: StrategyKind, cpu: f64, sources: u32, epochs: u64) {
    let emulated = run_on(&spec, strategy, cpu, sources, BackendKind::Emulated, epochs);
    let live = run_on(&spec, strategy, cpu, sources, BackendKind::Live, epochs);
    let em = emulated.exactness.expect("emulated digest");
    let lv = live.exactness.expect("live digest");
    assert!(em.rows > 0, "the run must produce results");
    assert_eq!(
        em,
        lv,
        "emulated and live merged results must be identical for {} / {}",
        spec.name(),
        strategy.label()
    );
}

#[test]
fn pingmesh_s2s_emulated_equals_live_all_src() {
    assert_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSrc,
        1.0,
        1,
        30,
    );
}

#[test]
fn pingmesh_s2s_emulated_equals_live_under_jarvis_adaptation() {
    // Adaptive load factors differ between backends epoch by epoch; the
    // merged results must not.
    assert_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::Jarvis,
        0.8,
        2,
        30,
    );
}

#[test]
fn log_analytics_emulated_equals_live() {
    assert_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::Jarvis,
        0.8,
        1,
        24,
    );
}

#[test]
fn log_analytics_emulated_equals_live_all_sp() {
    assert_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSp,
        1.0,
        2,
        24,
    );
}

#[test]
fn all_three_backends_accept_one_spec() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    for backend in [
        BackendKind::Emulated,
        BackendKind::Live,
        BackendKind::Convergence,
    ] {
        let report = builder(spec.clone(), StrategyKind::Jarvis, 0.6)
            .backend(backend)
            .build()
            .unwrap()
            .run(25)
            .unwrap();
        assert_eq!(report.backend, backend.label());
        assert_eq!(report.deployed_chain, "W -> F -> G+R");
    }
}

#[test]
fn builder_rejects_zero_sources() {
    let err = builder(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::Jarvis,
        0.5,
    )
    .sources(0)
    .build()
    .unwrap_err();
    assert_eq!(err, DeployError::NoSources);
}

#[test]
fn builder_rejects_invalid_budget_and_load_factors() {
    assert!(matches!(
        builder(
            ScenarioSpec::pingmesh_s2s(Scale::X1),
            StrategyKind::Jarvis,
            -0.5
        )
        .build()
        .unwrap_err(),
        DeployError::InvalidCpuBudget { .. }
    ));
    let err = builder(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSrc,
        0.5,
    )
    .load_factors(vec![1.0, -0.1, 0.5])
    .build()
    .unwrap_err();
    assert_eq!(
        err,
        DeployError::InvalidLoadFactor {
            index: 1,
            value: -0.1
        }
    );
}

#[test]
fn builder_rejects_strategy_backend_mismatch() {
    let err = builder(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::LbDp,
        0.5,
    )
    .backend(BackendKind::Convergence)
    .build()
    .unwrap_err();
    assert_eq!(
        err,
        DeployError::StrategyBackendMismatch {
            strategy: StrategyKind::LbDp,
            backend: BackendKind::Convergence,
        }
    );
}

#[test]
fn run_report_serializes_for_machine_readable_output() {
    let report = run_on(
        &ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSrc,
        1.0,
        1,
        BackendKind::Live,
        8,
    );
    let json = serde_json::to_string_pretty(&report).expect("serialises");
    let back: RunReport = serde_json::from_str(&json).expect("round-trips");
    assert_eq!(back.backend, report.backend);
    assert_eq!(back.exactness, report.exactness);
    assert_eq!(back.results_emitted, report.results_emitted);
    assert_eq!(back.load_factors, report.load_factors);
}
