//! Fault tolerance (paper §IV-E): source failure, checkpoint hand-off to the
//! stream processor, and recovery without re-converging from scratch.

use jarvis::core::calibration::Scale;
use jarvis::core::experiment::{Scenario, ScenarioSpec};
use jarvis::core::strategy::StrategyKind;

#[test]
fn source_failure_hands_window_state_to_sp_and_recovers() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let mut s = Scenario::single_source(spec, StrategyKind::Jarvis, 1.0);

    // Reach steady state with adapted load factors.
    for _ in 0..30 {
        s.block.run_epoch();
    }
    let adapted = s.block.source(0).load_factors();
    let results_before = s.block.sp().results_emitted();

    // Fail the source: its accumulated partial state moves to the SP.
    let ckpt = s.block.fail_source(0);
    assert!(s.block.is_failed(0));

    // The system keeps running; the SP completes checkpointed windows.
    for _ in 0..12 {
        s.block.run_epoch();
    }
    let results_during = s.block.sp().results_emitted();
    assert!(
        results_during > results_before,
        "checkpointed windows must complete at the SP ({results_before} -> {results_during})"
    );

    // Recover: adapted factors are reinstalled, no cold restart.
    s.block.recover_source(0, &ckpt);
    assert!(!s.block.is_failed(0));
    assert_eq!(s.block.source(0).load_factors(), adapted);
    for _ in 0..10 {
        s.block.run_epoch();
    }
    assert!(
        s.block.sp().results_emitted() > results_during,
        "results must keep flowing after recovery"
    );
}

#[test]
fn failed_source_contributes_no_input() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let mut s = Scenario::single_source(spec, StrategyKind::AllSrc, 1.0);
    for _ in 0..25 {
        s.block.run_epoch();
    }
    let input_before = s.block.metrics()[0].input_bytes;
    let _ckpt = s.block.fail_source(0);
    for _ in 0..5 {
        s.block.run_epoch();
    }
    let input_after = s.block.metrics()[0].input_bytes;
    assert_eq!(input_before, input_after, "a dark source ingests nothing");
}

#[test]
fn checkpoint_serialises_for_durable_storage() {
    // Checkpoints must round-trip through serde so they can be written to
    // durable storage between epochs.
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let mut s = Scenario::single_source(spec, StrategyKind::AllSrc, 1.0);
    for _ in 0..3 {
        s.block.run_epoch();
    }
    let ckpt = jarvis::core::checkpoint::snapshot(s.block.source_mut(0));
    let encoded = serde_json::to_string(&ckpt).expect("serialisable");
    let decoded: jarvis::core::checkpoint::Checkpoint =
        serde_json::from_str(&encoded).expect("deserialisable");
    assert_eq!(decoded.load_factors, ckpt.load_factors);
    assert_eq!(decoded.wire_bytes(), ckpt.wire_bytes());
}
