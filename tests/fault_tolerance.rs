//! Fault tolerance (paper §IV-E): source failure, checkpoint hand-off to the
//! stream processor, and recovery without re-converging from scratch. Blocks
//! are built and stepped through the unified deployment API's emulated
//! backend.

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{Deployment, DeploymentSpec, EmulatedBackend};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::strategy::StrategyKind;

fn spec(strategy: StrategyKind, cpu: f64) -> DeploymentSpec {
    Deployment::builder()
        .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
        .strategy(strategy)
        .cpu_budget(cpu)
        .spec()
        .expect("valid deployment")
}

fn prepared(spec: &DeploymentSpec) -> EmulatedBackend {
    let mut be = EmulatedBackend::default();
    be.prepare(spec).expect("block builds");
    be
}

#[test]
fn source_failure_hands_window_state_to_sp_and_recovers() {
    let spec = spec(StrategyKind::Jarvis, 1.0);
    let mut be = prepared(&spec);

    // Reach steady state with adapted load factors.
    for _ in 0..30 {
        be.step(&spec);
    }
    let block = be.block_mut().unwrap();
    let adapted = block.source(0).load_factors();
    let results_before = block.sp().results_emitted();

    // Fail the source: its accumulated partial state moves to the SP.
    let ckpt = block.fail_source(0);
    assert!(block.is_failed(0));

    // The system keeps running; the SP completes checkpointed windows.
    for _ in 0..12 {
        be.step(&spec);
    }
    let block = be.block_mut().unwrap();
    let results_during = block.sp().results_emitted();
    assert!(
        results_during > results_before,
        "checkpointed windows must complete at the SP ({results_before} -> {results_during})"
    );

    // Recover: adapted factors are reinstalled, no cold restart.
    block.recover_source(0, &ckpt);
    assert!(!block.is_failed(0));
    assert_eq!(block.source(0).load_factors(), adapted);
    for _ in 0..10 {
        be.step(&spec);
    }
    let block = be.block_mut().unwrap();
    assert!(
        block.sp().results_emitted() > results_during,
        "results must keep flowing after recovery"
    );
}

#[test]
fn failed_source_contributes_no_input() {
    let spec = spec(StrategyKind::AllSrc, 1.0);
    let mut be = prepared(&spec);
    for _ in 0..25 {
        be.step(&spec);
    }
    let input_before = be.block_mut().unwrap().metrics()[0].input_bytes;
    let _ckpt = be.block_mut().unwrap().fail_source(0);
    for _ in 0..5 {
        be.step(&spec);
    }
    let input_after = be.block_mut().unwrap().metrics()[0].input_bytes;
    assert_eq!(input_before, input_after, "a dark source ingests nothing");
}

#[test]
fn checkpoint_serialises_for_durable_storage() {
    // Checkpoints must round-trip through serde so they can be written to
    // durable storage between epochs.
    let spec = spec(StrategyKind::AllSrc, 1.0);
    let mut be = prepared(&spec);
    for _ in 0..3 {
        be.step(&spec);
    }
    let ckpt = jarvis::core::checkpoint::snapshot(be.block_mut().unwrap().source_mut(0));
    let encoded = serde_json::to_string(&ckpt).expect("serialisable");
    let decoded: jarvis::core::checkpoint::Checkpoint =
        serde_json::from_str(&encoded).expect("deserialisable");
    assert_eq!(decoded.load_factors, ckpt.load_factors);
    assert_eq!(decoded.wire_bytes(), ckpt.wire_bytes());
}
