//! Fault parity: node loss mid-run must not change the answer.
//!
//! Each test boots a 2-node loopback TCP deployment with a seeded
//! `FaultPlan` that severs node 1's link at an epoch boundary, then checks
//! the recovery contract per `on_node_loss` policy:
//!
//! - `Reassign`: the survivor adopts the lost shards from the last acked
//!   checkpoint plus replayed post-checkpoint traffic; the result digest is
//!   **bit-identical** to the fault-free in-process run.
//! - reconnect (grace window): the severed executor re-dials, re-registers
//!   under its old node id, is re-seeded from the checkpoint, and the
//!   digest is again bit-identical.
//! - `Degrade`: the lost shards are dropped and the report advertises the
//!   exact per-shard completeness (acked epochs / epochs sent).

use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, Deployment, OnNodeLoss, RunReport, TransportKind};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::fault::{FaultKind, FaultPlan, FaultTrigger};
use jarvis::core::node::{run_node, NodeConfig, NodeError, NodeSummary};
use jarvis::core::strategy::StrategyKind;

/// Virtual shards on the ring, matching `tests/remote_parity.rs`.
const RING: u32 = 4;
/// Epochs per run; the fault fires at the boundary of `KILL_EPOCH`.
const EPOCHS: u64 = 8;
/// The severed node acks exactly this many epochs before the cut.
const KILL_EPOCH: u64 = 3;

/// Serializes the TCP tests: each allocates an ephemeral port by binding
/// then releasing it, which must not race another test's bind.
fn port_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An ephemeral loopback port that is free right now.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// Spawns `n` executor threads dialling `addr`. With `reconnect` they
/// survive a severed link by re-dialling and re-registering.
fn spawn_nodes(
    addr: &str,
    token: &str,
    n: u32,
    reconnect: bool,
) -> Vec<thread::JoinHandle<Result<NodeSummary, NodeError>>> {
    (0..n)
        .map(|_| {
            let mut config = NodeConfig::new(addr, token);
            config.reconnect = reconnect;
            thread::spawn(move || run_node(&config))
        })
        .collect()
}

/// Severs node 1's link just before the `KILL_EPOCH`-th `EpochEnd` frame:
/// the node has all of epoch `KILL_EPOCH`'s shard traffic but never acks
/// it, so the coordinator detects the loss at that boundary.
fn sever_node_one() -> FaultPlan {
    FaultPlan::single(
        0x5eed_cafe,
        1,
        FaultTrigger::EpochEnd(KILL_EPOCH),
        FaultKind::Sever,
    )
}

fn fault_deployment(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    addr: &str,
    token: &str,
) -> jarvis::core::deploy::DeploymentBuilder {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(addr)
        .auth_token(token)
        .node_timeout(Duration::from_secs(30))
        .liveness_timeout(Duration::from_secs(10))
        .checkpoint_interval(2)
        .fault_plan(sever_node_one())
        .collect_results(true)
}

fn in_process_run(spec: &ScenarioSpec, strategy: StrategyKind) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(4)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(EPOCHS)
        .expect("run succeeds")
}

/// Digest and shard-drain parity against the fault-free in-process run.
fn assert_exact(report: &RunReport, baseline: &RunReport, label: &str) {
    assert_eq!(
        report.exactness.as_ref().expect("digest collected"),
        baseline.exactness.as_ref().expect("digest collected"),
        "{label}: recovered run must be bit-identical to the fault-free run",
    );
    assert_eq!(
        report
            .shard_stats
            .iter()
            .map(|s| s.drained_records)
            .collect::<Vec<_>>(),
        baseline
            .shard_stats
            .iter()
            .map(|s| s.drained_records)
            .collect::<Vec<_>>(),
        "{label}: shard drain shares must survive recovery"
    );
}

/// Kills node 1 under `Reassign`: the survivor adopts its shards and the
/// digest matches the fault-free run bit-for-bit.
fn assert_reassign_parity(spec: ScenarioSpec, strategy: StrategyKind) {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "fault-parity";
    let handles = spawn_nodes(&addr, token, 2, false);
    let report = fault_deployment(&spec, strategy, &addr, token)
        .on_node_loss(OnNodeLoss::Reassign)
        .build()
        .expect("valid TCP spec")
        .run(EPOCHS)
        .expect("run survives the node loss");
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    assert_eq!(
        outcomes.iter().filter(|o| o.is_err()).count(),
        1,
        "exactly the severed node fails: {outcomes:?}"
    );
    let survivor = outcomes
        .iter()
        .find_map(|o| o.as_ref().ok())
        .expect("one node survives");
    assert_eq!(survivor.epochs, EPOCHS, "the survivor acks every epoch");
    assert_eq!(report.incidents.len(), 1, "{:?}", report.incidents);
    let incident = &report.incidents[0];
    assert_eq!(incident.node, 1);
    assert_eq!(incident.epoch, KILL_EPOCH);
    assert_eq!(incident.action, "reassigned");
    assert!(
        incident.replay_bytes > 0,
        "reassignment ships checkpoint + replay bytes"
    );
    assert_eq!(report.replay_bytes, incident.replay_bytes);
    assert!(
        report.shard_stats.iter().all(|s| s.completeness == 1.0),
        "reassignment loses nothing: {:?}",
        report.shard_stats
    );
    let baseline = in_process_run(&spec, strategy);
    assert_exact(&report, &baseline, spec.name());
}

/// Kills node 1 with a reconnect grace window: the node re-dials, is
/// re-seeded from the last acked checkpoint, and the digest still matches.
fn assert_reconnect_parity(spec: ScenarioSpec, strategy: StrategyKind) {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "fault-parity";
    let handles = spawn_nodes(&addr, token, 2, true);
    let report = fault_deployment(&spec, strategy, &addr, token)
        .reconnect_grace(Duration::from_secs(10))
        .build()
        .expect("valid TCP spec")
        .run(EPOCHS)
        .expect("run survives the reconnect");
    let mut reconnects = 0;
    for handle in handles {
        let summary = handle
            .join()
            .expect("node thread")
            .expect("both nodes finish after recovery");
        assert_eq!(summary.epochs, EPOCHS, "every epoch boundary is acked");
        reconnects += summary.reconnects;
    }
    assert_eq!(reconnects, 1, "the severed node re-dialled exactly once");
    assert_eq!(report.incidents.len(), 1, "{:?}", report.incidents);
    let incident = &report.incidents[0];
    assert_eq!(incident.node, 1);
    assert_eq!(incident.epoch, KILL_EPOCH);
    assert_eq!(incident.action, "reconnected");
    assert!(
        incident.replay_bytes > 0,
        "re-seeding ships checkpoint + replay bytes"
    );
    assert!(
        report.shard_stats.iter().all(|s| s.completeness == 1.0),
        "reconnection loses nothing: {:?}",
        report.shard_stats
    );
    let baseline = in_process_run(&spec, strategy);
    assert_exact(&report, &baseline, spec.name());
}

#[test]
fn reassign_keeps_s2s_exact() {
    assert_reassign_parity(ScenarioSpec::pingmesh_s2s(Scale::X1), StrategyKind::AllSp);
}

#[test]
fn reassign_keeps_t2t_exact() {
    assert_reassign_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSp,
    );
}

#[test]
fn reassign_keeps_log_analytics_exact() {
    assert_reassign_parity(ScenarioSpec::log_analytics(Scale::X1), StrategyKind::AllSp);
}

#[test]
fn reconnect_keeps_s2s_exact() {
    assert_reconnect_parity(ScenarioSpec::pingmesh_s2s(Scale::X1), StrategyKind::AllSp);
}

#[test]
fn reconnect_keeps_t2t_exact() {
    assert_reconnect_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSp,
    );
}

#[test]
fn reconnect_keeps_log_analytics_exact() {
    assert_reconnect_parity(ScenarioSpec::log_analytics(Scale::X1), StrategyKind::AllSp);
}

#[test]
fn degrade_reports_exact_completeness() {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "fault-parity";
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let handles = spawn_nodes(&addr, token, 2, false);
    let report = fault_deployment(&spec, StrategyKind::AllSp, &addr, token)
        .on_node_loss(OnNodeLoss::Degrade)
        .build()
        .expect("valid TCP spec")
        .run(EPOCHS)
        .expect("degraded run still completes");
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    assert_eq!(
        outcomes.iter().filter(|o| o.is_err()).count(),
        1,
        "exactly the severed node fails: {outcomes:?}"
    );
    assert_eq!(report.incidents.len(), 1, "{:?}", report.incidents);
    assert_eq!(report.incidents[0].action, "degraded");
    assert_eq!(report.incidents[0].node, 1);
    // The severed node acked KILL_EPOCH of EPOCHS epochs, so every shard it
    // owned advertises exactly that completeness; survivors stay whole.
    let expected = KILL_EPOCH as f64 / EPOCHS as f64;
    let degraded: Vec<_> = report
        .shard_stats
        .iter()
        .enumerate()
        .filter(|(_, s)| s.completeness < 1.0)
        .collect();
    assert!(
        !degraded.is_empty(),
        "the lost shards must be marked incomplete: {:?}",
        report.shard_stats
    );
    for (shard, stat) in &degraded {
        assert!(
            (stat.completeness - expected).abs() < 1e-12,
            "shard {shard}: completeness {} != {expected}",
            stat.completeness
        );
    }
    assert!(
        report.results_emitted > 0,
        "the surviving shards still produce results"
    );
    // Degradation is visible: fewer digest rows than the fault-free run.
    let baseline = in_process_run(&spec, StrategyKind::AllSp);
    let digest = report.exactness.as_ref().expect("digest collected");
    let full = baseline.exactness.as_ref().expect("digest collected");
    assert!(
        digest.rows < full.rows,
        "degraded run must cover fewer rows ({} vs {})",
        digest.rows,
        full.rows
    );
}
