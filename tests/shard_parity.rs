//! Shard parity: the sharded SP runtime is exact at any shard count.
//!
//! The keyed shard partitioner splits every boundary batch (and every
//! shipped `StatePartial`) by group-key hash, so each shard owns a disjoint
//! slice of the key space and the union of shard results must be
//! **bit-identical** to the unsharded run. This suite proves it on all
//! three paper queries, on both executing backends:
//!
//! * **live** (router + shard-worker pool over real channels) — under
//!   All-SP (everything drained: the full flow) and All-Src (everything
//!   pre-aggregated at the sources: partitioned state shipping, where
//!   every `StatePartial` entry must be routed to the shard owning its
//!   key), plus the adaptive Jarvis strategy (mixed flow);
//! * **emulated** (budgeted shard pipelines inside `SpEngine`).
//!
//! Digests at `sp_shards = 2` and `4` must equal `sp_shards = 1`, which is
//! exactly the pre-sharding replica chain.

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, Deployment, ExactnessDigest, RunReport};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::strategy::StrategyKind;

fn run(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    backend: BackendKind,
    shards: u32,
    epochs: u64,
) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(shards)
        .backend(backend)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(epochs)
        .expect("run succeeds")
}

fn assert_shard_parity(
    spec: ScenarioSpec,
    strategy: StrategyKind,
    backend: BackendKind,
    epochs: u64,
) -> RunReport {
    let base = run(&spec, strategy, backend, 1, epochs);
    let digest = base.exactness.clone().expect("digest collected");
    assert!(digest.rows > 0, "the run must produce results");
    let mut sharded4: Option<RunReport> = None;
    for shards in [2u32, 4] {
        let report = run(&spec, strategy, backend, shards, epochs);
        assert_eq!(report.sp_shards, u64::from(shards));
        assert_eq!(
            report.exactness.as_ref().expect("digest collected"),
            &digest,
            "{} / {} / {}: {shards}-shard results must be bit-identical to unsharded",
            spec.name(),
            strategy.label(),
            backend.label(),
        );
        if shards == 4 {
            sharded4 = Some(report);
        }
    }
    sharded4.expect("4-shard run executed")
}

fn digest_of(r: &RunReport) -> &ExactnessDigest {
    r.exactness.as_ref().expect("digest collected")
}

// ---- live backend: full flow (everything drained to the SP) ----

#[test]
fn s2s_live_full_sharded_equals_unsharded() {
    let r = assert_shard_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Live,
        10,
    );
    // With everything drained, the partitioner must actually spread load.
    let busy = r
        .shard_stats
        .iter()
        .filter(|s| s.drained_records > 0)
        .count();
    assert!(
        busy > 1,
        "keys must spread over shards: {:?}",
        r.shard_stats
    );
}

#[test]
fn t2t_live_full_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSp,
        BackendKind::Live,
        10,
    );
}

#[test]
fn log_live_full_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Live,
        10,
    );
}

// ---- live backend: partitioned state shipping (sources pre-aggregate and
// ship StatePartial entries, which must merge on the owning shard) ----

#[test]
fn s2s_live_partitioned_state_sharded_equals_unsharded() {
    let r = assert_shard_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Live,
        10,
    );
    assert_eq!(r.drained_records, 0, "All-Src drains no rows");
    assert!(r.state_deltas > 0, "state must ship");
}

#[test]
fn t2t_live_partitioned_state_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSrc,
        BackendKind::Live,
        10,
    );
}

#[test]
fn log_live_partitioned_state_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Live,
        10,
    );
}

// ---- live backend: adaptive mixed flow (drained rows AND shipped state
// interleave while the runtime moves load factors) ----

#[test]
fn s2s_live_adaptive_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::Jarvis,
        BackendKind::Live,
        12,
    );
}

// ---- emulated backend: budgeted shard pipelines inside SpEngine ----

#[test]
fn s2s_emulated_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Emulated,
        20,
    );
}

#[test]
fn t2t_emulated_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSp,
        BackendKind::Emulated,
        20,
    );
}

#[test]
fn log_emulated_sharded_equals_unsharded() {
    assert_shard_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Emulated,
        20,
    );
}

#[test]
fn sharding_does_not_change_cross_backend_parity() {
    // The PR-1 invariant (emulated ≡ live) must hold under sharding too.
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let em = run(&spec, StrategyKind::AllSrc, BackendKind::Emulated, 4, 16);
    let lv = run(&spec, StrategyKind::AllSrc, BackendKind::Live, 4, 16);
    assert_eq!(digest_of(&em), digest_of(&lv));
}
