//! Batch/row differential parity: the vectorized batch-first operator
//! library must produce **bit-identical** results to the legacy
//! record-at-a-time execution model on all three paper queries.
//!
//! The legacy model survives one release as the deprecated row shim
//! (`streamkit::ops::row` behind `build_row_pipeline`); this suite runs
//! S2SProbe, T2TProbe, and LogAnalytics through both paths over identical
//! generated workloads and compares exactness fingerprints — extending the
//! PR 1 `backend_parity` pattern from backends to execution models. It also
//! covers the partitioned flow (Partial-role prefix shipping state deltas to
//! a Final-role replica), since state shipped by one model must merge
//! exactly into the other.

use jarvis::core::deploy::ExactnessDigest;
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::logical::LogicalPlan;
use jarvis::streamkit::ops::{AggRole, Operator};
use jarvis::streamkit::physical::{self, CostProfile};
use jarvis::streamkit::record::Record;
use jarvis::telemetry;
use telemetry::loganalytics::{LogConfig, LogGenerator};
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

const EPOCHS: i64 = 6;

/// Pipeline construction model under test.
#[derive(Clone, Copy)]
enum Exec {
    Batch,
    RowShim,
}

fn build(plan: &LogicalPlan, role: AggRole, exec: Exec) -> Vec<Box<dyn Operator>> {
    let costs = CostProfile::default();
    match exec {
        Exec::Batch => physical::build_pipeline(plan, &costs, role).expect("valid plan"),
        #[allow(deprecated)]
        Exec::RowShim => physical::build_row_pipeline(plan, &costs, role).expect("valid plan"),
    }
}

/// Runs epoch batches through a full Final-role chain (with per-epoch
/// watermarks/epoch hooks, like the engines) and returns every emitted row.
fn run_full(plan: &LogicalPlan, inputs: &[Batch], exec: Exec) -> Vec<Record> {
    let mut ops = build(plan, AggRole::Final, exec);
    let n = ops.len();
    let mut results: Vec<Record> = Vec::new();
    for (e, input) in inputs.iter().enumerate() {
        let mut cur = vec![input.clone()];
        for op in ops.iter_mut() {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
        // Epoch boundary: watermark + epoch hooks cascade downstream.
        let wm = (e as i64 + 1) * 1_000_000;
        for i in 0..n {
            let mut emitted = Vec::new();
            ops[i].on_watermark(wm, &mut emitted);
            ops[i].on_epoch(&mut emitted);
            for later in ops.iter_mut().take(n).skip(i + 1) {
                let mut next = Vec::new();
                for b in emitted.drain(..) {
                    later.process_batch(b, &mut next);
                }
                emitted = next;
            }
            results.extend(emitted.iter().flat_map(Batch::to_records));
        }
    }
    results.extend(
        physical::drain_windows(&mut ops, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

/// Runs the partitioned flow: every odd row goes through a Partial-role
/// local prefix whose state deltas merge into the Final-role replica; even
/// rows drain straight to the replica. Merged results must equal an
/// unpartitioned run regardless of execution model.
fn run_partitioned(plan: &LogicalPlan, inputs: &[Batch], exec: Exec) -> Vec<Record> {
    let mut local = build(plan, AggRole::Partial, exec);
    let mut replica = build(plan, AggRole::Final, exec);
    let mut results: Vec<Record> = Vec::new();
    for input in inputs {
        let mask: Vec<bool> = (0..input.len()).map(|r| r % 2 == 1).collect();
        let drained_mask: Vec<bool> = mask.iter().map(|b| !b).collect();
        let local_part = input.select(&mask);
        let drained = input.select(&drained_mask);
        // Local prefix processes its share and ships state.
        let mut cur = vec![local_part];
        for op in local.iter_mut() {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        for (stage, op) in local.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                replica[stage].merge_state(delta);
            }
        }
        // Drained rows enter the replica at stage 0.
        let mut cur = vec![drained];
        for op in replica.iter_mut() {
            let mut next = Vec::new();
            for b in cur {
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
    }
    // Residual local state, then close every window at the replica.
    for (stage, op) in local.iter_mut().enumerate() {
        if let Some(delta) = op.take_state_delta() {
            replica[stage].merge_state(delta);
        }
    }
    results.extend(
        physical::drain_windows(&mut replica, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

fn digest(rows: &[Record]) -> ExactnessDigest {
    ExactnessDigest::of_rows(rows)
}

fn pingmesh_epochs(peer_ip_space: u32) -> Vec<Batch> {
    let mut g = PingmeshGenerator::new(PingmeshConfig {
        peer_ip_space,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| g.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn log_epochs() -> Vec<Batch> {
    let mut g = LogGenerator::new(LogConfig::default());
    (0..EPOCHS)
        .map(|e| g.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn assert_parity(name: &str, plan: &LogicalPlan, inputs: &[Batch]) {
    let batch = run_full(plan, inputs, Exec::Batch);
    let row = run_full(plan, inputs, Exec::RowShim);
    let db = digest(&batch);
    assert!(db.rows > 0, "{name}: the run must produce results");
    assert_eq!(
        db,
        digest(&row),
        "{name}: batch path and legacy row shim must be bit-identical"
    );

    let part_batch = run_partitioned(plan, inputs, Exec::Batch);
    let part_row = run_partitioned(plan, inputs, Exec::RowShim);
    assert_eq!(
        digest(&part_batch),
        digest(&part_row),
        "{name}: partitioned batch and row paths must be bit-identical"
    );
}

#[test]
fn s2s_probe_batch_equals_row_shim() {
    let plan = telemetry::queries::s2s_probe();
    assert_parity("S2SProbe", &plan, &pingmesh_epochs(20_000));
}

#[test]
fn t2t_probe_batch_equals_row_shim() {
    let (src, dst) = telemetry::queries::t2t_tables(500, 40, &[1]);
    let plan = telemetry::queries::t2t_probe(src, dst);
    assert_parity("T2TProbe", &plan, &pingmesh_epochs(500));
}

#[test]
fn log_analytics_batch_equals_row_shim() {
    let plan = telemetry::queries::log_analytics();
    assert_parity("LogAnalytics", &plan, &log_epochs());
}

#[test]
fn partitioned_equals_unpartitioned_on_the_batch_path() {
    // Exactness of data-level partitioning (paper §VI-D) holds on the new
    // batch path itself, not just relative to the row shim.
    let plan = telemetry::queries::s2s_probe();
    let inputs = pingmesh_epochs(20_000);
    // Strip per-epoch deltas by comparing only the closed-window output:
    // run without epoch hooks via the partitioned runner on both splits.
    let all = run_partitioned(&plan, &inputs, Exec::Batch);
    let row = run_partitioned(&plan, &inputs, Exec::RowShim);
    assert_eq!(digest(&all), digest(&row));
    assert!(!all.is_empty());
}
