//! Property tests for the multi-node SP transport: the `NetPayload` shard
//! variants' wire codec (encode ∘ decode = id, including dictionary pages
//! and `Opt` validity), and the hash ring's shard → node assignment (total,
//! contiguous, and node-count-independent for keys).

use proptest::prelude::*;

use jarvis::core::engine::netwire::{decode_shard_payload, encode_shard_payload};
use jarvis::core::engine::NetPayload;
use jarvis::streamkit::agg::AggState;
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::ops::{GroupPartialEntry, StatePartial};
use jarvis::streamkit::record::Record;
use jarvis::streamkit::schema::{DataType, Field, Schema, SchemaRef};
use jarvis::streamkit::shard::{node_of_shard, shards_of_node};
use jarvis::streamkit::value::Value;

fn schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("tenant", DataType::Str),
        Field::new("bucket", DataType::I64),
        Field::new("load", DataType::F64),
    ])
}

/// Rows over a deliberately small tenant pool so `dict_encode` has dense
/// pages to build, with nulls (tenant code 5 / `load_null`) to exercise
/// `Opt` validity.
fn row_strategy() -> impl Strategy<Value = (i64, u8, i64, f64, bool)> {
    (
        0i64..10_000,
        0u8..6,
        -50i64..50,
        -1e6f64..1e6,
        any::<bool>(),
    )
}

proptest! {
    /// ShardBatch payloads survive the wire byte-identically — plain string
    /// columns, dictionary pages, and null validity alike.
    #[test]
    fn shard_batch_wire_round_trips(
        rows in proptest::collection::vec(row_strategy(), 0..80),
        dict in any::<bool>(),
        shard in 0u32..64,
        epoch in 0u64..1000,
        source in 0u32..8,
    ) {
        let recs: Vec<Record> = rows
            .iter()
            .map(|(ts, tenant, bucket, load, load_null)| {
                Record::new(*ts, vec![
                    if *tenant == 5 {
                        Value::Null
                    } else {
                        Value::str(format!("tenant-{tenant}"))
                    },
                    Value::I64(*bucket),
                    if *load_null { Value::Null } else { Value::F64(*load) },
                ])
            })
            .collect();
        let mut batch = Batch::from_records(schema(), &recs).unwrap();
        if dict {
            let _ = batch.dict_encode(16);
        }
        let payload = NetPayload::ShardBatch { shard, epoch, source, rel: 0, batch };
        let wire = encode_shard_payload(&payload);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        prop_assert_eq!(back, payload);
    }

    /// ShardState payloads (split `StatePartial`s) survive the wire.
    #[test]
    fn shard_state_wire_round_trips(
        entries in proptest::collection::vec(
            (0i64..100, 0u64..50, -1e3f64..1e3, 1u64..1000), 0..40),
        shard in 0u32..64,
        epoch in 0u64..1000,
    ) {
        let entries: Vec<GroupPartialEntry> = entries
            .iter()
            .map(|(win, key, sum, count)| GroupPartialEntry {
                window_start: win * 10_000_000,
                key: vec![Value::str(format!("k{key}")), Value::U64(*key)],
                states: vec![
                    AggState::Count(*count),
                    AggState::Sum(*sum),
                    AggState::Avg { sum: *sum, count: *count },
                ],
            })
            .collect();
        let payload = NetPayload::ShardState {
            shard,
            epoch,
            source: 0,
            rel: 0,
            delta: StatePartial::Group(entries),
        };
        let wire = encode_shard_payload(&payload);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        prop_assert_eq!(back, payload);
    }

    /// The ring assignment is total: for every node count, every shard is
    /// owned by exactly one node, `node_of_shard` inverts `shards_of_node`,
    /// and slices are contiguous with sizes differing by at most one.
    #[test]
    fn node_assignment_is_total_and_stable(n_shards in 1usize..=64) {
        for n_nodes in 1usize..=8 {
            let n_nodes = n_nodes.min(n_shards);
            let mut owner = vec![usize::MAX; n_shards];
            let mut prev_end = 0usize;
            for node in 0..n_nodes {
                let slice = shards_of_node(node, n_shards, n_nodes);
                prop_assert_eq!(slice.start, prev_end, "slices must be contiguous");
                prev_end = slice.end;
                for s in slice {
                    prop_assert_eq!(owner[s], usize::MAX, "shard owned twice");
                    owner[s] = node;
                }
            }
            prop_assert_eq!(prev_end, n_shards, "slices must cover the ring");
            for (s, &node) in owner.iter().enumerate() {
                prop_assert_eq!(node_of_shard(s, n_shards, n_nodes), node);
            }
            let sizes: Vec<usize> = (0..n_nodes)
                .map(|n| shards_of_node(n, n_shards, n_nodes).len())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(max - min <= 1, "slices must be balanced: {:?}", sizes);
            prop_assert!(*min >= 1, "no node may own an empty slice");
        }
    }
}
