//! Property tests for the multi-node SP transport: the `NetPayload` shard
//! variants' wire codec (encode ∘ decode = id, including dictionary pages
//! and `Opt` validity), and the hash ring's shard → node assignment (total,
//! contiguous, and node-count-independent for keys).

use proptest::prelude::*;

use jarvis::core::engine::netwire::{decode_shard_payload, encode_shard_payload};
use jarvis::core::engine::NetPayload;
use jarvis::streamkit::agg::AggState;
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::ops::{GroupPartialEntry, StatePartial};
use jarvis::streamkit::record::Record;
use jarvis::streamkit::schema::{DataType, Field, Schema, SchemaRef};
use jarvis::streamkit::shard::{node_of_shard, shards_of_node};
use jarvis::streamkit::value::Value;

fn schema() -> SchemaRef {
    Schema::new(vec![
        Field::new("tenant", DataType::Str),
        Field::new("bucket", DataType::I64),
        Field::new("load", DataType::F64),
    ])
}

/// Rows over a deliberately small tenant pool so `dict_encode` has dense
/// pages to build, with nulls (tenant code 5 / `load_null`) to exercise
/// `Opt` validity.
fn row_strategy() -> impl Strategy<Value = (i64, u8, i64, f64, bool)> {
    (
        0i64..10_000,
        0u8..6,
        -50i64..50,
        -1e6f64..1e6,
        any::<bool>(),
    )
}

proptest! {
    /// ShardBatch payloads survive the wire byte-identically — plain string
    /// columns, dictionary pages, and null validity alike.
    #[test]
    fn shard_batch_wire_round_trips(
        rows in proptest::collection::vec(row_strategy(), 0..80),
        dict in any::<bool>(),
        shard in 0u32..64,
        epoch in 0u64..1000,
        source in 0u32..8,
    ) {
        let recs: Vec<Record> = rows
            .iter()
            .map(|(ts, tenant, bucket, load, load_null)| {
                Record::new(*ts, vec![
                    if *tenant == 5 {
                        Value::Null
                    } else {
                        Value::str(format!("tenant-{tenant}"))
                    },
                    Value::I64(*bucket),
                    if *load_null { Value::Null } else { Value::F64(*load) },
                ])
            })
            .collect();
        let mut batch = Batch::from_records(schema(), &recs).unwrap();
        if dict {
            let _ = batch.dict_encode(16);
        }
        let payload = NetPayload::ShardBatch { shard, epoch, source, rel: 0, batch };
        let wire = encode_shard_payload(&payload);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        prop_assert_eq!(back, payload);
    }

    /// ShardState payloads (split `StatePartial`s) survive the wire.
    #[test]
    fn shard_state_wire_round_trips(
        entries in proptest::collection::vec(
            (0i64..100, 0u64..50, -1e3f64..1e3, 1u64..1000), 0..40),
        shard in 0u32..64,
        epoch in 0u64..1000,
    ) {
        let entries: Vec<GroupPartialEntry> = entries
            .iter()
            .map(|(win, key, sum, count)| GroupPartialEntry {
                window_start: win * 10_000_000,
                key: vec![Value::str(format!("k{key}")), Value::U64(*key)],
                states: vec![
                    AggState::Count(*count),
                    AggState::Sum(*sum),
                    AggState::Avg { sum: *sum, count: *count },
                ],
            })
            .collect();
        let payload = NetPayload::ShardState {
            shard,
            epoch,
            source: 0,
            rel: 0,
            delta: StatePartial::Group(entries),
        };
        let wire = encode_shard_payload(&payload);
        let back = decode_shard_payload(wire, &[schema()]).unwrap();
        prop_assert_eq!(back, payload);
    }

    /// The ring assignment is total: for every node count, every shard is
    /// owned by exactly one node, `node_of_shard` inverts `shards_of_node`,
    /// and slices are contiguous with sizes differing by at most one.
    #[test]
    fn node_assignment_is_total_and_stable(n_shards in 1usize..=64) {
        for n_nodes in 1usize..=8 {
            let n_nodes = n_nodes.min(n_shards);
            let mut owner = vec![usize::MAX; n_shards];
            let mut prev_end = 0usize;
            for node in 0..n_nodes {
                let slice = shards_of_node(node, n_shards, n_nodes);
                prop_assert_eq!(slice.start, prev_end, "slices must be contiguous");
                prev_end = slice.end;
                for s in slice {
                    prop_assert_eq!(owner[s], usize::MAX, "shard owned twice");
                    owner[s] = node;
                }
            }
            prop_assert_eq!(prev_end, n_shards, "slices must cover the ring");
            for (s, &node) in owner.iter().enumerate() {
                prop_assert_eq!(node_of_shard(s, n_shards, n_nodes), node);
            }
            let sizes: Vec<usize> = (0..n_nodes)
                .map(|n| shards_of_node(n, n_shards, n_nodes).len())
                .collect();
            let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            prop_assert!(max - min <= 1, "slices must be balanced: {:?}", sizes);
            prop_assert!(*min >= 1, "no node may own an empty slice");
        }
    }
}

// ---- transport frame hardening (PR 6) ----
//
// The TCP transport wraps these same `netwire` envelopes in a framed
// header (magic, protocol version, length, CRC32 of the body). Corruption
// anywhere must surface as a typed error — or, where a bit-flip happens to
// produce another *valid* frame (e.g. the kind byte flipping to a
// different legal tag), at least never as the original frame.

use jarvis::core::engine::transport::{
    decode_frame, encode_frame, FrameKind, FrameReader, TransportError, HEADER_LEN,
};

/// All twelve legal wire tags (the `kind_tag in 1u8..=12` draws below).
fn kind_of(tag: u8) -> FrameKind {
    FrameKind::from_u8(tag).expect("legal tag range")
}

proptest! {
    /// encode ∘ decode = id for every kind and body, and the consumed count
    /// is exact.
    #[test]
    fn frames_round_trip(
        kind_tag in 1u8..=12,
        body in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let kind = kind_of(kind_tag);
        let frame = encode_frame(kind, &body);
        prop_assert_eq!(frame.len(), HEADER_LEN + body.len());
        let (k, b, consumed) = decode_frame(&frame).unwrap();
        prop_assert_eq!(k, kind);
        prop_assert_eq!(&b[..], &body[..]);
        prop_assert_eq!(consumed, frame.len());
    }

    /// A single bit-flip in the header never yields the original frame:
    /// magic, version, kind, and length corruption each produce a typed
    /// error (or a detectably different frame, when the flip lands on a
    /// field value that is still legal).
    #[test]
    fn corrupt_headers_never_pass_as_the_original(
        kind_tag in 1u8..=12,
        body in proptest::collection::vec(any::<u8>(), 0..256),
        byte in 0usize..HEADER_LEN,
        bit in 0u8..8,
    ) {
        let kind = kind_of(kind_tag);
        let frame = encode_frame(kind, &body);
        let mut corrupt = frame.to_vec();
        corrupt[byte] ^= 1 << bit;
        match decode_frame(&corrupt) {
            // Every header field is covered by a typed error...
            Err(
                TransportError::BadMagic { .. }
                | TransportError::VersionMismatch { .. }
                | TransportError::BadKind { .. }
                | TransportError::CrcMismatch { .. }
                | TransportError::Truncated { .. }
                | TransportError::Oversized { .. },
            ) => {}
            Err(other) => prop_assert!(false, "unexpected error {other:?}"),
            // ...except a kind-byte flip onto another legal tag (the CRC
            // covers the body only): then the decoded frame must differ.
            Ok((k, b, _)) => {
                prop_assert!(
                    k != kind || b[..] != body[..],
                    "corrupted header decoded as the original frame"
                );
            }
        }
    }

    /// Any single bit-flip in the body is caught by the CRC.
    #[test]
    fn corrupt_bodies_fail_the_crc(
        kind_tag in 1u8..=12,
        body in proptest::collection::vec(any::<u8>(), 1..256),
        flip in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let kind = kind_of(kind_tag);
        let frame = encode_frame(kind, &body);
        let mut corrupt = frame.to_vec();
        let at = HEADER_LEN + flip % body.len();
        corrupt[at] ^= 1 << bit;
        prop_assert!(matches!(
            decode_frame(&corrupt),
            Err(TransportError::CrcMismatch { .. })
        ));
    }

    /// A stream cut mid-frame is a `Truncated` error, never a short frame;
    /// a stream cut exactly on a frame boundary is a clean close. Frames
    /// before the cut still decode.
    #[test]
    fn truncated_streams_are_detected(
        bodies in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut stream = Vec::new();
        let mut boundaries = vec![0usize];
        for body in &bodies {
            stream.extend_from_slice(&encode_frame(FrameKind::Shard, body));
            boundaries.push(stream.len());
        }
        let cut = (stream.len() as f64 * cut_frac) as usize;
        let mut reader = FrameReader::new(&stream[..cut]);
        let mut frames = Vec::new();
        let err = loop {
            match reader.read_frame() {
                Ok(frame) => frames.push(frame),
                Err(e) => break e,
            }
        };
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(frames.len(), whole, "whole frames before the cut decode");
        for (i, (kind, body)) in frames.iter().enumerate() {
            prop_assert_eq!(*kind, FrameKind::Shard);
            prop_assert_eq!(&body[..], &bodies[i][..]);
        }
        if boundaries.contains(&cut) {
            prop_assert!(
                matches!(err, TransportError::Closed),
                "a cut on a frame boundary is a clean close, got {:?}", err
            );
        } else {
            prop_assert!(
                matches!(err, TransportError::Truncated { .. }),
                "a mid-frame cut must be Truncated, got {:?}", err
            );
        }
    }

    /// A frame from a future protocol version is a `VersionMismatch`.
    #[test]
    fn future_versions_are_rejected(
        body in proptest::collection::vec(any::<u8>(), 0..64),
        bump in 1u16..100,
    ) {
        let frame = encode_frame(FrameKind::Shard, &body);
        let mut next = frame.to_vec();
        let v = (u16::from_le_bytes([next[4], next[5]]) + bump).to_le_bytes();
        next[4] = v[0];
        next[5] = v[1];
        prop_assert!(matches!(
            decode_frame(&next),
            Err(TransportError::VersionMismatch { .. })
        ));
    }
}

// ---- persistent dictionary deltas (PR 9) ----
//
// Cross-epoch dictionary pages ship as `DictDelta` tails against a
// receiver-side mirror. The contract: append-only growth reassembles
// bit-identically and never remaps a code, a delta applied out of order is
// a typed error (the mirror stays unpoisoned), and corruption anywhere in a
// delta-aware frame is a typed error or a detectably different payload —
// never the original frame with a silently wrong dictionary.

use jarvis::core::engine::netwire::{decode_shard_payload_with, encode_shard_payload_with};
use jarvis::streamkit::batch::{Column, DictRegistry, DictVersions, StreamDict};
use jarvis::streamkit::error::Error;

fn dict_schema() -> SchemaRef {
    Schema::new(vec![Field::new("tenant", DataType::Str)])
}

proptest! {
    /// Any entry stream, cut into arbitrary delta batches, reassembles on a
    /// mirror with the same version and entry-for-entry identical codes.
    #[test]
    fn dict_deltas_reassemble_append_only(
        entries in proptest::collection::vec("[a-z]{1,12}", 1..60),
        cuts in proptest::collection::vec(1usize..8, 1..12),
    ) {
        let mut source = StreamDict::new();
        let mut mirror = StreamDict::new();
        let mut pending = entries.iter();
        let sync = |source: &StreamDict, mirror: &mut StreamDict| {
            let delta = source.delta_since(mirror.version());
            assert_eq!(delta.base, mirror.version());
            mirror.apply_delta(&delta).expect("in-order deltas apply");
        };
        for cut in cuts {
            let before = source.version();
            for e in pending.by_ref().take(cut) {
                source.intern(e);
            }
            prop_assert!(source.version() >= before, "interning never shrinks");
            sync(&source, &mut mirror);
        }
        for e in pending {
            source.intern(e);
        }
        sync(&source, &mut mirror);
        prop_assert_eq!(mirror.version(), source.version());
        for code in 0..source.len() as u32 {
            prop_assert_eq!(mirror.get(code), source.get(code), "codes are never remapped");
        }
    }

    /// Skipping a delta (or replaying a stale one) is a version-mismatch
    /// error, and the mirror is left exactly where it was.
    #[test]
    fn out_of_order_deltas_are_rejected(
        first in proptest::collection::vec("[a-z]{1,8}", 1..10),
        second in proptest::collection::vec("[A-Z]{1,8}", 1..10),
    ) {
        let mut source = StreamDict::new();
        for e in &first {
            source.intern(e);
        }
        let d1 = source.delta_since(0);
        let base2 = source.version();
        for e in &second {
            source.intern(e);
        }
        // The [A-Z] pool is disjoint from the [a-z] first batch, so the
        // second batch always appends at least one novel entry.
        prop_assert!(source.version() > base2);
        let d2 = source.delta_since(base2);

        let mut mirror = StreamDict::new();
        prop_assert!(matches!(mirror.apply_delta(&d2), Err(Error::Decode(_))));
        prop_assert_eq!(mirror.version(), 0, "a rejected delta must not move the mirror");
        mirror.apply_delta(&d1).unwrap();
        prop_assert!(
            matches!(mirror.apply_delta(&d1), Err(Error::Decode(_))),
            "replaying a stale delta is a version mismatch, not a silent no-op"
        );
        prop_assert_eq!(mirror.version(), d1.entries.len() as u32);
        mirror.apply_delta(&d2).unwrap();
        prop_assert_eq!(mirror.version(), source.version());
    }

    /// A delta-aware ShardBatch frame round-trips through a registry, and
    /// any single bit-flip decodes to a typed error or a payload that
    /// differs from the original — never the original with a corrupt page.
    #[test]
    fn delta_frames_round_trip_and_corruption_is_detected(
        tenants in proptest::collection::vec(0u8..12, 1..40),
        corrupt_one in any::<bool>(),
        at in 0usize..100_000,
        bit in 0u8..8,
    ) {
        let mut stream = StreamDict::new();
        let codes: Vec<u32> = tenants
            .iter()
            .map(|t| stream.intern(&format!("tenant-{t}")))
            .collect();
        let batch = Batch {
            schema: dict_schema(),
            timestamps: (0..tenants.len() as i64).collect(),
            columns: vec![Column::Dict {
                codes,
                dict: stream.snapshot(),
            }],
        };
        let payload = NetPayload::ShardBatch {
            shard: 3,
            epoch: 1,
            source: 0,
            rel: 0,
            batch,
        };
        let mut link = DictVersions::new();
        let wire = encode_shard_payload_with(&payload, &mut link);

        let mut registry = DictRegistry::new();
        if corrupt_one {
            let mut corrupt = wire.to_vec();
            let at = at % corrupt.len();
            corrupt[at] ^= 1 << bit;
            match decode_shard_payload_with(corrupt.into(), &[dict_schema()], &mut registry) {
                Err(_) => {}
                Ok(back) => prop_assert!(
                    back != payload,
                    "a bit-flip at byte {} decoded as the original frame",
                    at
                ),
            }
        } else {
            let back = decode_shard_payload_with(wire, &[dict_schema()], &mut registry).unwrap();
            prop_assert_eq!(back, payload);
        }
    }
}
