//! Node parity: the multi-node SP tier is exact at any node count.
//!
//! The fixed hash ring of `sp_shards` virtual shards is the exactness
//! anchor: the key → shard mapping never depends on the node count, nodes
//! own contiguous ring slices, and remote-shard traffic (keyed sub-batches
//! and split `StatePartial`s) crosses nodes as `NetPayload::ShardBatch` /
//! `ShardState` payloads — serialized bytes on the live backend. The union
//! of results over nodes must therefore be **bit-identical** to the
//! single-node run. This suite proves 1 ≡ 2 ≡ 4 nodes on a 4-shard ring,
//! on all three paper queries, on both executing backends, under:
//!
//! * **All-SP** (everything drained: the full flow, where the dispatcher
//!   partitions raw row traffic over the ring);
//! * **All-Src** (everything pre-aggregated at the sources: partitioned
//!   state shipping, where every `StatePartial` entry must reach the node
//!   owning its key's shard);
//! * **Jarvis** (adaptive mixed flow: drained rows and shipped state
//!   interleave while the runtime moves load factors).
//!
//! Cross-node shipping cost is visible and sane: `shard_stats` /
//! `node_stats` wire bytes are zero on one node, positive on many, and a
//! shard's drain share never depends on where it lives.

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, Deployment, ExactnessDigest, RunReport};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::strategy::StrategyKind;

/// Virtual shards on the ring for every run — fixed, so node counts only
/// move shard placement.
const RING: u32 = 4;

fn run(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    backend: BackendKind,
    nodes: u32,
    epochs: u64,
) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(nodes)
        .backend(backend)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(epochs)
        .expect("run succeeds")
}

fn assert_node_parity(
    spec: ScenarioSpec,
    strategy: StrategyKind,
    backend: BackendKind,
    epochs: u64,
) -> RunReport {
    let base = run(&spec, strategy, backend, 1, epochs);
    let digest = base.exactness.clone().expect("digest collected");
    assert!(digest.rows > 0, "the run must produce results");
    assert_eq!(base.sp_nodes, 1);
    assert_eq!(base.node_stats.len(), 1, "one node, one stat row");
    assert_eq!(
        base.shard_stats
            .iter()
            .map(|s| s.wire_bytes_out)
            .sum::<u64>(),
        0,
        "a single-node SP never ships shard traffic over a link"
    );
    let mut four: Option<RunReport> = None;
    for nodes in [2u32, 4] {
        let report = run(&spec, strategy, backend, nodes, epochs);
        assert_eq!(report.sp_nodes, u64::from(nodes));
        assert_eq!(report.node_stats.len(), nodes as usize);
        assert_eq!(
            report.exactness.as_ref().expect("digest collected"),
            &digest,
            "{} / {} / {}: {nodes}-node results must be bit-identical to single-node",
            spec.name(),
            strategy.label(),
            backend.label(),
        );
        // The ring is fixed: a shard's drain share is placement-independent.
        assert_eq!(
            report
                .shard_stats
                .iter()
                .map(|s| s.drained_records)
                .collect::<Vec<_>>(),
            base.shard_stats
                .iter()
                .map(|s| s.drained_records)
                .collect::<Vec<_>>(),
            "shard drain shares must not depend on node count"
        );
        // Node rows roll the owned shards up.
        assert_eq!(
            report
                .node_stats
                .iter()
                .map(|n| n.drained_records)
                .sum::<u64>(),
            report
                .shard_stats
                .iter()
                .map(|s| s.drained_records)
                .sum::<u64>(),
        );
        if nodes == 4 {
            four = Some(report);
        }
    }
    four.expect("4-node run executed")
}

fn digest_of(r: &RunReport) -> &ExactnessDigest {
    r.exactness.as_ref().expect("digest collected")
}

// ---- live backend: full flow (everything drained to the SP) ----

#[test]
fn s2s_live_full_nodes_equal_single() {
    let r = assert_node_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Live,
        8,
    );
    // With everything drained and two ingress nodes, remote slices must be
    // fed over the links and the shipping charged.
    assert!(
        r.shard_stats.iter().map(|s| s.wire_bytes_out).sum::<u64>() > 0,
        "cross-node shipping must be visible: {:?}",
        r.shard_stats
    );
    assert!(
        r.node_stats.iter().any(|n| n.wire_bytes_out > 0),
        "some ingress must ship remotely: {:?}",
        r.node_stats
    );
}

#[test]
fn t2t_live_full_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSp,
        BackendKind::Live,
        8,
    );
}

#[test]
fn log_live_full_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Live,
        8,
    );
}

#[test]
fn log_live_dict_pages_ship_as_deltas_not_per_frame() {
    // LogAnalytics cross-node frames are post-parse dictionary batches.
    // With persistent parse dicts the tenant/stat pages cross each link
    // once (then resume as near-empty deltas), so the marginal wire cost of
    // the second half of a run must be strictly below the first half, which
    // paid the first-contact pages and the interning ramp. Wire charges are
    // deterministic byte counts, so this is a stable assertion, not a
    // timing one.
    let spec = ScenarioSpec::log_analytics(Scale::X1);
    let wire_of = |epochs: u64| -> u64 {
        run(&spec, StrategyKind::AllSp, BackendKind::Live, 2, epochs)
            .shard_stats
            .iter()
            .map(|s| s.wire_bytes_out)
            .sum()
    };
    let half = wire_of(4);
    let full = wire_of(8);
    assert!(half > 0, "two-node LogAnalytics must ship shard traffic");
    assert!(
        full - half < half,
        "late epochs must ride dictionary deltas: first 4 epochs {half} B, \
         next 4 epochs {} B",
        full - half
    );
}

// ---- live backend: partitioned state shipping (sources pre-aggregate and
// ship StatePartial entries, which must merge on the node owning each
// entry's shard) ----

#[test]
fn s2s_live_partitioned_state_nodes_equal_single() {
    let r = assert_node_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Live,
        8,
    );
    assert_eq!(r.drained_records, 0, "All-Src drains no rows");
    assert!(r.state_deltas > 0, "state must ship");
}

#[test]
fn t2t_live_partitioned_state_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSrc,
        BackendKind::Live,
        8,
    );
}

#[test]
fn log_live_partitioned_state_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Live,
        8,
    );
}

// ---- live backend: adaptive mixed flow ----

#[test]
fn s2s_live_adaptive_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::Jarvis,
        BackendKind::Live,
        10,
    );
}

#[test]
fn t2t_live_adaptive_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::Jarvis,
        BackendKind::Live,
        10,
    );
}

#[test]
fn log_live_adaptive_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::Jarvis,
        BackendKind::Live,
        10,
    );
}

// ---- emulated backend: SpCluster of budgeted per-node engines ----

#[test]
fn s2s_emulated_full_nodes_equal_single() {
    let r = assert_node_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Emulated,
        16,
    );
    assert!(
        r.shard_stats.iter().map(|s| s.wire_bytes_out).sum::<u64>() > 0,
        "the emulated cluster charges cross-node shipping too"
    );
}

#[test]
fn t2t_emulated_full_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSp,
        BackendKind::Emulated,
        16,
    );
}

#[test]
fn log_emulated_full_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSp,
        BackendKind::Emulated,
        16,
    );
}

#[test]
fn s2s_emulated_partitioned_state_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Emulated,
        16,
    );
}

#[test]
fn t2t_emulated_partitioned_state_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::AllSrc,
        BackendKind::Emulated,
        16,
    );
}

#[test]
fn log_emulated_partitioned_state_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::AllSrc,
        BackendKind::Emulated,
        16,
    );
}

#[test]
fn s2s_emulated_adaptive_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::Jarvis,
        BackendKind::Emulated,
        20,
    );
}

#[test]
fn t2t_emulated_adaptive_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        StrategyKind::Jarvis,
        BackendKind::Emulated,
        20,
    );
}

#[test]
fn log_emulated_adaptive_nodes_equal_single() {
    assert_node_parity(
        ScenarioSpec::log_analytics(Scale::X1),
        StrategyKind::Jarvis,
        BackendKind::Emulated,
        20,
    );
}

// ---- cross-backend, scaled out ----

#[test]
fn scale_out_does_not_change_cross_backend_parity() {
    // The PR-1 invariant (emulated ≡ live) must hold on a 4-node cluster.
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let em = run(&spec, StrategyKind::AllSrc, BackendKind::Emulated, 4, 12);
    let lv = run(&spec, StrategyKind::AllSrc, BackendKind::Live, 4, 12);
    assert_eq!(digest_of(&em), digest_of(&lv));
}
