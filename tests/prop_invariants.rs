//! Property-based tests over the system's core invariants (DESIGN.md §7).

use proptest::prelude::*;

use jarvis::core::proxy::{ControlProxy, Route};
use jarvis::lp::loadfactor::{solve_load_factors, LoadFactorProblem};
use jarvis::streamkit::agg::{AggKind, AggSpec, AggState};
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::encode::{decode_batch, encode_batch};
use jarvis::streamkit::record::Record;
use jarvis::streamkit::schema::{DataType, Field, Schema};
use jarvis::streamkit::value::Value;
use jarvis::streamkit::watermark::WatermarkMerger;
use jarvis::streamkit::window::TumblingWindow;

proptest! {
    /// Proxy conservation: forwarded + drained == arrived, and the forwarded
    /// fraction converges to the load factor.
    #[test]
    fn proxy_conserves_records(p in 0.0f64..=1.0, n in 100usize..5_000) {
        let mut proxy = ControlProxy::new(p, 0.05, 0.25);
        let mut forwarded = 0u64;
        for _ in 0..n {
            if proxy.route() == Route::Forward {
                forwarded += 1;
            }
        }
        let counters = proxy.epoch_counters();
        prop_assert_eq!(counters.forwarded + counters.drained_routing, counters.arrived);
        prop_assert_eq!(counters.forwarded, forwarded);
        let frac = forwarded as f64 / n as f64;
        prop_assert!((frac - p).abs() <= 1.0 / n as f64 + 1e-9,
            "p={} frac={}", p, frac);
    }

    /// The LP solution always satisfies the chain and budget constraints,
    /// and never drains more than the all-remote plan.
    #[test]
    fn lp_solution_is_feasible(
        costs in proptest::collection::vec(0.01f64..50.0, 1..6),
        relays in proptest::collection::vec(0.05f64..1.0, 1..6),
        budget_frac in 0.0f64..1.5,
    ) {
        let m = costs.len().min(relays.len());
        let problem = LoadFactorProblem {
            relay: relays[..m].to_vec(),
            cost_us: costs[..m].to_vec(),
            records: 10_000.0,
            budget_us: budget_frac * 1e6,
        };
        let sol = solve_load_factors(&problem).unwrap();
        // Chain: e_i <= e_{i-1} <= 1.
        let mut prev = 1.0f64;
        for &e in &sol.effective {
            prop_assert!(e <= prev + 1e-9);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e));
            prev = e;
        }
        // Budget: within the constraint (allowing float slack).
        prop_assert!(sol.budget_use <= 1.0 + 1e-6, "budget use {}", sol.budget_use);
        // Objective sane: drained fraction in [0, 1].
        prop_assert!((0.0..=1.0 + 1e-9).contains(&sol.drained_fraction));
    }

    /// Aggregate merging is split-invariant: merging partials equals
    /// aggregating the whole stream. Count/Min/Max are bit-exact; Sum/Avg
    /// are exact up to float re-association across the split boundary.
    #[test]
    fn aggregate_merge_is_split_invariant(
        values in proptest::collection::vec(-1e6f64..1e6, 1..200),
        split in 0usize..200,
    ) {
        let split = split % values.len();
        for kind in [AggKind::Count, AggKind::Sum, AggKind::Min, AggKind::Max, AggKind::Avg] {
            let spec = AggSpec::new(kind.clone(), 0, "x");
            let mut left = spec.init();
            let mut right = spec.init();
            let mut whole = spec.init();
            for (i, v) in values.iter().enumerate() {
                let value = Value::F64(*v);
                if i < split { left.update(&value); } else { right.update(&value); }
                whole.update(&value);
            }
            left.merge(&right);
            match kind {
                AggKind::Sum | AggKind::Avg => {
                    let (a, b) = (finalize_f64(&left), finalize_f64(&whole));
                    let tol = 1e-9 * values.iter().map(|v| v.abs()).sum::<f64>().max(1.0);
                    prop_assert!((a - b).abs() <= tol, "kind {:?}: {} vs {}", kind, a, b);
                }
                _ => prop_assert_eq!(
                    finalize_bits(&left),
                    finalize_bits(&whole),
                    "kind {:?}", kind
                ),
            }
        }
    }

    /// Batch and wire encodings round-trip arbitrary records.
    #[test]
    fn batch_and_wire_round_trip(
        rows in proptest::collection::vec(
            (any::<i64>(), any::<u32>(), -1e9f64..1e9, "[a-z0-9 ]{0,24}"),
            0..50,
        )
    ) {
        let schema = Schema::with_overhead(vec![
            Field::new("a", DataType::I64),
            Field::new("b", DataType::U32),
            Field::new("c", DataType::F64),
            Field::new("d", DataType::Str),
        ], 7);
        let records: Vec<Record> = rows
            .iter()
            .map(|(a, b, c, d)| Record::new(
                *a,
                vec![Value::I64(*a), Value::U64(u64::from(*b)), Value::F64(*c), Value::str(d)],
            ))
            .collect();
        let batch = Batch::from_records(schema.clone(), &records).unwrap();
        prop_assert_eq!(batch.to_records(), records.clone());
        let decoded = decode_batch(schema, encode_batch(&batch)).unwrap();
        prop_assert_eq!(decoded.to_records(), records);
    }

    /// Dictionary string columns round-trip the wire for arbitrary entry
    /// sets — including the empty dictionary, dictionaries beyond 255
    /// entries (codes wider than one byte), and `Opt`-wrapped (nullable)
    /// dict columns.
    #[test]
    fn dict_columns_round_trip_the_wire(
        entries in proptest::collection::vec("[a-z0-9]{0,12}", 0..300),
        picks in proptest::collection::vec((any::<u32>(), any::<bool>()), 0..120),
    ) {
        use jarvis::streamkit::batch::DictBuilder;

        let schema = Schema::new(vec![
            Field::new("dense", DataType::Str),
            Field::new("nullable", DataType::Str),
        ]);
        let mut dense = DictBuilder::new(picks.len());
        let mut nullable = DictBuilder::new(picks.len());
        for (pick, valid) in &picks {
            let entry = if entries.is_empty() {
                ""
            } else {
                entries[*pick as usize % entries.len()].as_str()
            };
            dense.push(entry);
            if *valid && !entries.is_empty() {
                nullable.push(entry);
            } else {
                nullable.push_null();
            }
        }
        let batch = Batch {
            schema: schema.clone(),
            timestamps: (0..picks.len() as i64).collect(),
            columns: vec![dense.finish(), nullable.finish()],
        };
        let decoded = decode_batch(schema, encode_batch(&batch)).unwrap();
        prop_assert_eq!(decoded.to_records(), batch.to_records());
        prop_assert_eq!(decoded.wire_size(), batch.wire_size());
    }

    /// Grouping on dictionary keys is indistinguishable from grouping on
    /// the same strings in plain columns, for arbitrary key/value streams
    /// split arbitrarily into batches.
    #[test]
    fn dict_and_str_group_keys_agree(
        rows in proptest::collection::vec(
            (0u32..12, 0u32..4, -1e6f64..1e6, 0i64..40_000_000),
            1..200,
        ),
        cut in 0usize..200,
    ) {
        use jarvis::streamkit::ops::{AggRole, CostModel, EmitMode, GroupAggregateOp, Operator};

        let schema = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("stat", DataType::Str),
            Field::new("v", DataType::F64),
        ]);
        let records: Vec<Record> = rows
            .iter()
            .map(|(t, s, v, ts)| Record::new(
                *ts,
                vec![
                    Value::str(format!("tenant-{t}")),
                    Value::str(["a", "bb", "ccc", ""][*s as usize]),
                    Value::F64(*v),
                ],
            ))
            .collect();
        let mk_op = || GroupAggregateOp::new(
            vec![0, 1],
            vec![
                AggSpec::new(AggKind::Sum, 2, "sum"),
                AggSpec::new(AggKind::Avg, 2, "avg"),
                AggSpec::new(AggKind::Max, 2, "max"),
                AggSpec::new(AggKind::Count, 2, "n"),
            ],
            &schema,
            TumblingWindow::new(10_000_000),
            EmitMode::OnWindowClose,
            AggRole::Final,
            CostModel::fixed(1.0),
        );
        let mut str_op = mk_op();
        let mut dict_op = mk_op();
        // Split into two batches at an arbitrary cut: the two batches build
        // *different* dictionaries for the same strings, which must not
        // affect grouping.
        let cut = cut.min(records.len());
        for part in [&records[..cut], &records[cut..]] {
            let plain = Batch::from_records(schema.clone(), part).unwrap();
            let mut dict = plain.clone();
            dict.dict_encode(64);
            let mut sink = Vec::new();
            str_op.process_batch(plain, &mut sink);
            dict_op.process_batch(dict, &mut sink);
            prop_assert!(sink.is_empty());
        }
        let mut str_out = Vec::new();
        let mut dict_out = Vec::new();
        str_op.on_watermark(i64::MAX, &mut str_out);
        dict_op.on_watermark(i64::MAX, &mut dict_out);
        let flat = |out: &[Batch]| -> Vec<Record> {
            out.iter().flat_map(Batch::to_records).collect()
        };
        prop_assert_eq!(flat(&str_out), flat(&dict_out));
    }

    /// Key-hash sharding is a partition: every row lands in exactly one
    /// shard, rows keep their content and relative order within a shard,
    /// and equal keys always share a shard (checked against the
    /// value-keyed routing used for shipped state).
    #[test]
    fn shard_by_key_partitions_rows(
        rows in proptest::collection::vec(
            (0u32..10, 0u32..6, any::<u32>(), 0i64..1_000_000),
            1..150,
        ),
        n in 1usize..9,
    ) {
        use jarvis::streamkit::shard::shard_of_values;

        let schema = Schema::new(vec![
            Field::new("tenant", DataType::Str),
            Field::new("stat", DataType::U32),
            Field::new("v", DataType::U32),
        ]);
        let records: Vec<Record> = rows
            .iter()
            .map(|(t, s, v, ts)| Record::new(
                *ts,
                vec![
                    Value::str(format!("tenant-{t}")),
                    Value::U64(u64::from(*s)),
                    Value::U64(u64::from(*v)),
                ],
            ))
            .collect();
        let batch = Batch::from_records(schema, &records).unwrap();
        let shards = batch.shard_by_key(&[0, 1], n);
        prop_assert_eq!(shards.len(), n);
        // Every row in exactly one shard: counts add up and the multiset of
        // rows round-trips.
        let total: usize = shards.iter().map(Batch::len).sum();
        prop_assert_eq!(total, batch.len());
        let mut sharded: Vec<Record> = shards.iter().flat_map(Batch::to_records).collect();
        let mut expected = records.clone();
        let sort_key = |r: &Record| format!("{:?}|{:?}", r.ts, r.values);
        sharded.sort_by_key(sort_key);
        expected.sort_by_key(sort_key);
        prop_assert_eq!(sharded, expected);
        // Row routing agrees with value routing (state-delta ownership),
        // and rows preserve input order within their shard.
        for (k, shard) in shards.iter().enumerate() {
            let mut last_pos = 0usize;
            for row in 0..shard.len() {
                let key = vec![shard.columns[0].value(row), shard.columns[1].value(row)];
                prop_assert_eq!(shard_of_values(&key, n), k);
                let rec = Record::new(
                    shard.timestamps[row],
                    (0..shard.columns.len()).map(|c| shard.columns[c].value(row)).collect(),
                );
                let pos = records[last_pos..]
                    .iter()
                    .position(|r| *r == rec)
                    .map(|p| last_pos + p);
                prop_assert!(pos.is_some(), "shard rows keep input order");
                last_pos = pos.unwrap() + 1;
            }
        }
    }

    /// Dictionary-encoding the key columns must not change shard
    /// assignment: the per-page code-hash fast path hashes exactly the
    /// canonical bytes the plain-string path hashes.
    #[test]
    fn shard_by_dict_equals_shard_by_str(
        rows in proptest::collection::vec((0u32..12, 0i64..1_000_000), 1..120),
        n in 2usize..8,
    ) {
        use jarvis::streamkit::shard::shard_assignment;

        let schema = Schema::new(vec![Field::new("k", DataType::Str)]);
        let records: Vec<Record> = rows
            .iter()
            .map(|(k, ts)| Record::new(*ts, vec![Value::str(["", "a", "bb", "ccc", "dddd",
                "tenant-0", "tenant-1", "tenant-2", "x", "yy", "zzz", "w"][*k as usize])]))
            .collect();
        let plain = Batch::from_records(schema, &records).unwrap();
        let mut dict = plain.clone();
        dict.dict_encode(64);
        prop_assert_eq!(
            shard_assignment(&plain, &[0], n),
            shard_assignment(&dict, &[0], n)
        );
    }

    /// Sharding commutes with batch splitting: shard every chunk of a
    /// random split and the per-shard concatenation equals sharding the
    /// whole batch (the router chunks batches arbitrarily over the
    /// channels, which must not affect shard content or order).
    #[test]
    fn shard_by_key_is_stable_under_batch_splits(
        rows in proptest::collection::vec((0u32..8, any::<u32>(), 0i64..1_000_000), 1..150),
        cuts in proptest::collection::vec(1usize..149, 0..5),
        n in 2usize..6,
    ) {
        let schema = Schema::new(vec![
            Field::new("k", DataType::U32),
            Field::new("v", DataType::U32),
        ]);
        let records: Vec<Record> = rows
            .iter()
            .map(|(k, v, ts)| Record::new(
                *ts,
                vec![Value::U64(u64::from(*k)), Value::U64(u64::from(*v))],
            ))
            .collect();
        let batch = Batch::from_records(schema, &records).unwrap();
        let whole: Vec<Vec<Record>> = batch
            .shard_by_key(&[0], n)
            .iter()
            .map(Batch::to_records)
            .collect();
        // Split at sorted, deduplicated cut points.
        let mut cuts: Vec<usize> = cuts.into_iter().filter(|&c| c < batch.len()).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut pieces = Vec::new();
        let mut start = 0;
        for &c in &cuts {
            pieces.push(batch.slice(start..c));
            start = c;
        }
        pieces.push(batch.slice(start..batch.len()));
        let mut stitched: Vec<Vec<Record>> = vec![Vec::new(); n];
        for piece in &pieces {
            for (k, part) in piece.shard_by_key(&[0], n).iter().enumerate() {
                stitched[k].extend(part.to_records());
            }
        }
        prop_assert_eq!(stitched, whole);
    }

    /// Tumbling windows tile the timeline: every timestamp belongs to
    /// exactly one window, and closure is monotone in the watermark.
    #[test]
    fn windows_tile_the_timeline(ts in any::<i32>(), size_s in 1i64..3600) {
        let w = TumblingWindow::new(size_s * 1_000_000);
        let ts = i64::from(ts);
        let start = w.start_of(ts);
        prop_assert!(start <= ts);
        prop_assert!(ts < w.end_of(ts));
        prop_assert_eq!(w.start_of(start), start);
        prop_assert!(w.is_closed(start, w.end_of(ts)));
        prop_assert!(!w.is_closed(start, w.end_of(ts) - 1));
    }

    /// Watermark merging emits a strictly increasing sequence equal to the
    /// running minimum across inputs.
    #[test]
    fn watermark_merge_is_min_and_monotone(
        observations in proptest::collection::vec((0usize..4, 0i64..1_000_000), 1..100)
    ) {
        let mut merger = WatermarkMerger::new(4);
        let mut inputs = [i64::MIN; 4];
        let mut last_emitted = i64::MIN;
        for (stream, wm) in observations {
            if let Some(emitted) = merger.observe(stream, wm) {
                prop_assert!(emitted > last_emitted);
                last_emitted = emitted;
            }
            inputs[stream] = inputs[stream].max(wm);
            let expected_min = inputs.iter().copied().min().unwrap();
            prop_assert_eq!(merger.merged(), expected_min);
        }
    }
}

fn finalize_bits(state: &AggState) -> u64 {
    match state.finalize() {
        Value::F64(v) => v.to_bits(),
        Value::U64(v) => v,
        Value::Null => u64::MAX,
        other => panic!("unexpected aggregate output {other:?}"),
    }
}

fn finalize_f64(state: &AggState) -> f64 {
    match state.finalize() {
        Value::F64(v) => v,
        Value::U64(v) => v as f64,
        other => panic!("unexpected aggregate output {other:?}"),
    }
}

/// The LP must never be beaten by brute-force grid search over quantised
/// load-factor vectors (small instances, coarse grid).
#[test]
fn lp_matches_brute_force_on_small_instances() {
    use jarvis::lp::loadfactor::LoadFactorProblem;
    let cases = [
        (vec![1.0, 0.86, 0.3], vec![0.25, 3.25, 23.0], 0.6),
        (vec![0.9, 0.5], vec![2.0, 9.0], 0.4),
        (vec![0.7, 0.7, 0.7], vec![1.0, 1.0, 1.0], 0.05),
    ];
    for (relay, cost, budget) in cases {
        let problem = LoadFactorProblem {
            relay: relay.clone(),
            cost_us: cost.clone(),
            records: 10_000.0,
            budget_us: budget * 1e6,
        };
        let sol = solve_load_factors(&problem).unwrap();

        // Brute force over a 21-point grid per effective factor.
        let m = relay.len();
        let steps = 21usize;
        let mut best = f64::INFINITY;
        let mut idx = vec![0usize; m];
        loop {
            let e: Vec<f64> = idx.iter().map(|&i| i as f64 / (steps - 1) as f64).collect();
            let chain_ok = e.windows(2).all(|w| w[1] <= w[0] + 1e-12);
            if chain_ok {
                let mut relay_prefix = 1.0;
                let mut usage = 0.0;
                let mut drained = 0.0;
                let mut prev = 1.0;
                for i in 0..m {
                    usage += relay_prefix * e[i] * cost[i] * 10_000.0;
                    drained += relay_prefix * (prev - e[i]);
                    prev = e[i];
                    relay_prefix *= relay[i];
                }
                if usage <= budget * 1e6 + 1e-6 {
                    best = best.min(drained);
                }
            }
            // Advance the mixed-radix counter.
            let mut k = 0;
            loop {
                idx[k] += 1;
                if idx[k] < steps {
                    break;
                }
                idx[k] = 0;
                k += 1;
                if k == m {
                    break;
                }
            }
            if k == m {
                break;
            }
        }
        assert!(
            sol.drained_fraction <= best + 0.01,
            "LP {} must be within grid resolution of brute force {}",
            sol.drained_fraction,
            best
        );
    }
}
