//! Source-scale parity: the async task runtime is exact at every fan-in.
//!
//! The live session multiplexes one task per source prefix onto
//! `rt_workers` executor threads (PR 10); these tests prove the schedule
//! never leaks into results. At each fan-in — 4, 64, 512, and 1024
//! sources — the live run's merged result digest must be **bit-identical**
//! to the deterministic emulated run of the same deployment, on all three
//! paper queries. The emulated digests are themselves pinned by
//! `tests/golden_fingerprints.rs`, unchanged since the thread-per-source
//! runtime, so equality here transitively proves the async runtime matches
//! the thread-per-source baseline bit-for-bit.
//!
//! On top of the in-process matrix: TCP remote parity at 64 sources (real
//! sockets, task-backed link writers), a seeded node-loss run (sever at
//! epoch 3, `Reassign`) proving the PR-8 recovery digests survive the task
//! runtime, and a squeezed-runtime run (2 workers, narrow channels)
//! proving the knobs reshape scheduling without touching the answer.
//!
//! The 512- and 1024-source tests are minutes of work per query even in
//! release mode, so they carry `#[cfg_attr(debug_assertions, ignore)]`:
//! they run in CI's `cargo test --release` pass and are skipped (visibly,
//! with a reason) by a default debug `cargo test`.

use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, Deployment, OnNodeLoss, RunReport, TransportKind};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::fault::{FaultKind, FaultPlan, FaultTrigger};
use jarvis::core::node::{run_node, NodeConfig, NodeError, NodeSummary};
use jarvis::core::strategy::StrategyKind;

/// Virtual shards on the ring, matching `tests/remote_parity.rs`.
const RING: u32 = 4;

/// The three paper queries at the base scale.
fn paper_queries() -> [ScenarioSpec; 3] {
    [
        ScenarioSpec::pingmesh_s2s(Scale::X1),
        ScenarioSpec::pingmesh_t2t(Scale::X1, 500),
        ScenarioSpec::log_analytics(Scale::X1),
    ]
}

fn run_on(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    sources: u32,
    backend: BackendKind,
    epochs: u64,
) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(sources)
        .backend(backend)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(epochs)
        .expect("run succeeds")
}

/// Live ≡ emulated at one fan-in: the task schedule must not leak into the
/// merged result digest.
fn assert_scale_parity(spec: &ScenarioSpec, strategy: StrategyKind, sources: u32, epochs: u64) {
    let emulated = run_on(spec, strategy, sources, BackendKind::Emulated, epochs);
    let live = run_on(spec, strategy, sources, BackendKind::Live, epochs);
    let em = emulated.exactness.expect("emulated digest");
    let lv = live.exactness.expect("live digest");
    assert!(
        em.rows > 0,
        "{} @ {sources} sources must produce results",
        spec.name()
    );
    assert_eq!(
        em,
        lv,
        "{} @ {sources} sources: live (async runtime) must equal emulated",
        spec.name()
    );
}

#[test]
fn pingmesh_s2s_parity_at_4_and_64_sources() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    for sources in [4, 64] {
        assert_scale_parity(&spec, StrategyKind::Jarvis, sources, 12);
    }
}

#[test]
fn pingmesh_t2t_parity_at_4_and_64_sources() {
    let spec = ScenarioSpec::pingmesh_t2t(Scale::X1, 500);
    for sources in [4, 64] {
        assert_scale_parity(&spec, StrategyKind::Jarvis, sources, 12);
    }
}

#[test]
fn log_analytics_parity_at_4_and_64_sources() {
    let spec = ScenarioSpec::log_analytics(Scale::X1);
    for sources in [4, 64] {
        assert_scale_parity(&spec, StrategyKind::Jarvis, sources, 12);
    }
}

/// 512 source tasks per run — minutes of release-mode work per query and
/// far past the point where a debug binary stalls the default test pass,
/// so the heavy half of the scale matrix only runs where CI runs it:
/// `cargo test --release`.
#[test]
#[cfg_attr(debug_assertions, ignore = "512-source runs need a release build")]
fn parity_at_512_sources_on_all_queries() {
    for spec in paper_queries() {
        assert_scale_parity(&spec, StrategyKind::Jarvis, 512, 12);
    }
}

/// The acceptance bar: 1k+ sources, digest-identical to the scheduler-free
/// emulated baseline, on all three paper queries.
#[test]
#[cfg_attr(debug_assertions, ignore = "1024-source runs need a release build")]
fn thousand_source_runs_match_the_baseline_on_all_queries() {
    for spec in paper_queries() {
        assert_scale_parity(&spec, StrategyKind::Jarvis, 1024, 8);
    }
}

/// Squeezing the runtime — 2 workers multiplexing 512 source tasks over
/// narrow channels — reshapes every schedule and backpressure decision but
/// may not change a bit of the answer.
#[test]
#[cfg_attr(debug_assertions, ignore = "512-source runs need a release build")]
fn runtime_knobs_do_not_change_the_digest() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let baseline = run_on(&spec, StrategyKind::Jarvis, 512, BackendKind::Emulated, 10);
    let squeezed = Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::Jarvis)
        .cpu_budget(1.0)
        .sources(512)
        .backend(BackendKind::Live)
        .rt_workers(2)
        .channel_capacity(8)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(10)
        .expect("run succeeds");
    // The report echoes the *effective* worker count: the knob's value, or
    // 1 when CI's JARVIS_RT_SEED override swaps in the seeded
    // single-worker deterministic scheduler.
    let expect_workers = if std::env::var_os("JARVIS_RT_SEED").is_some() {
        1
    } else {
        2
    };
    assert_eq!(
        squeezed.rt_workers, expect_workers,
        "report echoes the knob"
    );
    assert_eq!(squeezed.channel_capacity, 8, "report echoes the knob");
    assert_eq!(
        baseline.exactness.expect("emulated digest"),
        squeezed.exactness.expect("live digest"),
        "worker count and channel capacity must not affect results"
    );
}

// ---------------------------------------------------------------------------
// TCP remote parity and fault recovery at scale.
// ---------------------------------------------------------------------------

/// Serializes the TCP tests: each allocates an ephemeral port by binding
/// then releasing it, which must not race another test's bind.
fn port_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An ephemeral loopback port that is free right now.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// Spawns `n` executor threads dialling `addr` (they retry until the
/// coordinator listens).
fn spawn_nodes(
    addr: &str,
    token: &str,
    n: u32,
) -> Vec<thread::JoinHandle<Result<NodeSummary, NodeError>>> {
    (0..n)
        .map(|_| {
            let config = NodeConfig::new(addr, token);
            thread::spawn(move || run_node(&config))
        })
        .collect()
}

fn tcp_builder(
    spec: &ScenarioSpec,
    sources: u32,
    addr: &str,
    token: &str,
) -> jarvis::core::deploy::DeploymentBuilder {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::Jarvis)
        .cpu_budget(1.0)
        .sources(sources)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(addr)
        .auth_token(token)
        .node_timeout(Duration::from_secs(30))
        .collect_results(true)
}

fn in_process_run(spec: &ScenarioSpec, sources: u32, nodes: u32, epochs: u64) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::Jarvis)
        .cpu_budget(1.0)
        .sources(sources)
        .sp_shards(RING)
        .sp_nodes(nodes)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(epochs)
        .expect("run succeeds")
}

/// 64 sources over real sockets: task-backed link writers ship every shard
/// frame, and the digest matches the in-process run — the fixed ring makes
/// routing node-count- and transport-independent.
#[test]
fn tcp_remote_parity_at_64_sources() {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "source-scale";
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let epochs = 8;
    let handles = spawn_nodes(&addr, token, 2);
    let report = tcp_builder(&spec, 64, &addr, token)
        .build()
        .expect("valid TCP spec")
        .run(epochs)
        .expect("TCP run succeeds");
    for handle in handles {
        let summary = handle
            .join()
            .expect("node thread")
            .expect("node run succeeds");
        assert_eq!(summary.epochs, epochs, "every epoch boundary is acked");
    }
    let baseline = in_process_run(&spec, 64, 4, epochs);
    assert_eq!(
        report.exactness.as_ref().expect("digest collected"),
        baseline.exactness.as_ref().expect("digest collected"),
        "64-source TCP run must be bit-identical to the in-process run"
    );
}

/// Severs node 1 at the epoch-3 boundary under `Reassign`, at 64 sources on
/// the async runtime: the survivor adopts the lost shards from the last
/// acked checkpoint and the digest still matches the fault-free run — the
/// PR-8 recovery contract holds under task scheduling.
#[test]
fn sever_at_epoch_3_reassign_recovers_exactly() {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "source-scale";
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let epochs = 8;
    let kill_epoch = 3;
    let handles = spawn_nodes(&addr, token, 2);
    let report = tcp_builder(&spec, 64, &addr, token)
        .liveness_timeout(Duration::from_secs(10))
        .checkpoint_interval(2)
        .fault_plan(FaultPlan::single(
            0x5eed_cafe,
            1,
            FaultTrigger::EpochEnd(kill_epoch),
            FaultKind::Sever,
        ))
        .on_node_loss(OnNodeLoss::Reassign)
        .build()
        .expect("valid TCP spec")
        .run(epochs)
        .expect("run survives the node loss");
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    assert_eq!(
        outcomes.iter().filter(|o| o.is_err()).count(),
        1,
        "exactly the severed node fails: {outcomes:?}"
    );
    assert_eq!(report.incidents.len(), 1, "{:?}", report.incidents);
    assert_eq!(report.incidents[0].node, 1);
    assert_eq!(report.incidents[0].epoch, kill_epoch);
    assert_eq!(report.incidents[0].action, "reassigned");
    let baseline = in_process_run(&spec, 64, 4, epochs);
    assert_eq!(
        report.exactness.as_ref().expect("digest collected"),
        baseline.exactness.as_ref().expect("digest collected"),
        "recovered 64-source run must be bit-identical to the fault-free run"
    );
}
