//! Dict-keyed vs str-keyed group-by parity on the three paper queries.
//!
//! Dictionary-encoded string columns are a physical layout, not a logical
//! type: every query must produce bit-identical results whether its
//! `GroupAggregate` keys arrive as `Column::Dict` or `Column::Str`. This
//! suite runs S2SProbe, T2TProbe, and LogAnalytics through the same batch
//! pipeline twice — once with dictionary columns flowing as produced
//! (ParseJobStats emits them natively), once with every intermediate batch
//! forcibly materialised back to plain strings — and compares exactness
//! fingerprints. The partitioned flow is covered too, since a Partial-role
//! operator fed dict keys ships state that must merge exactly into a
//! Final-role replica fed plain strings.

use std::net::TcpListener;
use std::thread;
use std::time::Duration;

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{
    BackendKind, Deployment, ExactnessDigest, OnNodeLoss, RunReport, TransportKind,
};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::fault::{FaultKind, FaultPlan, FaultTrigger};
use jarvis::core::node::{run_node, NodeConfig};
use jarvis::core::strategy::StrategyKind;
use jarvis::streamkit::agg::AggKind;
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::expr::Expr;
use jarvis::streamkit::logical::LogicalPlan;
use jarvis::streamkit::ops::{AggRole, EmitMode};
use jarvis::streamkit::physical::{self, CostProfile};
use jarvis::streamkit::query::Query;
use jarvis::streamkit::record::Record;
use jarvis::telemetry;
use telemetry::loganalytics::{LogConfig, LogGenerator};
use telemetry::pingmesh::{
    pingmesh_named_schema, to_named_clusters, ClusterNamer, PingmeshConfig, PingmeshGenerator,
};

const EPOCHS: i64 = 5;

/// Key-column layout reaching each `GroupAggregate` under test.
#[derive(Clone, Copy)]
enum Keys {
    /// Dictionary columns flow as produced by generators and maps — with
    /// persistent streams, codes stay valid across batches and epochs.
    Dict,
    /// Every batch is materialised back to plain string columns between
    /// stages, so grouping keys off raw bytes.
    Str,
    /// Every batch's dictionaries are torn down and rebuilt batch-locally
    /// between stages: the historical per-epoch page regime, where codes
    /// mean nothing beyond one batch. The persistent-dict fast paths must
    /// digest identically against this arm.
    LocalDict,
}

fn normalise(batch: &mut Batch, keys: Keys) {
    match keys {
        Keys::Dict => {
            // Encode whatever plain string columns remain, so the dict
            // arm exercises dict keys even where a generator emitted Str.
            batch.dict_encode(1 << 12);
        }
        Keys::Str => batch.dict_decode(),
        Keys::LocalDict => {
            batch.dict_decode();
            batch.dict_encode(1 << 12);
        }
    }
}

fn run_full(plan: &LogicalPlan, inputs: &[Batch], keys: Keys) -> Vec<Record> {
    let mut ops =
        physical::build_pipeline(plan, &CostProfile::default(), AggRole::Final).expect("valid");
    let n = ops.len();
    let mut results = Vec::new();
    for (e, input) in inputs.iter().enumerate() {
        let mut cur = vec![input.clone()];
        for op in &mut ops {
            let mut next = Vec::new();
            for mut b in cur {
                normalise(&mut b, keys);
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
        let wm = (e as i64 + 1) * 1_000_000;
        for i in 0..n {
            let mut emitted = Vec::new();
            ops[i].on_watermark(wm, &mut emitted);
            ops[i].on_epoch(&mut emitted);
            for later in ops.iter_mut().take(n).skip(i + 1) {
                let mut next = Vec::new();
                for mut b in emitted.drain(..) {
                    normalise(&mut b, keys);
                    later.process_batch(b, &mut next);
                }
                emitted = next;
            }
            results.extend(emitted.iter().flat_map(Batch::to_records));
        }
    }
    results.extend(
        physical::drain_windows(&mut ops, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

/// Partitioned flow with configurable layouts: the Partial-role local
/// prefix sees `local_keys` while the Final-role replica sees
/// `replica_keys`. Shipped group state must merge exactly regardless.
fn run_partitioned(
    plan: &LogicalPlan,
    inputs: &[Batch],
    local_keys: Keys,
    replica_keys: Keys,
) -> Vec<Record> {
    let costs = CostProfile::default();
    let mut local = physical::build_pipeline(plan, &costs, AggRole::Partial).expect("valid");
    let mut replica = physical::build_pipeline(plan, &costs, AggRole::Final).expect("valid");
    let mut results = Vec::new();
    for input in inputs {
        let mask: Vec<bool> = (0..input.len()).map(|r| r % 2 == 1).collect();
        let drained_mask: Vec<bool> = mask.iter().map(|b| !b).collect();
        let mut cur = vec![input.select(&mask)];
        for op in &mut local {
            let mut next = Vec::new();
            for mut b in cur {
                normalise(&mut b, local_keys);
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        for (stage, op) in local.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                replica[stage].merge_state(delta);
            }
        }
        let mut cur = vec![input.select(&drained_mask)];
        for op in &mut replica {
            let mut next = Vec::new();
            for mut b in cur {
                normalise(&mut b, replica_keys);
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
    }
    for (stage, op) in local.iter_mut().enumerate() {
        if let Some(delta) = op.take_state_delta() {
            replica[stage].merge_state(delta);
        }
    }
    results.extend(
        physical::drain_windows(&mut replica, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

fn digest(rows: &[Record]) -> ExactnessDigest {
    ExactnessDigest::of_rows(rows)
}

fn pingmesh_epochs(peer_ip_space: u32) -> Vec<Batch> {
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        peer_ip_space,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn log_epochs() -> Vec<Batch> {
    let mut gen = LogGenerator::new(LogConfig {
        scale: 0.05,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn assert_dict_str_parity(name: &str, plan: &LogicalPlan, inputs: &[Batch]) {
    let dict = run_full(plan, inputs, Keys::Dict);
    let with_str = run_full(plan, inputs, Keys::Str);
    assert!(!dict.is_empty(), "{name}: queries must emit results");
    assert_eq!(
        digest(&dict),
        digest(&with_str),
        "{name}: dict-keyed and str-keyed grouping diverged"
    );
    // Cross-epoch: persistent streams (codes stable over the whole run)
    // must digest identically to the per-epoch regime where every stage
    // boundary rebuilds batch-local pages.
    let local = run_full(plan, inputs, Keys::LocalDict);
    assert_eq!(
        digest(&dict),
        digest(&local),
        "{name}: persistent-dict and per-epoch-dict grouping diverged"
    );
}

#[test]
fn s2s_probe_dict_equals_str() {
    let plan = telemetry::queries::s2s_probe();
    assert_dict_str_parity("S2SProbe", &plan, &pingmesh_epochs(20_000));
}

#[test]
fn t2t_probe_dict_equals_str() {
    let (src, dst) = telemetry::queries::t2t_tables(500, 40, &[1]);
    let plan = telemetry::queries::t2t_probe(src, dst);
    assert_dict_str_parity("T2TProbe", &plan, &pingmesh_epochs(500));
}

#[test]
fn log_analytics_dict_equals_str() {
    let plan = telemetry::queries::log_analytics();
    assert_dict_str_parity("LogAnalytics", &plan, &log_epochs());
}

#[test]
fn log_analytics_partitioned_mixed_layouts_merge_exactly() {
    let plan = telemetry::queries::log_analytics();
    let inputs = log_epochs();
    let all_str = run_partitioned(&plan, &inputs, Keys::Str, Keys::Str);
    let mixed = run_partitioned(&plan, &inputs, Keys::Dict, Keys::Str);
    let all_dict = run_partitioned(&plan, &inputs, Keys::Dict, Keys::Dict);
    assert!(!all_str.is_empty());
    assert_eq!(
        digest(&all_str),
        digest(&mixed),
        "dict-fed partial state must merge exactly into a str-fed replica"
    );
    assert_eq!(digest(&all_str), digest(&all_dict));
}

// ---- cross-epoch: persistent streams vs per-epoch pages ----

/// A cluster-level pingmesh query keyed on the named dictionary columns.
fn cluster_probe() -> LogicalPlan {
    Query::stream("ClusterProbe", pingmesh_named_schema())
        .window_secs(10.0)
        .filter_named("errCode", |c| c.eq(Expr::lit(0u64)))
        .group_by(&["srcCluster", "dstCluster"])
        .aggregate_emit(
            &[
                (AggKind::Avg, "rtt", "avg_rtt"),
                (AggKind::Max, "rtt", "max_rtt"),
            ],
            EmitMode::PerEpochDelta,
        )
        .build()
        .expect("ClusterProbe is well-formed")
}

/// Persistent `ClusterNamer` inputs (one dictionary per column for the
/// whole run) must digest identically to batch-local
/// [`to_named_clusters`] inputs (a fresh page per epoch) — grouping on
/// stable cross-epoch codes is a layout choice, never a result change.
#[test]
fn cluster_query_persistent_namer_equals_batch_local_pages() {
    let raw = pingmesh_epochs(20_000);
    let mut namer = ClusterNamer::new();
    let persistent: Vec<Batch> = raw.iter().map(|b| namer.name_batch(b)).collect();
    let local: Vec<Batch> = raw.iter().map(to_named_clusters).collect();

    // The namer arm really is cross-epoch: every epoch's srcCluster column
    // shares one persistent (non-zero id) dictionary stream.
    let src_ids: Vec<u64> = persistent
        .iter()
        .map(|b| b.columns[1].as_dict().expect("named col is dict").0.id())
        .collect();
    assert!(src_ids[0] != 0, "persistent streams carry non-zero ids");
    assert!(
        src_ids.iter().all(|&id| id == src_ids[0]),
        "one stream across epochs: {src_ids:?}"
    );
    // …while the batch-local arm rebuilds an anonymous page per epoch.
    assert!(local
        .iter()
        .all(|b| b.columns[1].as_dict().expect("named col is dict").0.id() == 0));

    let plan = cluster_probe();
    let from_stream = run_full(&plan, &persistent, Keys::Dict);
    let from_pages = run_full(&plan, &local, Keys::Dict);
    assert!(!from_stream.is_empty(), "cluster query must emit results");
    assert_eq!(
        digest(&from_stream),
        digest(&from_pages),
        "persistent ClusterNamer streams diverged from per-epoch pages"
    );
}

// ---- mid-run fault: dict version state survives shard reassignment ----

/// Severs node 1 of a 2-node TCP LogAnalytics run at an epoch boundary
/// with `OnNodeLoss::Reassign`. LogAnalytics cross-node frames are
/// persistent-dict delta pages, so recovery forces the full re-sync path:
/// the coordinator re-seeds the survivor from the last acked checkpoint
/// (self-contained full pages), per-link sender versions for the lost
/// routes are discarded, and first frames after recovery must re-ship full
/// pages before deltas resume. The digest must still be bit-identical to
/// the fault-free run.
#[test]
fn reassign_mid_run_resyncs_persistent_dict_versions() {
    const RING: u32 = 4;
    const RUN_EPOCHS: u64 = 8;
    const KILL_EPOCH: u64 = 3;

    // An ephemeral loopback port that is free right now. `dict_parity` is
    // its own test binary and this is its only TCP test, so the bind
    // cannot race a sibling test.
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    let token = "dict-parity";
    let spec = ScenarioSpec::log_analytics(Scale::X1);

    let handles: Vec<_> = (0..2)
        .map(|_| {
            let config = NodeConfig::new(&addr, token);
            thread::spawn(move || run_node(&config))
        })
        .collect();
    let report = Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(&addr)
        .auth_token(token)
        .node_timeout(Duration::from_secs(30))
        .liveness_timeout(Duration::from_secs(10))
        .checkpoint_interval(2)
        .fault_plan(FaultPlan::single(
            0x5eed_cafe,
            1,
            FaultTrigger::EpochEnd(KILL_EPOCH),
            FaultKind::Sever,
        ))
        .on_node_loss(OnNodeLoss::Reassign)
        .collect_results(true)
        .build()
        .expect("valid TCP spec")
        .run(RUN_EPOCHS)
        .expect("run survives the node loss");
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.join().expect("node thread"))
        .collect();
    assert_eq!(
        outcomes.iter().filter(|o| o.is_err()).count(),
        1,
        "exactly the severed node fails: {outcomes:?}"
    );
    assert_eq!(report.incidents.len(), 1, "{:?}", report.incidents);
    assert_eq!(report.incidents[0].action, "reassigned");
    assert_eq!(report.incidents[0].epoch, KILL_EPOCH);

    let baseline: RunReport = Deployment::builder()
        .workload(spec)
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(RUN_EPOCHS)
        .expect("run succeeds");
    assert_eq!(
        report.exactness.as_ref().expect("digest collected"),
        baseline.exactness.as_ref().expect("digest collected"),
        "dict re-sync after reassignment must keep results bit-identical"
    );
}
