//! Dict-keyed vs str-keyed group-by parity on the three paper queries.
//!
//! Dictionary-encoded string columns are a physical layout, not a logical
//! type: every query must produce bit-identical results whether its
//! `GroupAggregate` keys arrive as `Column::Dict` or `Column::Str`. This
//! suite runs S2SProbe, T2TProbe, and LogAnalytics through the same batch
//! pipeline twice — once with dictionary columns flowing as produced
//! (ParseJobStats emits them natively), once with every intermediate batch
//! forcibly materialised back to plain strings — and compares exactness
//! fingerprints. The partitioned flow is covered too, since a Partial-role
//! operator fed dict keys ships state that must merge exactly into a
//! Final-role replica fed plain strings.

use jarvis::core::deploy::ExactnessDigest;
use jarvis::streamkit::batch::Batch;
use jarvis::streamkit::logical::LogicalPlan;
use jarvis::streamkit::ops::AggRole;
use jarvis::streamkit::physical::{self, CostProfile};
use jarvis::streamkit::record::Record;
use jarvis::telemetry;
use telemetry::loganalytics::{LogConfig, LogGenerator};
use telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};

const EPOCHS: i64 = 5;

/// Key-column layout reaching each `GroupAggregate` under test.
#[derive(Clone, Copy)]
enum Keys {
    /// Dictionary columns flow as produced by generators and maps.
    Dict,
    /// Every batch is materialised back to plain string columns between
    /// stages, so grouping keys off raw bytes.
    Str,
}

fn normalise(batch: &mut Batch, keys: Keys) {
    match keys {
        Keys::Dict => {
            // Encode whatever plain string columns remain, so the dict
            // arm exercises dict keys even where a generator emitted Str.
            batch.dict_encode(1 << 12);
        }
        Keys::Str => batch.dict_decode(),
    }
}

fn run_full(plan: &LogicalPlan, inputs: &[Batch], keys: Keys) -> Vec<Record> {
    let mut ops =
        physical::build_pipeline(plan, &CostProfile::default(), AggRole::Final).expect("valid");
    let n = ops.len();
    let mut results = Vec::new();
    for (e, input) in inputs.iter().enumerate() {
        let mut cur = vec![input.clone()];
        for op in &mut ops {
            let mut next = Vec::new();
            for mut b in cur {
                normalise(&mut b, keys);
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
        let wm = (e as i64 + 1) * 1_000_000;
        for i in 0..n {
            let mut emitted = Vec::new();
            ops[i].on_watermark(wm, &mut emitted);
            ops[i].on_epoch(&mut emitted);
            for later in ops.iter_mut().take(n).skip(i + 1) {
                let mut next = Vec::new();
                for mut b in emitted.drain(..) {
                    normalise(&mut b, keys);
                    later.process_batch(b, &mut next);
                }
                emitted = next;
            }
            results.extend(emitted.iter().flat_map(Batch::to_records));
        }
    }
    results.extend(
        physical::drain_windows(&mut ops, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

/// Partitioned flow with configurable layouts: the Partial-role local
/// prefix sees `local_keys` while the Final-role replica sees
/// `replica_keys`. Shipped group state must merge exactly regardless.
fn run_partitioned(
    plan: &LogicalPlan,
    inputs: &[Batch],
    local_keys: Keys,
    replica_keys: Keys,
) -> Vec<Record> {
    let costs = CostProfile::default();
    let mut local = physical::build_pipeline(plan, &costs, AggRole::Partial).expect("valid");
    let mut replica = physical::build_pipeline(plan, &costs, AggRole::Final).expect("valid");
    let mut results = Vec::new();
    for input in inputs {
        let mask: Vec<bool> = (0..input.len()).map(|r| r % 2 == 1).collect();
        let drained_mask: Vec<bool> = mask.iter().map(|b| !b).collect();
        let mut cur = vec![input.select(&mask)];
        for op in &mut local {
            let mut next = Vec::new();
            for mut b in cur {
                normalise(&mut b, local_keys);
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        for (stage, op) in local.iter_mut().enumerate() {
            if let Some(delta) = op.take_state_delta() {
                replica[stage].merge_state(delta);
            }
        }
        let mut cur = vec![input.select(&drained_mask)];
        for op in &mut replica {
            let mut next = Vec::new();
            for mut b in cur {
                normalise(&mut b, replica_keys);
                op.process_batch(b, &mut next);
            }
            cur = next;
        }
        results.extend(cur.iter().flat_map(Batch::to_records));
    }
    for (stage, op) in local.iter_mut().enumerate() {
        if let Some(delta) = op.take_state_delta() {
            replica[stage].merge_state(delta);
        }
    }
    results.extend(
        physical::drain_windows(&mut replica, jarvis::streamkit::time::TS_MAX)
            .iter()
            .flat_map(Batch::to_records),
    );
    results
}

fn digest(rows: &[Record]) -> ExactnessDigest {
    ExactnessDigest::of_rows(rows)
}

fn pingmesh_epochs(peer_ip_space: u32) -> Vec<Batch> {
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        peer_ip_space,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn log_epochs() -> Vec<Batch> {
    let mut gen = LogGenerator::new(LogConfig {
        scale: 0.05,
        ..Default::default()
    });
    (0..EPOCHS)
        .map(|e| gen.generate_epoch_batch(e * 1_000_000, 1.0))
        .collect()
}

fn assert_dict_str_parity(name: &str, plan: &LogicalPlan, inputs: &[Batch]) {
    let dict = run_full(plan, inputs, Keys::Dict);
    let with_str = run_full(plan, inputs, Keys::Str);
    assert!(!dict.is_empty(), "{name}: queries must emit results");
    assert_eq!(
        digest(&dict),
        digest(&with_str),
        "{name}: dict-keyed and str-keyed grouping diverged"
    );
}

#[test]
fn s2s_probe_dict_equals_str() {
    let plan = telemetry::queries::s2s_probe();
    assert_dict_str_parity("S2SProbe", &plan, &pingmesh_epochs(20_000));
}

#[test]
fn t2t_probe_dict_equals_str() {
    let (src, dst) = telemetry::queries::t2t_tables(500, 40, &[1]);
    let plan = telemetry::queries::t2t_probe(src, dst);
    assert_dict_str_parity("T2TProbe", &plan, &pingmesh_epochs(500));
}

#[test]
fn log_analytics_dict_equals_str() {
    let plan = telemetry::queries::log_analytics();
    assert_dict_str_parity("LogAnalytics", &plan, &log_epochs());
}

#[test]
fn log_analytics_partitioned_mixed_layouts_merge_exactly() {
    let plan = telemetry::queries::log_analytics();
    let inputs = log_epochs();
    let all_str = run_partitioned(&plan, &inputs, Keys::Str, Keys::Str);
    let mixed = run_partitioned(&plan, &inputs, Keys::Dict, Keys::Str);
    let all_dict = run_partitioned(&plan, &inputs, Keys::Dict, Keys::Dict);
    assert!(!all_str.is_empty());
    assert_eq!(
        digest(&all_str),
        digest(&mixed),
        "dict-fed partial state must merge exactly into a str-fed replica"
    );
    assert_eq!(digest(&all_str), digest(&all_dict));
}
