//! Distributed parity: the TCP transport is exact and accountable.
//!
//! Each test boots a coordinator (`BackendKind::Live` +
//! `TransportKind::Tcp`) on a loopback ephemeral port and a fleet of
//! in-process-spawned `jarvis-node` executors (the same `run_node` entry
//! point the binary wraps), runs the deployment end-to-end over real
//! sockets, and asserts the result digest is **bit-identical** to the
//! in-process 4-node run of `tests/node_parity.rs` — the fixed ring makes
//! shard routing node-count- and transport-independent, so nothing may
//! change when the SP tier moves out of process. The handshake tests pin
//! the typed failure paths: bad tokens, absent nodes, and connections that
//! never speak the protocol.

use std::net::TcpListener;
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::thread;
use std::time::Duration;

use jarvis::core::calibration::Scale;
use jarvis::core::deploy::{BackendKind, DeployError, Deployment, RunReport, TransportKind};
use jarvis::core::experiment::ScenarioSpec;
use jarvis::core::node::{run_node, NodeConfig, NodeError, NodeSummary};
use jarvis::core::strategy::StrategyKind;

/// Virtual shards on the ring, matching `tests/node_parity.rs`.
const RING: u32 = 4;

/// Serializes the TCP tests: each allocates an ephemeral port by binding
/// then releasing it, which must not race another test's bind.
fn port_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// An ephemeral loopback port that is free right now.
fn free_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().expect("local addr").to_string();
    drop(listener);
    addr
}

/// Spawns `n` executor threads dialling `addr` (they retry until the
/// coordinator listens).
fn spawn_nodes(
    addr: &str,
    token: &str,
    n: u32,
) -> Vec<thread::JoinHandle<Result<NodeSummary, NodeError>>> {
    (0..n)
        .map(|_| {
            let config = NodeConfig::new(addr, token);
            thread::spawn(move || run_node(&config))
        })
        .collect()
}

fn tcp_deployment(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    nodes: u32,
    addr: &str,
    token: &str,
) -> Deployment {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(nodes)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(addr)
        .auth_token(token)
        .node_timeout(Duration::from_secs(30))
        .collect_results(true)
        .build()
        .expect("valid TCP spec")
}

fn in_process_run(
    spec: &ScenarioSpec,
    strategy: StrategyKind,
    nodes: u32,
    epochs: u64,
) -> RunReport {
    Deployment::builder()
        .workload(spec.clone())
        .strategy(strategy)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(nodes)
        .backend(BackendKind::Live)
        .collect_results(true)
        .build()
        .expect("valid spec")
        .run(epochs)
        .expect("run succeeds")
}

/// Runs `spec`/`strategy` over two real `jarvis-node` processes-worth of
/// executors on loopback TCP and asserts digest parity with the in-process
/// 4-node run, plus populated socket-byte accounting.
fn assert_remote_parity(spec: ScenarioSpec, strategy: StrategyKind, epochs: u64) {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "remote-parity";
    let handles = spawn_nodes(&addr, token, 2);
    let report = tcp_deployment(&spec, strategy, 2, &addr, token)
        .run(epochs)
        .expect("TCP run succeeds");
    for handle in handles {
        let summary = handle
            .join()
            .expect("node thread")
            .expect("node run succeeds");
        assert_eq!(summary.epochs, epochs, "every epoch boundary is acked");
    }
    assert_eq!(report.sp_nodes, 2);
    assert_eq!(report.node_stats.len(), 2);
    // Wire-byte accounting comes from the actual sockets: every link moved
    // at least the handshake and control frames.
    assert!(
        report.node_stats.iter().all(|n| n.wire_bytes_out > 0),
        "socket byte accounting must be populated: {:?}",
        report.node_stats
    );
    let baseline = in_process_run(&spec, strategy, 4, epochs);
    assert_eq!(
        report.exactness.as_ref().expect("digest collected"),
        baseline.exactness.as_ref().expect("digest collected"),
        "{} / {}: TCP results must be bit-identical to the in-process run",
        spec.name(),
        strategy.label(),
    );
    // The fixed ring makes shard drain shares transport-independent too.
    assert_eq!(
        report
            .shard_stats
            .iter()
            .map(|s| s.drained_records)
            .collect::<Vec<_>>(),
        baseline
            .shard_stats
            .iter()
            .map(|s| s.drained_records)
            .collect::<Vec<_>>(),
        "shard drain shares must not depend on the transport"
    );
}

#[test]
fn s2s_tcp_nodes_equal_in_process() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    assert_remote_parity(spec.clone(), StrategyKind::AllSp, 8);
    assert_remote_parity(spec.clone(), StrategyKind::AllSrc, 8);
    assert_remote_parity(spec, StrategyKind::Jarvis, 10);
}

#[test]
fn t2t_tcp_nodes_equal_in_process() {
    let spec = ScenarioSpec::pingmesh_t2t(Scale::X1, 500);
    assert_remote_parity(spec.clone(), StrategyKind::AllSp, 8);
    assert_remote_parity(spec.clone(), StrategyKind::AllSrc, 8);
    assert_remote_parity(spec, StrategyKind::Jarvis, 10);
}

#[test]
fn log_tcp_nodes_equal_in_process() {
    let spec = ScenarioSpec::log_analytics(Scale::X1);
    assert_remote_parity(spec.clone(), StrategyKind::AllSp, 8);
    assert_remote_parity(spec.clone(), StrategyKind::AllSrc, 8);
    assert_remote_parity(spec, StrategyKind::Jarvis, 10);
}

#[test]
fn bad_tokens_fail_the_handshake() {
    let _guard = port_lock();
    let addr = free_addr();
    let handles = spawn_nodes(&addr, "wrong-token", 1);
    let err = tcp_deployment(
        &ScenarioSpec::pingmesh_s2s(Scale::X1),
        StrategyKind::AllSp,
        2,
        &addr,
        "right-token",
    )
    .run(4)
    .expect_err("bad token must abort the deployment");
    assert!(
        matches!(err, DeployError::HandshakeFailed { .. }),
        "got {err:?}"
    );
    for handle in handles {
        let node_err = handle
            .join()
            .expect("node thread")
            .expect_err("the node must see the rejection");
        assert!(
            matches!(
                node_err,
                NodeError::Rejected { .. } | NodeError::Transport(_)
            ),
            "got {node_err:?}"
        );
    }
}

#[test]
fn absent_nodes_time_out_registration() {
    let _guard = port_lock();
    let addr = free_addr();
    let err = Deployment::builder()
        .workload(ScenarioSpec::pingmesh_s2s(Scale::X1))
        .strategy(StrategyKind::AllSp)
        .cpu_budget(1.0)
        .sources(2)
        .sp_shards(RING)
        .sp_nodes(2)
        .backend(BackendKind::Live)
        .transport(TransportKind::Tcp)
        .listen_addr(&addr)
        .node_timeout(Duration::from_millis(200))
        .build()
        .expect("valid TCP spec")
        .run(4)
        .expect_err("nobody registers");
    match err {
        DeployError::NodeTimeout {
            registered,
            expected,
            ..
        } => {
            assert_eq!(registered, 0);
            assert_eq!(expected, 2);
        }
        other => panic!("expected NodeTimeout, got {other:?}"),
    }
}

#[test]
fn garbage_connections_do_not_block_admission() {
    let _guard = port_lock();
    let addr = free_addr();
    let token = "remote-parity";
    // A peer that connects first and writes garbage: dropped, not fatal.
    // The real nodes only dial once the garbage is on the wire, so the
    // coordinator must survive it to ever admit them.
    let (garbage_sent, spawn_gate) = std::sync::mpsc::channel::<()>();
    let garbage_addr = addr.clone();
    let garbage = thread::spawn(move || {
        use std::io::Write;
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            match std::net::TcpStream::connect(&garbage_addr) {
                Ok(mut s) => {
                    s.write_all(b"GET / HTTP/1.1\r\n\r\n")
                        .expect("garbage write");
                    let _ = s.flush();
                    garbage_sent.send(()).expect("gate alive");
                    break;
                }
                Err(_) if std::time::Instant::now() < deadline => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(e) => panic!("garbage peer cannot connect: {e}"),
            }
        }
    });
    let node_addr = addr.clone();
    let nodes = thread::spawn(move || {
        spawn_gate.recv().expect("garbage peer connected");
        spawn_nodes(&node_addr, token, 2)
    });
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let report = tcp_deployment(&spec, StrategyKind::AllSp, 2, &addr, token)
        .run(4)
        .expect("real nodes still admitted");
    garbage.join().expect("garbage thread");
    for handle in nodes.join().expect("spawner thread") {
        handle
            .join()
            .expect("node thread")
            .expect("node run succeeds");
    }
    assert!(report.results_emitted > 0);
}
