//! Cross-crate integration tests: full deployments over every strategy, with
//! system-level invariants — all through the unified builder API.

use jarvis::core::engine::block::NetworkModel;
use jarvis::prelude::*;

fn all_strategies() -> [StrategyKind; 8] {
    [
        StrategyKind::AllSp,
        StrategyKind::AllSrc,
        StrategyKind::FilterSrc,
        StrategyKind::BestOp,
        StrategyKind::LbDp,
        StrategyKind::Jarvis,
        StrategyKind::JarvisLpOnly,
        StrategyKind::JarvisNoLpInit,
    ]
}

fn run(spec: ScenarioSpec, strategy: StrategyKind, cpu: f64, epochs: u64) -> RunReport {
    Deployment::builder()
        .workload(spec)
        .strategy(strategy)
        .cpu_budget(cpu)
        .backend(BackendKind::Emulated)
        .build()
        .expect("valid deployment")
        .run(epochs)
        .expect("emulated run")
}

#[test]
fn every_strategy_runs_and_respects_physical_bounds() {
    for strategy in all_strategies() {
        let r = run(ScenarioSpec::pingmesh_s2s(Scale::X1), strategy, 0.5, 40);
        // Throughput can never exceed the input rate.
        assert!(
            r.throughput_mbps <= r.input_mbps * 1.01,
            "{}: {} > input {}",
            strategy.label(),
            r.throughput_mbps,
            r.input_mbps
        );
        assert!(r.throughput_mbps >= 0.0);
        // Offered network traffic is bounded by input + state overhead; the
        // delivered traffic is bounded by the link (offered may exceed it).
        assert!(
            r.network_mbps <= r.input_mbps * 1.5 + 1.0,
            "{}: network {} vs input {}",
            strategy.label(),
            r.network_mbps,
            r.input_mbps
        );
    }
}

#[test]
fn jarvis_dominates_operator_level_baselines_under_constraint() {
    // The headline Fig. 7 ordering at a constrained budget (10x, 60% CPU).
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let mut results = std::collections::HashMap::new();
    for strategy in [
        StrategyKind::Jarvis,
        StrategyKind::BestOp,
        StrategyKind::AllSrc,
        StrategyKind::AllSp,
        StrategyKind::LbDp,
    ] {
        results.insert(
            strategy.label(),
            run(spec.clone(), strategy, 0.6, 60).throughput_mbps,
        );
    }
    let jarvis = results["Jarvis"];
    assert!(jarvis >= results["Best-OP"] - 0.3, "{results:?}");
    assert!(jarvis > results["All-SP"], "{results:?}");
    assert!(jarvis > 2.0 * results["All-Src"], "{results:?}");
    assert!(jarvis >= results["LB-DP"] - 0.3, "{results:?}");
}

#[test]
fn jarvis_network_stays_below_operator_level_at_80_percent() {
    // The Fig. 3 comparison: data-level partitioning cuts outbound traffic
    // versus operator-level at the same 80% budget.
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let jr = run(spec.clone(), StrategyKind::Jarvis, 0.8, 60);
    let br = run(spec, StrategyKind::BestOp, 0.8, 60);
    assert!(
        jr.network_mbps < 0.65 * br.network_mbps,
        "Jarvis {} vs Best-OP {} Mbps",
        jr.network_mbps,
        br.network_mbps
    );
}

#[test]
fn t2t_probe_scenario_processes_join_heavy_workload() {
    let r = run(
        ScenarioSpec::pingmesh_t2t(Scale::X5, 500),
        StrategyKind::Jarvis,
        0.5,
        50,
    );
    assert!(r.throughput_mbps > 0.8 * r.input_mbps, "{r:?}");
}

#[test]
fn log_analytics_scenario_adapts_at_low_budget() {
    let r = run(
        ScenarioSpec::log_analytics(Scale::X10),
        StrategyKind::Jarvis,
        0.2,
        60,
    );
    // The query needs ~31% of a core; at 20% Jarvis must still push most of
    // the stream through (partially local, partially drained).
    assert!(r.throughput_mbps > 0.6 * r.input_mbps, "{r:?}");
    assert!(!r.load_factors.is_empty());
}

#[test]
fn adaptation_overhead_is_below_one_percent() {
    let r = run(
        ScenarioSpec::pingmesh_s2s(Scale::X10),
        StrategyKind::Jarvis,
        0.6,
        60,
    );
    assert!(
        r.overhead_core_frac < 0.01,
        "adaptation overhead {} must stay under 1% of a core",
        r.overhead_core_frac
    );
}

#[test]
fn multi_source_shared_link_caps_aggregate_throughput() {
    // 8 sources × 26.2 Mbps input over a deliberately tiny 64 Mbps shared
    // pipe: all-SP can never exceed the pipe.
    let r = Deployment::builder()
        .workload(ScenarioSpec::pingmesh_s2s(Scale::X10))
        .strategy(StrategyKind::AllSp)
        .cpu_budget(0.5)
        .sources(8)
        .network(NetworkModel::Shared {
            total_bps: 64.0 * jarvis::core::calibration::MBPS,
        })
        .build()
        .expect("valid deployment")
        .run(40)
        .expect("emulated run");
    assert!(
        r.throughput_mbps <= 66.0,
        "aggregate {} must respect the shared link",
        r.throughput_mbps
    );
}
