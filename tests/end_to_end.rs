//! Cross-crate integration tests: full scenarios over every strategy, with
//! system-level invariants.

use jarvis::prelude::*;

fn all_strategies() -> [StrategyKind; 8] {
    [
        StrategyKind::AllSp,
        StrategyKind::AllSrc,
        StrategyKind::FilterSrc,
        StrategyKind::BestOp,
        StrategyKind::LbDp,
        StrategyKind::Jarvis,
        StrategyKind::JarvisLpOnly,
        StrategyKind::JarvisNoLpInit,
    ]
}

#[test]
fn every_strategy_runs_and_respects_physical_bounds() {
    let bw_mbps = jarvis::core::calibration::per_query_per_node_bps()
        / jarvis::core::calibration::MBPS;
    for strategy in all_strategies() {
        let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
        let mut s = Scenario::single_source(spec, strategy, 0.5);
        let r = s.run_epochs(40);
        // Throughput can never exceed the input rate.
        assert!(
            r.throughput_mbps <= r.input_mbps * 1.01,
            "{}: {} > input {}",
            strategy.label(),
            r.throughput_mbps,
            r.input_mbps
        );
        assert!(r.throughput_mbps >= 0.0);
        // Offered network traffic is bounded by input + state overhead; the
        // delivered traffic is bounded by the link (offered may exceed it).
        assert!(
            r.network_mbps <= r.input_mbps * 1.5 + 1.0,
            "{}: network {} vs input {}",
            strategy.label(),
            r.network_mbps,
            r.input_mbps
        );
        let _ = bw_mbps;
    }
}

#[test]
fn jarvis_dominates_operator_level_baselines_under_constraint() {
    // The headline Fig. 7 ordering at a constrained budget (10x, 60% CPU).
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let mut results = std::collections::HashMap::new();
    for strategy in [
        StrategyKind::Jarvis,
        StrategyKind::BestOp,
        StrategyKind::AllSrc,
        StrategyKind::AllSp,
        StrategyKind::LbDp,
    ] {
        let mut s = Scenario::single_source(spec.clone(), strategy, 0.6);
        results.insert(strategy.label(), s.run_epochs(60).throughput_mbps);
    }
    let jarvis = results["Jarvis"];
    assert!(jarvis >= results["Best-OP"] - 0.3, "{results:?}");
    assert!(jarvis > results["All-SP"], "{results:?}");
    assert!(jarvis > 2.0 * results["All-Src"], "{results:?}");
    assert!(jarvis >= results["LB-DP"] - 0.3, "{results:?}");
}

#[test]
fn jarvis_network_stays_below_operator_level_at_80_percent() {
    // The Fig. 3 comparison: data-level partitioning cuts outbound traffic
    // versus operator-level at the same 80% budget.
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let mut jarvis = Scenario::single_source(spec.clone(), StrategyKind::Jarvis, 0.8);
    let jr = jarvis.run_epochs(60);
    let mut best = Scenario::single_source(spec, StrategyKind::BestOp, 0.8);
    let br = best.run_epochs(60);
    assert!(
        jr.network_mbps < 0.65 * br.network_mbps,
        "Jarvis {} vs Best-OP {} Mbps",
        jr.network_mbps,
        br.network_mbps
    );
}

#[test]
fn t2t_probe_scenario_processes_join_heavy_workload() {
    let spec = ScenarioSpec::pingmesh_t2t(Scale::X5, 500);
    let mut s = Scenario::single_source(spec, StrategyKind::Jarvis, 0.5);
    let r = s.run_epochs(50);
    assert!(r.throughput_mbps > 0.8 * r.input_mbps, "{r:?}");
}

#[test]
fn log_analytics_scenario_adapts_at_low_budget() {
    let spec = ScenarioSpec::log_analytics(Scale::X10);
    let mut s = Scenario::single_source(spec, StrategyKind::Jarvis, 0.2);
    let r = s.run_epochs(60);
    // The query needs ~31% of a core; at 20% Jarvis must still push most of
    // the stream through (partially local, partially drained).
    assert!(r.throughput_mbps > 0.6 * r.input_mbps, "{r:?}");
    assert!(!r.load_factors.is_empty());
}

#[test]
fn adaptation_overhead_is_below_one_percent() {
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    let mut s = Scenario::single_source(spec, StrategyKind::Jarvis, 0.6);
    let r = s.run_epochs(60);
    assert!(
        r.overhead_core_frac < 0.01,
        "adaptation overhead {} must stay under 1% of a core",
        r.overhead_core_frac
    );
}

#[test]
fn multi_source_shared_link_caps_aggregate_throughput() {
    use jarvis::core::engine::block::NetworkModel;
    let spec = ScenarioSpec::pingmesh_s2s(Scale::X10);
    // 8 sources × 26.2 Mbps input over a deliberately tiny 64 Mbps shared
    // pipe: all-SP can never exceed the pipe.
    let mut s = Scenario::multi_source(
        spec,
        StrategyKind::AllSp,
        0.5,
        8,
        NetworkModel::Shared { total_bps: 64.0 * jarvis::core::calibration::MBPS },
    );
    let r = s.run_epochs(40);
    assert!(
        r.throughput_mbps <= 66.0,
        "aggregate {} must respect the shared link",
        r.throughput_mbps
    );
}
