//! Accuracy guarantees: data-level partitioning is lossless and exact — the
//! property that distinguishes it from data synopses (paper §VI-D).

use jarvis::core::calibration;
use jarvis::core::live::run_partitioned;
use jarvis::core::planner::{plan_query, RuleConfig};
use jarvis::streamkit::record::Record;
use jarvis::telemetry::anomaly::AnomalySchedule;
use jarvis::telemetry::pingmesh::{PingmeshConfig, PingmeshGenerator};
use jarvis::telemetry::queries;

fn pingmesh_records(epochs: i64, anomalies: AnomalySchedule) -> Vec<Record> {
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        anomalies,
        ..Default::default()
    });
    let mut out = Vec::new();
    for e in 0..epochs {
        out.extend(gen.generate_epoch(e * 1_000_000, 1.0));
    }
    out
}

fn sorted(mut rows: Vec<Record>) -> Vec<Record> {
    rows.sort_by_key(|r| format!("{:?}", r.values));
    rows
}

#[test]
fn any_load_factor_split_yields_identical_results() {
    let planned = plan_query(queries::s2s_probe(), &RuleConfig::default()).unwrap();
    let costs = calibration::s2s_cost_profile();
    let records = pingmesh_records(12, AnomalySchedule::none());

    let reference = run_partitioned(&planned, &costs, records.clone(), &[0.0, 0.0, 0.0], 1).results;
    for factors in [
        [1.0, 1.0, 1.0],
        [1.0, 0.5, 0.25],
        [0.3, 1.0, 0.9],
        [1.0, 1.0, 0.83],
    ] {
        let split = run_partitioned(&planned, &costs, records.clone(), &factors, 2).results;
        assert_eq!(
            sorted(reference.clone()),
            sorted(split),
            "partitioning with factors {factors:?} must be exact"
        );
    }
}

#[test]
fn partitioning_preserves_every_alert_unlike_sampling() {
    use jarvis::synopsis::wsp::{WspConfig, WspSampler};
    use jarvis::telemetry::pingmesh::{col, pingmesh_schema};

    // Sparse incident: 2% of pairs spike for the whole window.
    let records = pingmesh_records(10, AnomalySchedule::single(0.0, 100.0, 0.02, 30.0));

    // Ground truth + partitioned run.
    let planned = plan_query(queries::s2s_probe(), &RuleConfig::default()).unwrap();
    let costs = calibration::s2s_cost_profile();
    let full = run_partitioned(&planned, &costs, records.clone(), &[0.0; 3], 1).results;
    let split = run_partitioned(&planned, &costs, records.clone(), &[1.0, 0.7, 0.4], 3).results;
    let alerts = |rows: &[Record]| {
        rows.iter()
            .filter(|r| r.values[4].as_f64().unwrap_or(0.0) > 5_000.0)
            .count()
    };
    assert!(alerts(&full) > 0, "incident must produce alerts");
    assert_eq!(
        alerts(&full),
        alerts(&split),
        "partitioning must not lose alerts"
    );

    // Sampling at 20% misses some of the same alerts.
    let mut sampler = WspSampler::new(WspConfig {
        rate: 0.2,
        ..Default::default()
    });
    let report = sampler.evaluate_window(
        &records,
        &pingmesh_schema(),
        (col::SRC_IP, col::DST_IP),
        col::RTT,
    );
    assert!(
        report.missed_alert_fraction() > 0.0,
        "sampling must demonstrate alert loss"
    );
}

#[test]
fn t2t_partitioned_execution_is_exact() {
    let (src, dst) = queries::t2t_tables(500, 40, &[1]);
    let planned = plan_query(queries::t2t_probe(src, dst), &RuleConfig::default()).unwrap();
    let costs = calibration::t2t_cost_profile();
    let mut gen = PingmeshGenerator::new(PingmeshConfig {
        peer_ip_space: 500,
        ..Default::default()
    });
    let mut records = Vec::new();
    for e in 0..10i64 {
        records.extend(gen.generate_epoch(e * 1_000_000, 1.0));
    }
    let m = planned.source_ops;
    let reference = run_partitioned(&planned, &costs, records.clone(), &vec![0.0; m], 1).results;
    let split = run_partitioned(
        &planned,
        &costs,
        records,
        &[1.0, 1.0, 0.6, 1.0, 1.0, 0.5],
        2,
    )
    .results;
    assert_eq!(sorted(reference), sorted(split));
}

#[test]
fn planner_excluded_suffix_still_executes_at_sp() {
    use jarvis::streamkit::agg::AggKind;
    use jarvis::streamkit::expr::Expr;
    use jarvis::streamkit::query::Query;

    // W -> G+R -> F(avg > threshold): the trailing filter is SP-only (R-2).
    let schema = jarvis::telemetry::pingmesh::pingmesh_schema();
    let plan = Query::stream("alerting", schema)
        .window_secs(10.0)
        .group_by(&["srcIp", "dstIp"])
        .aggregate(&[(AggKind::Max, "rtt", "max_rtt")])
        .filter_named("max_rtt", |c| c.gt(Expr::lit(5_000.0)))
        .build()
        .unwrap();
    let planned = plan_query(plan, &RuleConfig::default()).unwrap();
    assert_eq!(planned.source_ops, 2, "suffix excluded");

    let records = pingmesh_records(10, AnomalySchedule::single(0.0, 100.0, 0.02, 30.0));
    let costs = jarvis::streamkit::physical::CostProfile::uniform(3, 1.0);
    let report = run_partitioned(&planned, &costs, records, &[1.0, 0.8], 2);
    assert!(
        !report.results.is_empty(),
        "SP-side filter must emit alert rows"
    );
    for row in &report.results {
        assert!(
            row.values[3].as_f64().unwrap() > 5_000.0,
            "filter applied at SP"
        );
    }
}

#[test]
fn checkpoint_failover_completes_windows_at_sp() {
    use jarvis::core::calibration::Scale;
    use jarvis::core::checkpoint;
    use jarvis::core::deploy::{Deployment, EmulatedBackend};
    use jarvis::core::experiment::ScenarioSpec;
    use jarvis::core::strategy::StrategyKind;

    let spec = ScenarioSpec::pingmesh_s2s(Scale::X1);
    let deploy_spec = Deployment::builder()
        .workload(spec.clone())
        .strategy(StrategyKind::AllSrc)
        .cpu_budget(1.0)
        .spec()
        .expect("valid deployment");
    let mut be = EmulatedBackend::default();
    be.prepare(&deploy_spec).expect("block builds");
    for _ in 0..3 {
        be.step(&deploy_spec);
    }
    let ckpt = checkpoint::snapshot(be.block_mut().unwrap().source_mut(0));
    assert!(ckpt.wire_bytes() > 0);

    // Source dies; the SP merges the checkpoint and completes the window.
    let planned = spec.plan();
    let mut sp =
        jarvis::core::engine::cluster::SpCluster::new(&planned, &spec.costs(), 1, 64.0, 1.0, 4, 2);
    checkpoint::apply_at_sp(&mut sp, 0, &ckpt, 3.0);
    sp.run_epoch(20_000_000);
    assert!(sp.results_emitted() > 0);
}

/// `live::run_partitioned` is exercised above with 1, 2, and 3 worker
/// threads, which also validates the crossbeam/parking_lot concurrency path.
#[test]
fn live_runtime_handles_many_worker_threads() {
    let planned = plan_query(queries::s2s_probe(), &RuleConfig::default()).unwrap();
    let costs = calibration::s2s_cost_profile();
    let records = pingmesh_records(6, AnomalySchedule::none());
    let reference = run_partitioned(&planned, &costs, records.clone(), &[0.0; 3], 1).results;
    let wide = run_partitioned(&planned, &costs, records, &[1.0, 0.9, 0.6], 8).results;
    assert_eq!(sorted(reference), sorted(wide));
}
